"""Schedule recommendation for programs that were never searched.

Given a *new* :class:`~repro.dag.program.Program`, the recommender
computes its structural signatures, pulls signature-matched knowledge out
of an :class:`~repro.advisor.store.ArtifactStore` — discrimination-
weighted rules plus the union-trained CART tree — and ranks candidate
schedules **without running a single simulation**:

* primary: the union tree's leaf probability of the *fast* class, with
  the candidate projected into the signature-canonical feature space;
* secondary: the normalized weighted rule-satisfaction score
  (:meth:`~repro.advisor.guided.ScheduleGuide.score_detail`);
* tie-break: the schedule fingerprint, for cross-process determinism.

Do-not-transfer advisories are honored structurally: the trained
workload most similar to the target (signature-key Jaccard) is found,
and any source carrying an advisory edge *toward that neighbor* is
excluded from the rule pool — if its guidance anti-predicts the nearest
known structure, it has no business steering this one.

Degenerate inputs produce an explicit refusal, never an arbitrary
schedule: an empty store, a program without a single signature match,
and an all-vacuous rule pool each return a :class:`Recommendation` with
``schedule=None`` and a machine-readable ``status``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.advisor.guided import ScheduleGuide
from repro.advisor.store import (
    ArtifactStore,
    UnionArtifact,
    WorkloadArtifact,
    union_is_applicable,
)
from repro.dag.program import Program
from repro.schedule.schedule import Schedule
from repro.schedule.space import DesignSpace
from repro.transfer.signature import program_signatures
from repro.transfer.union import FAST

#: Recommendation statuses.
STATUS_OK = "ok"
STATUS_EMPTY_STORE = "empty-store"
STATUS_NO_MATCH = "no-signature-match"
STATUS_VACUOUS = "vacuous-rules"

#: Candidate cap: spaces at most this big are ranked exhaustively;
#: larger ones are sampled (seeded, deduplicated).
MAX_CANDIDATES = 1024


@dataclass
class Recommendation:
    """The advisor's answer for one program."""

    status: str
    schedule: Optional[Schedule]
    #: [0, 1]; 0 whenever no recommendation is made.
    confidence: float
    #: Normalized rule-satisfaction score of the pick ([-1, 1]).
    rule_score: float = 0.0
    #: Union-tree leaf P(fast) of the pick (0 when no union tree).
    p_fast: float = 0.0
    n_rules: int = 0
    n_candidates: int = 0
    #: Labels of artifacts whose rules reached the target.
    sources: List[str] = field(default_factory=list)
    #: Sources dropped by do-not-transfer advisories.
    excluded_sources: List[str] = field(default_factory=list)
    note: str = ""

    @property
    def recommended(self) -> bool:
        return self.status == STATUS_OK and self.schedule is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "recommended": self.recommended,
            "schedule": (
                [
                    {"name": op.name, "stream": op.stream, "event": op.event}
                    for op in self.schedule.ops
                ]
                if self.schedule is not None
                else None
            ),
            "confidence": self.confidence,
            "rule_score": self.rule_score,
            "p_fast": self.p_fast,
            "n_rules": self.n_rules,
            "n_candidates": self.n_candidates,
            "sources": list(self.sources),
            "excluded_sources": list(self.excluded_sources),
            "note": self.note,
        }


# ----------------------------------------------------------------------
def _advisory_exclusions(
    union: Optional[UnionArtifact],
    artifacts: Sequence[WorkloadArtifact],
    target_keys: set,
) -> List[str]:
    """Sources whose advisories point at the target's nearest neighbor."""
    if union is None or not union.advisories or not artifacts:
        return []
    best_label = None
    best_sim = -1.0
    for artifact in sorted(artifacts, key=lambda a: a.label):
        keys = {sig.key for sig in artifact.signatures.values()}
        denom = len(keys | target_keys)
        sim = len(keys & target_keys) / denom if denom else 0.0
        if sim > best_sim:
            best_sim, best_label = sim, artifact.label
    if best_label is None or best_sim <= 0.0:
        return []
    return sorted(
        {src for src, dst, _ in union.advisories if dst == best_label}
    )


def _candidates(
    space: DesignSpace, max_candidates: int, seed: int
) -> List[Schedule]:
    """Deterministic candidate set: the whole space when it fits, a
    seeded deduplicated sample otherwise."""
    if space.count() <= max_candidates:
        return list(space.enumerate_schedules())
    rng = np.random.default_rng(seed)
    out: List[Schedule] = []
    seen: set = set()
    attempts = 0
    while len(out) < max_candidates and attempts < 20 * max_candidates:
        attempts += 1
        schedule = space.random_schedule(rng)
        fp = schedule.fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        out.append(schedule)
    return out


def _p_fast(union: UnionArtifact, x: np.ndarray) -> np.ndarray:
    """Leaf-proportion probability of the fast class per row of ``x``."""
    tree = union.tree
    out = np.empty(len(x))
    for i, row in enumerate(np.asarray(x)):
        node = tree.root
        while not node.is_leaf:
            node = (
                node.left if row[node.feature] <= node.threshold else node.right
            )
        props = node.class_proportions()
        out[i] = float(props[FAST]) if len(props) > FAST else 0.0
    return out


# ----------------------------------------------------------------------
def recommend(
    program: Program,
    store: "ArtifactStore | Sequence[WorkloadArtifact]",
    *,
    union: Optional[UnionArtifact] = None,
    machine: Optional[str] = None,
    n_streams: int = 2,
    max_candidates: int = MAX_CANDIDATES,
    seed: int = 0,
    validate: bool = True,
) -> Recommendation:
    """Recommend a schedule for ``program`` from persisted knowledge.

    ``store`` is an :class:`ArtifactStore` (its union artifact is used
    unless ``union`` is passed explicitly) or a plain artifact sequence.
    ``machine`` filters artifacts by platform preset name.  The result is
    deterministic in (store contents, program, seed).

    Every call lands in the ``advisor.recommend_s`` latency histogram
    (p50/p95/p99 via ``obs``) — the number the ROADMAP's
    advisor-as-a-service item must hold at service rates.
    """
    t0 = time.perf_counter()
    with obs.span("advisor.recommend", program=program.name):
        rec = _recommend(
            program,
            store,
            union=union,
            machine=machine,
            n_streams=n_streams,
            max_candidates=max_candidates,
            seed=seed,
            validate=validate,
        )
    obs.observe("advisor.recommend_s", time.perf_counter() - t0)
    obs.add("advisor.recommendations")
    obs.add(f"advisor.status.{rec.status}")
    return rec


def _recommend(
    program: Program,
    store: "ArtifactStore | Sequence[WorkloadArtifact]",
    *,
    union: Optional[UnionArtifact],
    machine: Optional[str],
    n_streams: int,
    max_candidates: int,
    seed: int,
    validate: bool,
) -> Recommendation:
    if isinstance(store, ArtifactStore):
        artifacts = store.load_workloads(machine=machine, validate=validate)
        if union is None:
            union = store.load_union(machine=machine)
    else:
        artifacts = [
            a
            for a in store
            if machine is None or a.machine == machine
        ]
    if not artifacts:
        return Recommendation(
            status=STATUS_EMPTY_STORE,
            schedule=None,
            confidence=0.0,
            note="the artifact store has no trained workloads",
        )

    signatures = program_signatures(program)
    target_keys = {sig.key for sig in signatures.values()}
    excluded = _advisory_exclusions(union, artifacts, target_keys)
    # min_source_weight=0 keeps even zero-discrimination rules resolved,
    # so "rules matched but all are vacuous" is distinguishable from "no
    # structural match at all" — and weights rank naturally either way.
    guide = ScheduleGuide.from_artifacts(
        artifacts,
        signatures,
        min_source_weight=0.0,
        exclude_sources=excluded,
    )
    union_usable = union_is_applicable(union, tuple(target_keys))

    if guide.n_rules == 0 and not union_usable:
        return Recommendation(
            status=STATUS_NO_MATCH,
            schedule=None,
            confidence=0.0,
            excluded_sources=excluded,
            note=(
                "no trained rule or union feature matches the program's "
                "structural signatures"
            ),
        )
    if guide.weight_total == 0.0 and not union_usable:
        return Recommendation(
            status=STATUS_VACUOUS,
            schedule=None,
            confidence=0.0,
            n_rules=guide.n_rules,
            excluded_sources=excluded,
            note=(
                "every signature-matched rule has zero discrimination; "
                "the store carries no usable guidance for this program"
            ),
        )

    space = DesignSpace(program, n_streams=n_streams)
    candidates = _candidates(space, max_candidates, seed)
    details = [guide.score_detail(s) for s in candidates]
    rule_scores = np.array([d.score for d in details])
    if union_usable:
        mapping = {name: sig.key for name, sig in signatures.items()}
        x = union.extractor().transform(candidates, mapping).matrix
        p_fast = _p_fast(union, x)
    else:
        p_fast = np.zeros(len(candidates))

    fingerprints = [s.fingerprint() for s in candidates]
    best = min(
        range(len(candidates)),
        key=lambda i: (-p_fast[i], -rule_scores[i], fingerprints[i]),
    )
    pick = details[best]
    rs_norm = (1.0 + pick.score) / 2.0
    if union_usable and guide.weight_total > 0.0:
        confidence = 0.5 * float(p_fast[best]) + 0.5 * rs_norm
    elif union_usable:
        confidence = float(p_fast[best])
    else:
        confidence = rs_norm
    sources = sorted({s for r in guide.rules for s in r.sources})
    return Recommendation(
        status=STATUS_OK,
        schedule=candidates[best],
        confidence=max(0.0, min(1.0, confidence)),
        rule_score=float(pick.score),
        p_fast=float(p_fast[best]),
        n_rules=guide.n_rules,
        n_candidates=len(candidates),
        sources=sources,
        excluded_sources=excluded,
        note=(
            "ranked by union-tree P(fast), then weighted rule satisfaction"
            if union_usable
            else "ranked by weighted rule satisfaction (no union tree)"
        ),
    )
