"""Build and publish advisor artifacts from per-workload pipeline output.

The bridge between training (:mod:`repro.workloads.generalization` /
:mod:`repro.transfer`) and the persisted store: a finished
:class:`~repro.workloads.generalization.WorkloadRules` reduces to a
:class:`~repro.advisor.store.WorkloadArtifact` (scored rules + signature
table), and a set of them yields one
:class:`~repro.advisor.store.UnionArtifact` (the all-workload union tree
plus the matrix's do-not-transfer advisory edges).  Suite runs call
:func:`publish_artifacts` automatically when given a store path, so every
cross-workload run leaves reusable knowledge behind.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.advisor.store import (
    ArtifactStore,
    ScoredRule,
    UnionArtifact,
    WorkloadArtifact,
)
from repro.errors import TrainingError
from repro.exec.cache import program_fingerprint
from repro.transfer.scoring import score_transfer
from repro.transfer.signature import identity_matcher, program_signatures
from repro.transfer.union import UnionWorkload, binary_labels, train_union
from repro.workloads.generalization import WorkloadRules

#: ``(source label, target label, mean discrimination)`` advisory edge.
AdvisoryEdge = Tuple[str, str, float]


def workload_artifact(
    wl: WorkloadRules, *, machine: str, n_streams: int = 2
) -> WorkloadArtifact:
    """Reduce one workload's pipeline output to its persistable artifact.

    Rules are the fastest-class rules, each scored for discrimination on
    the workload's *own* fast/slow classes through the identity signature
    matcher — the weight a future consumer should trust the rule with.
    """
    signatures = program_signatures(wl.program)
    scores = score_transfer(
        wl.rules,
        wl.fast_schedules,
        wl.slow_schedules,
        matcher=identity_matcher(signatures),
    )
    return WorkloadArtifact(
        label=wl.spec.label,
        spec=wl.spec,
        machine=machine,
        n_streams=n_streams,
        program_fingerprint=program_fingerprint(wl.program),
        signatures=signatures,
        rules=[
            ScoredRule(
                rule=s.rule,
                discrimination=s.discrimination,
                coverage=s.coverage,
            )
            for s in scores
        ],
        n_schedules=len(wl.fast_schedules) + len(wl.slow_schedules),
    )


def union_artifact(
    per_workload: Sequence[WorkloadRules],
    *,
    machine: str,
    n_streams: int = 2,
    advisories: Optional[Sequence[AdvisoryEdge]] = None,
) -> Optional[UnionArtifact]:
    """Train one tree on *all* workloads and package it for the store.

    Unlike the transfer matrix's leave-one-out evaluation rows, the
    published tree trains on everything available — held-out scoring is
    a measurement; the artifact is for production use on programs that
    were never searched.  Returns ``None`` when union training is not
    possible (fewer than two workloads, or no shared non-constant
    signature features).
    """
    if len(per_workload) < 2:
        return None
    unions = [
        UnionWorkload(
            label=wl.spec.label,
            schedules=list(wl.result.search.schedules()),
            labels=binary_labels(wl.result.labeling.labels),
            signatures=program_signatures(wl.program),
        )
        for wl in per_workload
    ]
    try:
        result = train_union(unions)
    except TrainingError:
        return None
    return UnionArtifact(
        machine=machine,
        n_streams=n_streams,
        workloads=[wl.spec.label for wl in per_workload],
        fingerprints=[program_fingerprint(wl.program) for wl in per_workload],
        tree=result.tree,
        features=list(result.extractor.features),
        keys=tuple(result.extractor.keys),
        gpu_keys=tuple(result.extractor.gpu_keys),
        advisories=list(advisories or ()),
        train_accuracy=result.train_accuracy,
    )


def publish_artifacts(
    store: ArtifactStore,
    per_workload: Sequence[WorkloadRules],
    *,
    machine: str,
    n_streams: int = 2,
    advisories: Optional[Sequence[AdvisoryEdge]] = None,
) -> List[str]:
    """Publish one artifact per workload plus the union artifact.

    Returns the written file paths (workloads first, spec order, union
    last when trainable).  When ``advisories`` is ``None`` and at least
    two workloads are present, the do-not-transfer edges are computed
    from the transfer matrix over ``per_workload``.
    """
    if advisories is None and len(per_workload) >= 2:
        from repro.transfer.matrix import transfer_matrix_from

        matrix = transfer_matrix_from(per_workload)
        advisories = [
            (c.source, c.target, c.mean_discrimination)
            for c in matrix.advisories()
        ]
    paths = [
        store.publish(
            workload_artifact(wl, machine=machine, n_streams=n_streams)
        )
        for wl in per_workload
    ]
    union = union_artifact(
        per_workload,
        machine=machine,
        n_streams=n_streams,
        advisories=advisories,
    )
    if union is not None:
        paths.append(store.publish(union))
    return paths
