"""Persisted rule/model artifacts keyed by program fingerprint + platform.

A suite run distills each workload into knowledge worth keeping: the
fastest-class :class:`~repro.rules.ruleset.Rule`s with their self-
discrimination scores, the structural
:class:`~repro.transfer.signature.OpSignature` table that makes those
rules transferable, and (across workloads) one union-trained CART tree in
the signature-canonical feature space.  The :class:`ArtifactStore`
persists all of it as versioned JSON so *future* sessions — recommending
a schedule for an unseen program (:mod:`repro.advisor.recommend`) or
pruning a new search (:mod:`repro.advisor.guided`) — can reuse the
training without re-running a single pipeline.

Integrity contract
------------------
Artifacts are addressed by a key derived from the **program
fingerprint** (:func:`repro.exec.cache.program_fingerprint`), the
machine preset name, and the stream count, so retraining the same
workload on the same platform overwrites its artifact in place.  Loading
validates three things and raises
:class:`~repro.errors.ArtifactError` on any failure:

* **version** — the JSON carries :data:`ARTIFACT_VERSION`; a mismatch is
  an error, never a silent best-effort parse;
* **fingerprint** — the stored spec is rebuilt and its program
  fingerprint recomputed; a stale artifact (the generator changed since
  it was published) is rejected;
* **signatures** — the stored signature table must equal the rebuilt
  program's :func:`~repro.transfer.signature.program_signatures`.

Validation rebuilds the workload, which costs milliseconds for registry
specs; pass ``validate=False`` to skip it when the store is trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ArtifactError
from repro.ml.features import Feature
from repro.ml.tree import DecisionTree
from repro.rules.ruleset import Rule
from repro.rules.serialize import feature_from_dict, feature_to_dict, rule_from_dict, rule_to_dict
from repro.transfer.signature import (
    OpSignature,
    signature_from_dict,
    signature_to_dict,
)
from repro.workloads.spec import WorkloadSpec

#: Schema version of every artifact this build reads and writes.
ARTIFACT_VERSION = 1

#: Artifact kinds.
KIND_WORKLOAD = "workload"
KIND_UNION = "union"


def _short_digest(*parts: object) -> str:
    payload = json.dumps(list(map(str, parts)), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _spec_to_dict(spec: WorkloadSpec) -> Dict[str, object]:
    return {
        "family": spec.family,
        "params": dict(spec.params),
        "seed": spec.seed,
    }


def _spec_from_dict(data: Dict[str, object]) -> WorkloadSpec:
    return WorkloadSpec(
        str(data["family"]),
        data.get("params") or {},  # type: ignore[arg-type]
        int(data.get("seed", 0)),  # type: ignore[arg-type]
    )


@dataclass(frozen=True)
class ScoredRule:
    """One fastest-class rule with its self-discrimination score.

    ``discrimination`` and ``coverage`` come from scoring the rule on the
    *source* workload's own fast/slow schedule classes through the
    identity signature matcher (:mod:`repro.transfer.scoring`), so
    ``weight`` is exactly the transfer-matrix headline number: how much
    following this rule separates fast from slow where it was learned.
    """

    rule: Rule
    discrimination: float
    coverage: float

    @property
    def weight(self) -> float:
        return self.discrimination * self.coverage

    def to_dict(self) -> Dict[str, object]:
        out = rule_to_dict(self.rule)
        out["discrimination"] = self.discrimination
        out["coverage"] = self.coverage
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScoredRule":
        return cls(
            rule=rule_from_dict(data),
            discrimination=float(data["discrimination"]),  # type: ignore[arg-type]
            coverage=float(data["coverage"]),  # type: ignore[arg-type]
        )


@dataclass
class WorkloadArtifact:
    """One workload's trained output: scored rules + signature table."""

    label: str
    spec: WorkloadSpec
    machine: str
    n_streams: int
    program_fingerprint: str
    signatures: Dict[str, OpSignature]
    rules: List[ScoredRule]
    #: Distinct schedules the labeling saw (the training evidence size).
    n_schedules: int = 0

    @property
    def kind(self) -> str:
        return KIND_WORKLOAD

    @property
    def key(self) -> str:
        """Store filename stem; stable in (program, machine, streams)."""
        return "workload-" + _short_digest(
            self.program_fingerprint, self.machine, self.n_streams
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": ARTIFACT_VERSION,
            "kind": self.kind,
            "label": self.label,
            "spec": _spec_to_dict(self.spec),
            "machine": self.machine,
            "n_streams": self.n_streams,
            "program_fingerprint": self.program_fingerprint,
            "signatures": {
                name: signature_to_dict(sig)
                for name, sig in sorted(self.signatures.items())
            },
            "rules": [r.to_dict() for r in self.rules],
            "n_schedules": self.n_schedules,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadArtifact":
        return cls(
            label=str(data["label"]),
            spec=_spec_from_dict(data["spec"]),  # type: ignore[arg-type]
            machine=str(data["machine"]),
            n_streams=int(data["n_streams"]),  # type: ignore[arg-type]
            program_fingerprint=str(data["program_fingerprint"]),
            signatures={
                name: signature_from_dict(sig)
                for name, sig in data["signatures"].items()  # type: ignore[union-attr]
            },
            rules=[ScoredRule.from_dict(r) for r in data["rules"]],  # type: ignore[union-attr]
            n_schedules=int(data.get("n_schedules", 0)),  # type: ignore[arg-type]
        )


@dataclass
class UnionArtifact:
    """The cross-workload union tree + the advisory edges of its matrix."""

    machine: str
    n_streams: int
    #: Labels of every workload the tree was trained on.
    workloads: List[str]
    #: Program fingerprints, aligned with ``workloads``.
    fingerprints: List[str]
    tree: DecisionTree
    #: Signature-canonical (order/stream over signature keys) features.
    features: List[Feature]
    keys: Tuple[str, ...] = ()
    gpu_keys: Tuple[str, ...] = ()
    #: ``(source label, target label, mean discrimination)`` do-not-transfer
    #: edges from the transfer matrix.
    advisories: List[Tuple[str, str, float]] = field(default_factory=list)
    train_accuracy: float = 0.0

    @property
    def kind(self) -> str:
        return KIND_UNION

    @property
    def key(self) -> str:
        return "union-" + _short_digest(
            tuple(sorted(self.fingerprints)), self.machine, self.n_streams
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": ARTIFACT_VERSION,
            "kind": self.kind,
            "machine": self.machine,
            "n_streams": self.n_streams,
            "workloads": list(self.workloads),
            "fingerprints": list(self.fingerprints),
            "tree": self.tree.to_dict(),
            "features": [feature_to_dict(f) for f in self.features],
            "keys": list(self.keys),
            "gpu_keys": list(self.gpu_keys),
            "advisories": [list(a) for a in self.advisories],
            "train_accuracy": self.train_accuracy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "UnionArtifact":
        return cls(
            machine=str(data["machine"]),
            n_streams=int(data["n_streams"]),  # type: ignore[arg-type]
            workloads=[str(w) for w in data["workloads"]],  # type: ignore[union-attr]
            fingerprints=[str(f) for f in data["fingerprints"]],  # type: ignore[union-attr]
            tree=DecisionTree.from_dict(data["tree"]),  # type: ignore[arg-type]
            features=[feature_from_dict(f) for f in data["features"]],  # type: ignore[union-attr]
            keys=tuple(data.get("keys", ())),  # type: ignore[arg-type]
            gpu_keys=tuple(data.get("gpu_keys", ())),  # type: ignore[arg-type]
            advisories=[
                (str(a[0]), str(a[1]), float(a[2]))
                for a in data.get("advisories", ())  # type: ignore[union-attr]
            ],
            train_accuracy=float(data.get("train_accuracy", 0.0)),  # type: ignore[arg-type]
        )

    def extractor(self):
        """Rebuild the fitted :class:`~repro.ml.features.MappedFeatureExtractor`."""
        from repro.ml.features import MappedFeatureExtractor

        ex = MappedFeatureExtractor()
        ex.keys = tuple(self.keys)
        ex.gpu_keys = tuple(self.gpu_keys)
        ex.features = list(self.features)
        ex._fitted = True
        return ex


_KINDS = {KIND_WORKLOAD: WorkloadArtifact, KIND_UNION: UnionArtifact}


def artifact_from_dict(data: Dict[str, object]):
    """Dispatch on ``kind`` after checking the schema version."""
    version = data.get("version")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact version {version!r} is not supported "
            f"(this build reads version {ARTIFACT_VERSION})"
        )
    kind = data.get("kind")
    cls = _KINDS.get(str(kind))
    if cls is None:
        raise ArtifactError(f"unknown artifact kind {kind!r}")
    return cls.from_dict(data)


# ----------------------------------------------------------------------
class ArtifactStore:
    """A directory of versioned JSON artifacts.

    Files are named ``<key>.json`` where the key hashes (fingerprint,
    machine, streams), so republishing the same training overwrites in
    place and two platforms never collide.  All writes are key-sorted
    JSON — byte-identical across processes for equal artifacts.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    # ------------------------------------------------------------------
    def path_of(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def keys(self) -> List[str]:
        """Sorted artifact keys currently in the store."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------
    def publish(self, artifact) -> str:
        """Write ``artifact``; returns the file path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_of(artifact.key)
        text = json.dumps(artifact.to_dict(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return path

    def load(self, key: str, *, validate: bool = True):
        """Load one artifact by key, validating unless told otherwise."""
        path = self.path_of(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise ArtifactError(f"no artifact {key!r} in {self.root}") from None
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact {key!r} is not valid JSON") from exc
        artifact = artifact_from_dict(data)
        if validate and isinstance(artifact, WorkloadArtifact):
            validate_workload_artifact(artifact)
        return artifact

    # ------------------------------------------------------------------
    def load_workloads(
        self, *, machine: Optional[str] = None, validate: bool = True
    ) -> List[WorkloadArtifact]:
        """Every workload artifact (optionally one machine's), key-sorted.

        The machine filter is applied *before* validation, so a store
        shared by several platform presets never pays the workload
        rebuild cost for artifacts it is about to discard.
        """
        out: List[WorkloadArtifact] = []
        for key in self.keys():
            if not key.startswith(KIND_WORKLOAD + "-"):
                continue
            artifact = self.load(key, validate=False)
            if machine is not None and artifact.machine != machine:
                continue
            if validate and isinstance(artifact, WorkloadArtifact):
                validate_workload_artifact(artifact)
            out.append(artifact)
        return out

    def load_union(
        self, *, machine: Optional[str] = None
    ) -> Optional[UnionArtifact]:
        """The broadest matching union artifact (most workloads wins;
        ties break on key for determinism); ``None`` when absent."""
        best: Optional[UnionArtifact] = None
        for key in self.keys():
            if not key.startswith(KIND_UNION + "-"):
                continue
            artifact = self.load(key)
            if machine is not None and artifact.machine != machine:
                continue
            if best is None or (
                (len(artifact.workloads), artifact.key)
                > (len(best.workloads), best.key)
            ):
                best = artifact
        return best


# ----------------------------------------------------------------------
def validate_workload_artifact(artifact: WorkloadArtifact) -> None:
    """Reject stale artifacts: rebuild the spec and require the program
    fingerprint and signature table to match what was stored."""
    from repro.exec.cache import program_fingerprint
    from repro.transfer.signature import program_signatures
    from repro.workloads.spec import build_workload

    program = build_workload(artifact.spec)
    fingerprint = program_fingerprint(program)
    if fingerprint != artifact.program_fingerprint:
        raise ArtifactError(
            f"stale artifact for {artifact.label!r}: stored program "
            f"fingerprint {artifact.program_fingerprint[:12]}… does not "
            f"match the rebuilt workload ({fingerprint[:12]}…); re-run "
            "the training suite to refresh the store"
        )
    signatures = program_signatures(program)
    if signatures != artifact.signatures:
        raise ArtifactError(
            f"stale artifact for {artifact.label!r}: stored signature "
            "table does not match the rebuilt workload's structural "
            "signatures"
        )


def union_is_applicable(
    union: Optional[UnionArtifact], target_keys: Sequence[str]
) -> bool:
    """Whether the union tree can say anything about a target program:
    at least one of its features must have both signature keys present
    in the target (features over absent structure evaluate to constant
    0 and carry no information)."""
    if union is None:
        return False
    keys = set(target_keys)
    return any(f.u in keys and f.v in keys for f in union.features)
