"""repro.advisor — persisted training artifacts and rule-guided scheduling.

The subsystems before this one extract (:mod:`repro.rules`), score
(:mod:`repro.transfer.scoring`), and cross-train
(:mod:`repro.transfer.union`) design rules — but nothing ever fed them
*back* into scheduling.  This package closes the loop:

* :mod:`repro.advisor.store` — a versioned JSON
  :class:`ArtifactStore` keyed by program fingerprint + platform preset,
  holding each workload's scored rules and signature table plus the
  cross-workload union tree; loads validate version, fingerprint, and
  signatures so stale knowledge is rejected, not silently applied.
* :mod:`repro.advisor.publish` — reduces finished pipeline runs to
  artifacts; suite runs publish automatically when given a store path.
* :mod:`repro.advisor.recommend` — ranks an unseen program's candidate
  schedules by union-tree fast-class probability and weighted rule
  satisfaction, emitting a schedule + confidence without simulation
  (and an explicit refusal on degenerate input).
* :mod:`repro.advisor.guided` — a :class:`ScheduleGuide` the search
  strategies accept: a streaming pruning filter for exhaustive/random
  search, an ordering prior for beam, a rollout bias for MCTS.
"""

from repro.advisor.guided import (
    MIN_SOURCE_WEIGHT,
    PRUNE_THRESHOLD,
    GuideScore,
    ResolvedRule,
    ScheduleGuide,
)
from repro.advisor.publish import (
    publish_artifacts,
    union_artifact,
    workload_artifact,
)
from repro.advisor.recommend import (
    MAX_CANDIDATES,
    STATUS_EMPTY_STORE,
    STATUS_NO_MATCH,
    STATUS_OK,
    STATUS_VACUOUS,
    Recommendation,
    recommend,
)
from repro.advisor.store import (
    ARTIFACT_VERSION,
    ArtifactStore,
    ScoredRule,
    UnionArtifact,
    WorkloadArtifact,
    artifact_from_dict,
    validate_workload_artifact,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "GuideScore",
    "MAX_CANDIDATES",
    "MIN_SOURCE_WEIGHT",
    "PRUNE_THRESHOLD",
    "Recommendation",
    "ResolvedRule",
    "STATUS_EMPTY_STORE",
    "STATUS_NO_MATCH",
    "STATUS_OK",
    "STATUS_VACUOUS",
    "ScheduleGuide",
    "ScoredRule",
    "UnionArtifact",
    "WorkloadArtifact",
    "artifact_from_dict",
    "publish_artifacts",
    "recommend",
    "union_artifact",
    "validate_workload_artifact",
    "workload_artifact",
]
