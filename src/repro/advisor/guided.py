"""Rule-guided search: turn persisted design rules into search pressure.

A :class:`ScheduleGuide` resolves the store's scored rules onto a *target*
program through structural signatures: a rule about "the kernel feeding a
send post" applies to whichever target ops carry that signature, however
they are named.  Resolved rules carry the sum of their sources' self-
discrimination weights, giving three levers the search strategies wire in
(:mod:`repro.search`):

* **pruning** (exhaustive / random) — :meth:`ScheduleGuide.admits`
  rejects schedules violating any rule whose combined weight reaches
  ``prune_threshold``; the space streams through
  :meth:`repro.schedule.space.DesignSpace.iter_blocks` with the guide as
  the ``keep`` filter, so pruned schedules are never simulated;
* **ordering prior** (beam) — :meth:`ScheduleGuide.prefix_penalty`
  scores a *partial* schedule by the weight of rules it has already
  determinately violated, ordering expansion and breaking score ties
  toward rule-satisfying prefixes;
* **rollout bias** (MCTS) — rollouts choose uniformly among the actions
  introducing the least new violation weight instead of among all
  actions.

Violation on a prefix is judged from what is already decided: an
ordering rule is violated once some ``v``-group op precedes some
``u``-group op, *or* once a ``v``-group op is placed while mandatory
``u``-group ops (program operations, which appear in every complete
schedule) remain unplaced — any future ``u`` necessarily lands after
that ``v``.  Stream rules are decided by placed cross pairs.
Scheduling-inserted sync ops are conditional (a stream wait only exists
for cross-stream bindings), so they never participate in the
"mandatory" reasoning — the prefix judgment stays sound, and a complete
schedule decides everything its ops can express, making :meth:`admits`
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.program import Program
from repro.dag.vertex import OpKind
from repro.ml.features import OrderFeature
from repro.schedule.schedule import BoundOp, Schedule
from repro.transfer.signature import OpSignature, program_signatures

#: Resolved-rule kinds.
ORDER = "order"
STREAM = "stream"

#: Default floor on a source rule's |self-discrimination weight| for it
#: to participate in guidance at all.
MIN_SOURCE_WEIGHT = 0.05

#: Default combined weight at which violating a rule prunes a schedule.
PRUNE_THRESHOLD = 0.10


@dataclass(frozen=True)
class ResolvedRule:
    """One store rule translated into the target's signature-key domain.

    ``u`` / ``v`` are target signature keys; ``weight`` sums the
    contributing sources' self-discrimination weights (evidence
    accumulates when several workloads learned the same constraint);
    ``sources`` are their labels.
    """

    kind: str
    u: str
    v: str
    value: bool
    weight: float
    sources: Tuple[str, ...] = ()

    @property
    def text(self) -> str:
        if self.kind == ORDER:
            return (
                f"{self.u} before {self.v}"
                if self.value
                else f"{self.v} before {self.u}"
            )
        rel = "same stream as" if self.value else "different stream than"
        return f"{self.u} {rel} {self.v}"


@dataclass
class GuideScore:
    """Weighted rule satisfaction of one schedule."""

    #: Normalized signed satisfaction in [-1, 1] (0 when nothing applies).
    score: float
    #: Sum of |weight| over rules evaluable on the schedule / over all.
    weight_evaluated: float
    weight_total: float

    @property
    def coverage(self) -> float:
        if self.weight_total <= 0.0:
            return 0.0
        return self.weight_evaluated / self.weight_total


class ScheduleGuide:
    """Evaluates a target program's schedules against resolved rules."""

    def __init__(
        self,
        rules: Sequence[ResolvedRule],
        op_keys: Dict[str, str],
        *,
        prune_threshold: float = PRUNE_THRESHOLD,
        mandatory_counts: Optional[Dict[str, int]] = None,
    ) -> None:
        #: Deterministic rule order: strongest first, then text.
        self.rules: List[ResolvedRule] = sorted(
            rules, key=lambda r: (-r.weight, r.text)
        )
        self.op_keys = dict(op_keys)
        self.prune_threshold = prune_threshold
        #: Key → number of ops guaranteed to appear in every complete
        #: schedule (program ops; sync ops are conditional).  Lets a
        #: prefix judgment see ordering violations the moment they
        #: become inevitable, not only once both ops are placed.
        self.mandatory_counts = dict(mandatory_counts or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_artifacts(
        cls,
        artifacts: Sequence,
        target: "Program | Dict[str, OpSignature]",
        *,
        min_source_weight: float = MIN_SOURCE_WEIGHT,
        prune_threshold: float = PRUNE_THRESHOLD,
        exclude_sources: Sequence[str] = (),
    ) -> "ScheduleGuide":
        """Resolve every artifact's rules onto ``target``.

        ``target`` is a program (its signatures are computed) or a
        precomputed name→signature mapping.  A source rule participates
        when its |weight| reaches ``min_source_weight`` and both of its
        operands map to *distinct* signature keys the target also has;
        identical resolved rules from several sources sum their weights.
        ``exclude_sources`` drops whole artifacts by label (used for
        do-not-transfer advisories and leave-one-out experiments).
        """
        if isinstance(target, Program):
            from repro.schedule.sync import build_sync_plan, cer_name

            signatures = program_signatures(target)
            # Ops present in *every* complete schedule: the program ops
            # plus the always-inserted event records/syncs.  Stream
            # waits (and their extra records) are binding-conditional.
            mandatory_names = {
                v.name for v in target.schedulable_vertices()
            }
            plan = build_sync_plan(target.graph)
            mandatory_names |= {cer_name(u) for u in plan.cer_sources}
            mandatory_names |= set(plan.ces_name_of.values())
        else:
            signatures = target
            mandatory_names = {
                name
                for name, sig in signatures.items()
                if sig.device != "sync"
            }
        op_keys = {name: sig.key for name, sig in signatures.items()}
        target_keys = set(op_keys.values())
        mandatory: Dict[str, int] = {}
        for name in mandatory_names:
            key = op_keys[name]
            mandatory[key] = mandatory.get(key, 0) + 1
        excluded = set(exclude_sources)

        resolved: Dict[Tuple[str, str, str, bool], Tuple[float, set]] = {}
        for artifact in artifacts:
            if artifact.label in excluded:
                continue
            source_keys = {
                name: sig.key for name, sig in artifact.signatures.items()
            }
            for scored in artifact.rules:
                if abs(scored.weight) < min_source_weight:
                    continue
                feature = scored.rule.feature
                ku = source_keys.get(feature.u)
                kv = source_keys.get(feature.v)
                if ku is None or kv is None or ku == kv:
                    continue
                if ku not in target_keys or kv not in target_keys:
                    continue
                kind = ORDER if isinstance(feature, OrderFeature) else STREAM
                value = bool(scored.rule.value)
                # Canonicalize symmetric orientations so the same
                # key-level constraint merges its evidence regardless of
                # how each source happened to orient it: "(u,v) False"
                # is "(v,u) True" for ordering, and stream relations
                # are symmetric in their operands outright.
                if kind == ORDER and not value:
                    ku, kv, value = kv, ku, True
                elif kind == STREAM and kv < ku:
                    ku, kv = kv, ku
                entry = (kind, ku, kv, value)
                weight, sources = resolved.get(entry, (0.0, set()))
                resolved[entry] = (
                    weight + scored.weight,
                    sources | {artifact.label},
                )
        rules = [
            ResolvedRule(
                kind=kind,
                u=u,
                v=v,
                value=value,
                weight=weight,
                sources=tuple(sorted(sources)),
            )
            for (kind, u, v, value), (weight, sources) in resolved.items()
        ]
        return cls(
            rules,
            op_keys,
            prune_threshold=prune_threshold,
            mandatory_counts=mandatory,
        )

    @classmethod
    def from_store(
        cls,
        store,
        target: Program,
        *,
        machine: Optional[str] = None,
        validate: bool = True,
        **kwargs,
    ) -> "ScheduleGuide":
        """Build a guide straight from an :class:`ArtifactStore`."""
        artifacts = store.load_workloads(machine=machine, validate=validate)
        return cls.from_artifacts(artifacts, target, **kwargs)

    # ------------------------------------------------------------------
    @property
    def n_rules(self) -> int:
        return len(self.rules)

    @property
    def weight_total(self) -> float:
        return sum(abs(r.weight) for r in self.rules)

    def prune_rules(self) -> List[ResolvedRule]:
        """Rules strong enough to prune on violation."""
        return [r for r in self.rules if r.weight >= self.prune_threshold]

    # ------------------------------------------------------------------
    def _groups(
        self, ops: Sequence[BoundOp]
    ) -> Tuple[Dict[str, List[int]], Dict[str, List[int]]]:
        """(key → launch positions, key → GPU stream bindings)."""
        order: Dict[str, List[int]] = {}
        streams: Dict[str, List[int]] = {}
        for i, op in enumerate(ops):
            key = self.op_keys.get(op.name)
            if key is None:
                continue
            order.setdefault(key, []).append(i)
            if op.kind is OpKind.GPU:
                streams.setdefault(key, []).append(op.stream)  # type: ignore[arg-type]
        return order, streams

    def _violated(
        self,
        rule: ResolvedRule,
        order: Dict[str, List[int]],
        streams: Dict[str, List[int]],
    ) -> Optional[bool]:
        """Determined verdict on the placed ops: ``True`` = violated for
        sure (by a placed pair, or — for ordering rules — by a placed
        successor-side op while mandatory predecessor-side ops remain
        unplaced), ``False`` = satisfied by every placed pair so far,
        ``None`` = nothing to judge yet."""
        if rule.kind == ORDER:
            # Normalize to "every first-key op before every second-key".
            first, second = (
                (rule.u, rule.v) if rule.value else (rule.v, rule.u)
            )
            firsts = order.get(first)
            seconds = order.get(second)
            if seconds:
                # A mandatory first-side op not yet placed must land
                # after this placed second-side op: inevitable violation.
                placed_first = len(firsts) if firsts else 0
                if placed_first < self.mandatory_counts.get(first, 0):
                    return True
            if not firsts or not seconds:
                return None
            return not (max(firsts) < min(seconds))
        us, vs = streams.get(rule.u), streams.get(rule.v)
        if not us or not vs:
            return None
        same = all(a == b for a in us for b in vs)
        diff = all(a != b for a in us for b in vs)
        return not (same if rule.value else diff)

    # ------------------------------------------------------------------
    def score_detail(self, schedule: Schedule) -> GuideScore:
        """Weighted satisfaction: each evaluable rule contributes
        ``+weight`` when followed, ``-weight`` when violated (negative
        weights invert naturally: violating an anti-rule helps)."""
        order, streams = self._groups(schedule.ops)
        signed = 0.0
        evaluated = 0.0
        total = 0.0
        for rule in self.rules:
            total += abs(rule.weight)
            verdict = self._violated(rule, order, streams)
            if verdict is None:
                continue
            evaluated += abs(rule.weight)
            signed += -rule.weight if verdict else rule.weight
        score = signed / evaluated if evaluated > 0.0 else 0.0
        return GuideScore(
            score=score, weight_evaluated=evaluated, weight_total=total
        )

    def score(self, schedule: Schedule) -> float:
        return self.score_detail(schedule).score

    def admits(self, schedule: Schedule) -> bool:
        """False when the schedule violates any prune-strength rule."""
        order, streams = self._groups(schedule.ops)
        for rule in self.rules:
            if rule.weight < self.prune_threshold:
                continue
            if self._violated(rule, order, streams) is True:
                return False
        return True

    def admits_prefix(self, ops: Sequence[BoundOp]) -> bool:
        """False when a (partial) launch sequence *determinately*
        violates a prune-strength rule.

        This is the branch-and-bound predicate for
        :meth:`repro.schedule.space.DesignSpace.iter_blocks`: because
        :meth:`_violated` only answers ``True`` when no extension can
        undo the verdict (a placed pair already violates, or a mandatory
        op can only land too late), a rejected prefix's entire subtree
        contains nothing :meth:`admits` would keep — cutting it is
        lossless.  The converse does not hold: a prefix can still be
        admitted while some completion violates, so complete schedules
        must still pass :meth:`admits`.
        """
        order, streams = self._groups(ops)
        for rule in self.rules:
            if rule.weight < self.prune_threshold:
                continue
            if self._violated(rule, order, streams) is True:
                return False
        return True

    def prefix_penalty(self, ops: Sequence[BoundOp]) -> float:
        """Total positive weight already determinately violated by a
        (partial) launch sequence.  Monotone along a schedule prefix:
        placing more ops can only add violations, never remove them."""
        order, streams = self._groups(ops)
        penalty = 0.0
        for rule in self.rules:
            if rule.weight <= 0.0:
                continue
            if self._violated(rule, order, streams) is True:
                penalty += rule.weight
        return penalty

    # ------------------------------------------------------------------
    def describe(self, limit: int = 10) -> str:
        """Human-readable summary of the strongest resolved rules."""
        lines = [
            f"{self.n_rules} resolved rules "
            f"(prune threshold {self.prune_threshold:+.2f}):"
        ]
        for rule in self.rules[:limit]:
            srcs = ", ".join(rule.sources)
            lines.append(f"  [{rule.weight:+.2f}] {rule.text}  <- {srcs}")
        if self.n_rules > limit:
            lines.append(f"  … and {self.n_rules - limit} more")
        return "\n".join(lines)
