"""Design-space search strategies (paper §III-C and §VI).

* :class:`~repro.search.mcts.MctsSearch` — the paper's Monte-Carlo tree
  search with a performance-coverage exploitation term.
* :class:`~repro.search.random_search.RandomSearch` — uniform frontier
  sampling, the baseline the paper proposes comparing against (§VI).
* :class:`~repro.search.exhaustive.ExhaustiveSearch` — enumerate and
  benchmark the entire space (used for the canonical labels/rules).

All strategies produce a :class:`~repro.search.base.SearchResult` — the
(schedule, measured time) samples that feed the rule-generation pipeline.
"""

from repro.search.base import SearchResult, SearchSample, SearchStrategy
from repro.search.beam import BeamSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.mcts import MctsConfig, MctsNode, MctsSearch
from repro.search.random_search import RandomSearch

__all__ = [
    "BeamSearch",
    "ExhaustiveSearch",
    "MctsConfig",
    "MctsNode",
    "MctsSearch",
    "RandomSearch",
    "SearchResult",
    "SearchSample",
    "SearchStrategy",
]
