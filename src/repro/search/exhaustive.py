"""Exhaustive enumeration + benchmarking of the full design space.

The paper's canonical labels and rules (the "2036" column of Tables VI-VIII
and Figures 1/4/5/6) come from benchmarking every possible traversal; this
strategy reproduces that.  ``n_iterations`` is ignored beyond capping the
number of schedules benchmarked (useful for tests).
"""

from __future__ import annotations

from typing import Optional

from repro.schedule.space import DesignSpace
from repro.search.base import SearchResult, SearchStrategy
from repro.sim.measure import Benchmarker


class ExhaustiveSearch(SearchStrategy):
    """Benchmark the entire design space in enumeration order."""

    name = "exhaustive"

    def run(self, n_iterations: Optional[int] = None) -> SearchResult:
        result = SearchResult(strategy=self.name)
        for schedule in self.space.enumerate_schedules():
            if n_iterations is not None and result.n_iterations >= n_iterations:
                break
            time = self.benchmarker.time_of(schedule)
            result.add(schedule, time)
            result.n_iterations += 1
        result.n_simulations = self.benchmarker.n_simulations
        return result
