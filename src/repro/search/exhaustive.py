"""Exhaustive enumeration + benchmarking of the full design space.

The paper's canonical labels and rules (the "2036" column of Tables VI-VIII
and Figures 1/4/5/6) come from benchmarking every possible traversal; this
strategy reproduces that.  ``n_iterations`` is ignored beyond capping the
number of schedules benchmarked (useful for tests).

Enumeration is submitted to the evaluator in frontier blocks of
``batch_size`` schedules, so a parallel evaluator keeps all workers busy
while results remain in enumeration order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.schedule.schedule import Schedule
from repro.search.base import SearchResult, SearchStrategy


class ExhaustiveSearch(SearchStrategy):
    """Benchmark the entire design space in enumeration order."""

    name = "exhaustive"

    def __init__(self, space, evaluator, batch_size: int = 64) -> None:
        super().__init__(space, evaluator)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size

    def _flush(self, batch: List[Schedule], result: SearchResult) -> None:
        for schedule, m in zip(
            batch, self.evaluator.evaluate_batch(batch)
        ):
            result.add(schedule, m.time)
            result.n_iterations += 1
        batch.clear()

    def run(self, n_iterations: Optional[int] = None) -> SearchResult:
        result = SearchResult(strategy=self.name)
        batch: List[Schedule] = []
        n_taken = 0
        for schedule in self.space.enumerate_schedules():
            if n_iterations is not None and n_taken >= n_iterations:
                break
            batch.append(schedule)
            n_taken += 1
            if len(batch) >= self.batch_size:
                self._flush(batch, result)
        if batch:
            self._flush(batch, result)
        result.n_simulations = self.evaluator.n_simulations
        return result
