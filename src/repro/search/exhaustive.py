"""Exhaustive enumeration + benchmarking of the full design space.

The paper's canonical labels and rules (the "2036" column of Tables VI-VIII
and Figures 1/4/5/6) come from benchmarking every possible traversal; this
strategy reproduces that.  ``n_iterations`` is ignored beyond capping the
number of schedules benchmarked (useful for tests).

Enumeration streams through :meth:`repro.schedule.space.DesignSpace.iter_blocks`
in blocks of ``batch_size`` schedules, so a parallel evaluator keeps all
workers busy, results remain in enumeration order, and peak schedule
residency is one block — never the space.

A rule ``guide`` (:class:`repro.advisor.guided.ScheduleGuide`) turns the
sweep into *guided* exhaustive search: schedules violating any
prune-strength rule are dropped inside the enumeration stream — counted
in ``result.n_pruned``, never simulated — while everything else proceeds
unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.search.base import SearchResult, SearchStrategy


class ExhaustiveSearch(SearchStrategy):
    """Benchmark the entire design space in enumeration order."""

    name = "exhaustive"

    def __init__(
        self, space, evaluator, batch_size: int = 64, guide=None
    ) -> None:
        super().__init__(space, evaluator)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.guide = guide

    def run(self, n_iterations: Optional[int] = None) -> SearchResult:
        result = SearchResult(strategy=self.name)
        keep = self.guide.admits if self.guide is not None else None
        for block in self.space.iter_blocks(self.batch_size, keep=keep):
            result.n_pruned += block.n_skipped
            schedules = block.schedules
            if n_iterations is not None:
                schedules = schedules[: n_iterations - result.n_iterations]
            for schedule, m in zip(
                schedules, self.evaluator.evaluate_batch(schedules)
            ):
                result.add(schedule, m.time)
                result.n_iterations += 1
            # Stop before enumerating a block past the cap.
            if n_iterations is not None and result.n_iterations >= n_iterations:
                break
        result.n_simulations = self.evaluator.n_simulations
        return result
