"""Exhaustive enumeration + benchmarking of the full design space.

The paper's canonical labels and rules (the "2036" column of Tables VI-VIII
and Figures 1/4/5/6) come from benchmarking every possible traversal; this
strategy reproduces that.  ``n_iterations`` is ignored beyond capping the
number of schedules benchmarked (useful for tests).

Enumeration streams through :meth:`repro.schedule.space.DesignSpace.iter_blocks`
in blocks of ``batch_size`` schedules, so a parallel evaluator keeps all
workers busy, results remain in enumeration order, and peak schedule
residency is one block — never the space.

A rule ``guide`` (:class:`repro.advisor.guided.ScheduleGuide`) turns the
sweep into *guided* exhaustive search.  With ``branch_and_bound`` (the
default) the guide prunes at two levels: incomplete prefixes that
determinately violate a prune-strength rule cut their entire subtree
before enumeration (``result.n_subtrees_cut``), and surviving complete
schedules that still violate are dropped before simulation
(``result.n_pruned``).  Both prune toward exactly the set
``guide.admits`` keeps, so the guided best is found while enumerating —
not merely skipping — the violating region.

``cursor``/``limit`` restrict the sweep to an enumeration range (see
:meth:`DesignSpace.seek`), which is how
:mod:`repro.orchestrate.ranges` splits one huge space across a shard
pool with bit-identical merged results.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.schedule.space import EnumerationCursor
from repro.search.base import SearchResult, SearchStrategy


class ExhaustiveSearch(SearchStrategy):
    """Benchmark the entire design space in enumeration order."""

    name = "exhaustive"

    def __init__(
        self,
        space,
        evaluator,
        batch_size: int = 64,
        guide=None,
        cursor: Optional[EnumerationCursor] = None,
        limit: Optional[int] = None,
        branch_and_bound: bool = True,
    ) -> None:
        super().__init__(space, evaluator)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.guide = guide
        self.cursor = cursor
        self.limit = limit
        self.branch_and_bound = branch_and_bound

    def run(self, n_iterations: Optional[int] = None) -> SearchResult:
        result = SearchResult(strategy=self.name)
        keep = self.guide.admits if self.guide is not None else None
        keep_prefix = (
            self.guide.admits_prefix
            if self.guide is not None and self.branch_and_bound
            else None
        )
        with obs.span(
            "search.exhaustive",
            batch_size=self.batch_size,
            guided=self.guide is not None,
            limit=self.limit,
        ):
            for block in self.space.iter_blocks(
                self.batch_size,
                cursor=self.cursor,
                keep=keep,
                keep_prefix=keep_prefix,
                limit=self.limit,
            ):
                result.n_pruned += block.n_skipped
                result.n_subtrees_cut += block.n_subtrees_cut
                schedules = block.schedules
                if n_iterations is not None:
                    schedules = schedules[: n_iterations - result.n_iterations]
                for schedule, m in zip(
                    schedules, self.evaluator.evaluate_batch(schedules)
                ):
                    result.add(schedule, m.time)
                    result.n_iterations += 1
                # Stop before enumerating a block past the cap.
                if (
                    n_iterations is not None
                    and result.n_iterations >= n_iterations
                ):
                    break
        result.n_simulations = self.evaluator.n_simulations
        result.record_metrics()
        return result
