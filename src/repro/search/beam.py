"""Beam search over schedule prefixes (additional baseline).

The paper's related work (§II-A) contrasts MCTS with beam search (Adams et
al., Anderson et al.); §VI asks for alternative strategies "at least as a
baseline for comparison".  Because the performance of a *partial* program
cannot be evaluated (§III-B), each candidate prefix is scored by the best
of ``rollouts_per_candidate`` random completions, exactly the estimator
MCTS uses in its rollout phase.

The search proceeds level by level: expand every action of every prefix in
the beam, score the children, keep the ``width`` best.  All rollouts of a
level are submitted to the evaluator as **one batch** (random completions
are drawn first, in the serial order; measurement never consumes the RNG,
so scores and the sample trace are identical to rollout-at-a-time
evaluation).  Every benchmarked rollout is recorded in the result, so beam
search plugs into the same label/train/rules pipeline as the other
strategies.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro import obs
from repro.schedule.schedule import Schedule
from repro.schedule.space import DecisionState
from repro.search.base import SearchResult, SearchStrategy


class BeamSearch(SearchStrategy):
    """Level-synchronous beam search with rollout-based scoring."""

    name = "beam"

    def __init__(
        self,
        space,
        evaluator,
        width: int = 8,
        rollouts_per_candidate: int = 1,
        seed: int = 0,
        guide=None,
    ) -> None:
        super().__init__(space, evaluator)
        if width < 1:
            raise ValueError("beam width must be >= 1")
        if rollouts_per_candidate < 1:
            raise ValueError("need at least one rollout per candidate")
        self.width = width
        self.rollouts_per_candidate = rollouts_per_candidate
        self.rng = np.random.default_rng(seed)
        #: Optional rule guide (:mod:`repro.advisor.guided`), used as an
        #: ordering prior: each level's expansions are visited in
        #: ascending prefix-violation order (so a truncated budget spends
        #: its rollouts on rule-satisfying prefixes first), and the
        #: penalty breaks measured-score ties when the beam is cut.
        self.guide = guide

    # ------------------------------------------------------------------
    def _random_completion(self, state: DecisionState):
        while not state.is_complete():
            actions = state.available_actions()
            state = state.apply(
                actions[int(self.rng.integers(len(actions)))]
            )
        return state.schedule()

    # ------------------------------------------------------------------
    def run(self, n_iterations: int) -> SearchResult:
        """Explore with a total budget of ``n_iterations`` benchmarks."""
        with obs.span("search.beam", n_iterations=n_iterations):
            result = self._run(n_iterations)
        result.record_metrics()
        return result

    def _run(self, n_iterations: int) -> SearchResult:
        result = SearchResult(strategy=self.name)
        budget = n_iterations
        beam: List[Tuple[float, DecisionState]] = [
            (np.inf, self.space.initial_state())
        ]
        while budget > 0:
            # Expand the level and draw all rollout completions first.
            candidates: List[DecisionState] = []
            penalties: List[float] = []
            rollouts: List[Tuple[int, Schedule]] = []
            any_expandable = False
            for _, state in beam:
                if state.is_complete():
                    continue
                any_expandable = True
                actions = state.available_actions()
                if self.guide is not None:
                    # Ordering prior: expand low-violation children first
                    # (stable on the original action order for ties).
                    priced = sorted(
                        (
                            (self.guide.prefix_penalty(state.placed + a), a)
                            for a in actions
                        ),
                        key=lambda pa: pa[0],
                    )
                else:
                    priced = [(0.0, a) for a in actions]
                for penalty, action in priced:
                    if budget <= 0:
                        break
                    child = state.apply(action)
                    idx = len(candidates)
                    candidates.append(child)
                    penalties.append(penalty)
                    for _ in range(self.rollouts_per_candidate):
                        if budget <= 0:
                            break
                        rollouts.append(
                            (idx, self._random_completion(child))
                        )
                        budget -= 1
            if not any_expandable or not candidates:
                break
            # One batch per beam level.
            scores = [np.inf] * len(candidates)
            measurements = self.evaluator.evaluate_batch(
                [schedule for _, schedule in rollouts]
            )
            for (idx, schedule), m in zip(rollouts, measurements):
                result.add(schedule, m.time)
                result.n_iterations += 1
                scores[idx] = min(scores[idx], m.time)
            scored = sorted(
                zip(scores, penalties, candidates),
                key=lambda sc: (sc[0], sc[1]),
            )
            beam = [(score, state) for score, _, state in scored[: self.width]]
        result.n_simulations = self.evaluator.n_simulations
        return result
