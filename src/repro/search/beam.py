"""Beam search over schedule prefixes (additional baseline).

The paper's related work (§II-A) contrasts MCTS with beam search (Adams et
al., Anderson et al.); §VI asks for alternative strategies "at least as a
baseline for comparison".  Because the performance of a *partial* program
cannot be evaluated (§III-B), each candidate prefix is scored by the best
of ``rollouts_per_candidate`` random completions, exactly the estimator
MCTS uses in its rollout phase.

The search proceeds level by level: expand every action of every prefix in
the beam, score the children, keep the ``width`` best.  Every benchmarked
rollout is recorded in the result, so beam search plugs into the same
label/train/rules pipeline as the other strategies.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.schedule.space import DecisionState, DesignSpace
from repro.search.base import SearchResult, SearchStrategy
from repro.sim.measure import Benchmarker


class BeamSearch(SearchStrategy):
    """Level-synchronous beam search with rollout-based scoring."""

    name = "beam"

    def __init__(
        self,
        space: DesignSpace,
        benchmarker: Benchmarker,
        width: int = 8,
        rollouts_per_candidate: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(space, benchmarker)
        if width < 1:
            raise ValueError("beam width must be >= 1")
        if rollouts_per_candidate < 1:
            raise ValueError("need at least one rollout per candidate")
        self.width = width
        self.rollouts_per_candidate = rollouts_per_candidate
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _random_completion(self, state: DecisionState):
        while not state.is_complete():
            actions = state.available_actions()
            state = state.apply(
                actions[int(self.rng.integers(len(actions)))]
            )
        return state.schedule()

    def _score(
        self, state: DecisionState, budget: List[int], result: SearchResult
    ) -> float:
        """Best rollout time from ``state`` within the remaining budget."""
        best = np.inf
        for _ in range(self.rollouts_per_candidate):
            if budget[0] <= 0:
                break
            schedule = self._random_completion(state)
            t = self.benchmarker.time_of(schedule)
            result.add(schedule, t)
            result.n_iterations += 1
            budget[0] -= 1
            best = min(best, t)
        return best

    # ------------------------------------------------------------------
    def run(self, n_iterations: int) -> SearchResult:
        """Explore with a total budget of ``n_iterations`` benchmarks."""
        result = SearchResult(strategy=self.name)
        budget = [n_iterations]
        beam: List[Tuple[float, DecisionState]] = [
            (np.inf, self.space.initial_state())
        ]
        while budget[0] > 0:
            candidates: List[Tuple[float, DecisionState]] = []
            any_expandable = False
            for _, state in beam:
                if state.is_complete():
                    continue
                any_expandable = True
                for action in state.available_actions():
                    if budget[0] <= 0:
                        break
                    child = state.apply(action)
                    score = self._score(child, budget, result)
                    candidates.append((score, child))
            if not any_expandable or not candidates:
                break
            candidates.sort(key=lambda sc: sc[0])
            beam = candidates[: self.width]
        result.n_simulations = self.benchmarker.n_simulations
        return result
