"""Monte-Carlo tree search over CUDA+MPI schedules (paper §III-C).

The four phases, exactly as specified:

* **Selection** — from the root, recursively pick the child maximizing
  ``exploration + exploitation``, where exploration is
  ``c · sqrt(ln N / n)`` with ``c = sqrt(2)`` (``-inf`` once the child's
  subtree is fully explored), and exploitation is the *coverage ratio*

  .. math:: V = (t^c_{max} - t^c_{min}) / (t^p_{max} - t^p_{min})

  when both child and parent have at least two rollouts, else 1.  "The
  intuition is to favor child nodes with times that represent greater
  coverage of the parent's execution times."  Selection stops at any node
  that has a child (possible action) with no rollouts.

* **Expansion** — create one zero-rollout child of the selected node.

* **Rollout** — complete the prefix by uniformly random frontier choices,
  benchmark the resulting schedule, and add the rollout path's nodes to
  the tree "to retain their performance information".

* **Backpropagation** — update ``t_min`` / ``t_max`` and rollout counts on
  every node along the path, and propagate the fully-explored flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import SearchError
from repro.schedule.schedule import Schedule
from repro.schedule.space import Action, DecisionState, DesignSpace, _action_key
from repro.search.base import SearchResult, SearchStrategy


@dataclass(frozen=True)
class MctsConfig:
    """MCTS hyperparameters (paper defaults)."""

    #: Exploration constant c (paper: sqrt(2)).
    exploration_c: float = math.sqrt(2.0)
    #: RNG seed for rollouts and tie-breaking.
    seed: int = 0
    #: Leaf-parallel rollouts per iteration group.  ``1`` (default) is the
    #: paper's serial protocol: select → expand → rollout → backpropagate,
    #: one schedule at a time.  With ``k > 1`` the search collects ``k``
    #: rollout schedules before benchmarking them as one batch and
    #: backpropagating the measurements *in collection order*; selection
    #: then sees rollout statistics that are up to ``k - 1`` iterations
    #: stale, the standard leaf-parallelization deviation (see
    #: :mod:`repro.exec` for the full determinism contract).
    rollout_batch: int = 1

    def __post_init__(self) -> None:
        if self.rollout_batch < 1:
            raise ValueError("rollout_batch must be >= 1")


class MctsNode:
    """One node of the search tree: a prefix of a schedule.

    The root's prefix is empty; each child extends the parent by one
    action (one operation, or an atomic sync group).
    """

    __slots__ = (
        "parent",
        "action",
        "state",
        "children",
        "_actions",
        "n_rollouts",
        "t_min",
        "t_max",
        "fully_explored",
    )

    def __init__(
        self,
        parent: Optional["MctsNode"],
        action: Optional[Action],
        state: DecisionState,
    ) -> None:
        self.parent = parent
        self.action = action
        self.state = state
        self.children: Dict[Tuple, "MctsNode"] = {}
        self._actions: Optional[Tuple[Action, ...]] = None
        self.n_rollouts = 0
        self.t_min = math.inf
        self.t_max = -math.inf
        self.fully_explored = False

    # ------------------------------------------------------------------
    @property
    def actions(self) -> Tuple[Action, ...]:
        if self._actions is None:
            self._actions = self.state.available_actions()
        return self._actions

    @property
    def is_terminal(self) -> bool:
        return self.state.is_complete()

    def unexpanded_actions(self) -> List[Action]:
        return [
            a for a in self.actions if _action_key(a) not in self.children
        ]

    def child_for(self, action: Action) -> "MctsNode":
        key = _action_key(action)
        child = self.children.get(key)
        if child is None:
            child = MctsNode(
                parent=self, action=action, state=self.state.apply(action)
            )
            self.children[key] = child
        return child

    # -- value terms ----------------------------------------------------
    def exploration_value(self, c: float) -> float:
        if self.fully_explored:
            return -math.inf
        parent_n = self.parent.n_rollouts if self.parent else self.n_rollouts
        if self.n_rollouts == 0 or parent_n == 0:
            return math.inf
        return c * math.sqrt(math.log(parent_n) / self.n_rollouts)

    def exploitation_value(self) -> float:
        parent = self.parent
        if (
            parent is None
            or self.n_rollouts < 2
            or parent.n_rollouts < 2
        ):
            return 1.0
        parent_range = parent.t_max - parent.t_min
        if parent_range <= 0.0:
            return 1.0
        return (self.t_max - self.t_min) / parent_range

    def value(self, c: float) -> float:
        return self.exploration_value(c) + self.exploitation_value()

    # ------------------------------------------------------------------
    def depth(self) -> int:
        d = 0
        node = self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = (
            "root"
            if self.action is None
            else "+".join(op.name for op in self.action)
        )
        return (
            f"MctsNode({label}, n={self.n_rollouts}, "
            f"t=[{self.t_min:g},{self.t_max:g}], "
            f"full={self.fully_explored})"
        )


class MctsSearch(SearchStrategy):
    """The paper's MCTS strategy."""

    name = "mcts"

    def __init__(
        self,
        space: DesignSpace,
        evaluator,
        config: MctsConfig = MctsConfig(),
        guide=None,
    ) -> None:
        super().__init__(space, evaluator)
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        #: Optional rule guide (:mod:`repro.advisor.guided`): rollouts
        #: pick uniformly among the actions adding the least rule-
        #: violation weight instead of among all actions — the tree
        #: phases (selection/expansion/backprop) stay exactly the
        #: paper's, only the rollout policy is biased.
        self.guide = guide
        self.root = MctsNode(
            parent=None, action=None, state=space.initial_state()
        )

    # ------------------------------------------------------------------
    def run(self, n_iterations: int) -> SearchResult:
        with obs.span("search.mcts", n_iterations=n_iterations):
            result = self._run(n_iterations)
        result.record_metrics()
        return result

    def _run(self, n_iterations: int) -> SearchResult:
        result = SearchResult(strategy=self.name)
        while result.n_iterations < n_iterations:
            if self.root.fully_explored:
                break
            # Collect up to ``rollout_batch`` rollouts, then benchmark
            # them as one batch and backpropagate in collection order.
            k = min(
                self.config.rollout_batch,
                n_iterations - result.n_iterations,
            )
            pending: List[Tuple[Schedule, List[MctsNode]]] = []
            for _ in range(k):
                if self.root.fully_explored:
                    break
                node = self._select(self.root)
                node = self._expand(node)
                pending.append(self._rollout(node))
            if not pending:
                break
            measurements = self.evaluator.evaluate_batch(
                [schedule for schedule, _ in pending]
            )
            for (schedule, path), m in zip(pending, measurements):
                self._backpropagate(path, m.time)
                result.add(schedule, m.time)
                result.n_iterations += 1
        result.n_simulations = self.evaluator.n_simulations
        return result

    # -- phases ----------------------------------------------------------
    def _select(self, root: MctsNode) -> MctsNode:
        node = root
        while True:
            if node.is_terminal:
                return node
            if node.unexpanded_actions():
                return node
            children = list(node.children.values())
            zero = [ch for ch in children if ch.n_rollouts == 0]
            if zero:
                # "The recursive search terminates at any node that has a
                # child with no rollouts."
                return node
            viable = [ch for ch in children if not ch.fully_explored]
            if not viable:
                node.fully_explored = True
                if node.parent is None:
                    return node
                node = node.parent
                continue
            c = self.config.exploration_c
            best = max(viable, key=lambda ch: ch.value(c))
            node = best

    def _expand(self, node: MctsNode) -> MctsNode:
        if node.is_terminal:
            return node
        unexpanded = node.unexpanded_actions()
        if unexpanded:
            action = unexpanded[int(self.rng.integers(len(unexpanded)))]
            return node.child_for(action)
        zero = [
            ch for ch in node.children.values() if ch.n_rollouts == 0
        ]
        if zero:
            return zero[int(self.rng.integers(len(zero)))]
        raise SearchError("expansion called on a fully expanded node")

    def _rollout(self, node: MctsNode) -> Tuple[Schedule, List[MctsNode]]:
        """Random completion from ``node``; returns (schedule, tree path).

        The rollout's nodes are added to the tree (paper: "The nodes
        corresponding to this random rollout are constructed and added to
        the tree as well to retain their performance information.")
        """
        path: List[MctsNode] = []
        cur = node
        while cur is not None:
            path.append(cur)
            cur = cur.parent
        path.reverse()  # root .. node
        current = node
        while not current.is_terminal:
            actions = current.actions
            if not actions:
                raise SearchError(
                    "dead end during rollout; inconsistent design space"
                )
            if self.guide is not None and len(actions) > 1:
                placed = current.state.placed
                penalties = [
                    self.guide.prefix_penalty(placed + a) for a in actions
                ]
                floor = min(penalties)
                actions = tuple(
                    a for a, p in zip(actions, penalties) if p == floor
                )
            action = actions[int(self.rng.integers(len(actions)))]
            current = current.child_for(action)
            path.append(current)
        return current.state.schedule(), path

    def _backpropagate(self, path: List[MctsNode], time: float) -> None:
        # Terminal leaf of the rollout is fully explored by definition.
        for node in reversed(path):
            node.n_rollouts += 1
            node.t_min = min(node.t_min, time)
            node.t_max = max(node.t_max, time)
        for node in reversed(path):
            self._update_fully_explored(node)

    def _update_fully_explored(self, node: MctsNode) -> None:
        if node.is_terminal:
            node.fully_explored = True
            return
        if node.unexpanded_actions():
            return
        if all(ch.fully_explored for ch in node.children.values()):
            node.fully_explored = True

    # ------------------------------------------------------------------
    def tree_size(self) -> int:
        """Number of nodes currently in the tree."""

        def count(node: MctsNode) -> int:
            return 1 + sum(count(ch) for ch in node.children.values())

        return count(self.root)

    def max_depth(self) -> int:
        def depth(node: MctsNode) -> int:
            if not node.children:
                return 0
            return 1 + max(depth(ch) for ch in node.children.values())

        return depth(self.root)
