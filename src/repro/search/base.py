"""Common interfaces for design-space search."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro import obs
from repro.schedule.schedule import Schedule
from repro.schedule.space import DesignSpace
from repro.sim.measure import Benchmarker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.evaluator import Evaluator


@dataclass(frozen=True)
class SearchSample:
    """One explored implementation and its measured time."""

    schedule: Schedule
    time: float


@dataclass
class SearchResult:
    """Everything a search produced, in exploration order.

    ``samples`` may contain repeated schedules (MCTS rollouts can revisit);
    :meth:`unique` deduplicates keeping the first measurement, which is
    what label generation consumes.
    """

    strategy: str
    samples: List[SearchSample] = field(default_factory=list)
    n_iterations: int = 0
    n_simulations: int = 0
    #: Schedules a rule guide rejected before evaluation (guided search
    #: only; see :mod:`repro.advisor.guided`).
    n_pruned: int = 0
    #: Whole subtrees branch-and-bound cut before enumeration (guided
    #: exhaustive search), or rollouts abandoned mid-prefix (guided
    #: random search).  Schedules inside cut subtrees are counted in
    #: neither ``n_iterations`` nor ``n_pruned`` — they were never built.
    n_subtrees_cut: int = 0

    def add(self, schedule: Schedule, time: float) -> None:
        self.samples.append(SearchSample(schedule=schedule, time=time))

    def unique(self) -> "SearchResult":
        seen: Dict[Schedule, None] = {}
        out = SearchResult(
            strategy=self.strategy,
            n_iterations=self.n_iterations,
            n_simulations=self.n_simulations,
            n_pruned=self.n_pruned,
            n_subtrees_cut=self.n_subtrees_cut,
        )
        for s in self.samples:
            if s.schedule not in seen:
                seen[s.schedule] = None
                out.samples.append(s)
        return out

    def schedules(self) -> List[Schedule]:
        return [s.schedule for s in self.samples]

    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.samples])

    def record_metrics(self) -> None:
        """Emit this result's counters into the ambient metrics registry.

        Called once at the end of every strategy's ``run`` — counter
        totals across range shards therefore equal the serial sweep's,
        because shard results partition the same enumeration.
        """
        obs.add("search.schedules_evaluated", self.n_iterations)
        if self.n_pruned:
            obs.add("search.pruned", self.n_pruned)
        if self.n_subtrees_cut:
            obs.add("search.subtrees_cut", self.n_subtrees_cut)

    def best(self) -> SearchSample:
        return min(self.samples, key=lambda s: s.time)

    def worst(self) -> SearchSample:
        return max(self.samples, key=lambda s: s.time)

    def __len__(self) -> int:
        return len(self.samples)


class SearchStrategy(abc.ABC):
    """A strategy explores a design space through an evaluator.

    Strategies submit *batches* of candidate schedules via
    :meth:`repro.exec.Evaluator.evaluate_batch` and never own a
    measurement loop, so serial and parallel evaluation are
    interchangeable.  For backwards compatibility a bare
    :class:`~repro.sim.measure.Benchmarker` is accepted and wrapped in a
    :class:`~repro.exec.SerialEvaluator`; ``self.benchmarker`` then
    aliases the wrapped benchmarker (``None`` for non-serial backends).
    """

    name: str = "search"

    def __init__(
        self, space: DesignSpace, evaluator: "Evaluator | Benchmarker"
    ) -> None:
        from repro.exec.evaluator import as_evaluator

        self.space = space
        self.evaluator = as_evaluator(evaluator)
        self.benchmarker: Optional[Benchmarker] = getattr(
            self.evaluator, "benchmarker", None
        )

    @abc.abstractmethod
    def run(self, n_iterations: int) -> SearchResult:
        """Explore for ``n_iterations`` iterations (one benchmark each)."""
