"""Uniform random sampling of the design space.

The paper's future-work section (§VI) proposes exactly this comparison:
"a search strategy that randomly samples the design space could be used to
show that the current strategy indeed produces better results."  We
implement it as the ablation baseline: each iteration draws one schedule
by uniform frontier choice (the same policy as an MCTS rollout, but with
no tree, no selection bias, and no memory).
"""

from __future__ import annotations

import numpy as np

from repro.schedule.space import DesignSpace
from repro.search.base import SearchResult, SearchStrategy
from repro.sim.measure import Benchmarker


class RandomSearch(SearchStrategy):
    """Memoryless random exploration (baseline)."""

    name = "random"

    def __init__(
        self,
        space: DesignSpace,
        benchmarker: Benchmarker,
        seed: int = 0,
        dedup: bool = False,
    ) -> None:
        super().__init__(space, benchmarker)
        self.rng = np.random.default_rng(seed)
        self.dedup = dedup

    def run(self, n_iterations: int) -> SearchResult:
        result = SearchResult(strategy=self.name)
        seen = set()
        attempts = 0
        max_attempts = 50 * max(1, n_iterations)
        while result.n_iterations < n_iterations and attempts < max_attempts:
            attempts += 1
            schedule = self.space.random_schedule(self.rng)
            if self.dedup:
                if schedule in seen:
                    continue
                seen.add(schedule)
            time = self.benchmarker.time_of(schedule)
            result.add(schedule, time)
            result.n_iterations += 1
        result.n_simulations = self.benchmarker.n_simulations
        return result
