"""Uniform random sampling of the design space.

The paper's future-work section (§VI) proposes exactly this comparison:
"a search strategy that randomly samples the design space could be used to
show that the current strategy indeed produces better results."  We
implement it as the ablation baseline: each iteration draws one schedule
by uniform frontier choice (the same policy as an MCTS rollout, but with
no tree, no selection bias, and no memory).

Draws are collected into sample blocks of up to ``batch_size`` schedules
and submitted to the evaluator as one batch.  Because measurement never
consumes the sampling RNG, the drawn sequence — and therefore every
result — is identical to drawing and measuring one schedule at a time.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import obs
from repro.schedule.schedule import Schedule
from repro.search.base import SearchResult, SearchStrategy


class RandomSearch(SearchStrategy):
    """Memoryless random exploration (baseline)."""

    name = "random"

    def __init__(
        self,
        space,
        evaluator,
        seed: int = 0,
        dedup: bool = False,
        batch_size: int = 64,
        guide=None,
    ) -> None:
        super().__init__(space, evaluator)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.rng = np.random.default_rng(seed)
        self.dedup = dedup
        self.batch_size = batch_size
        #: Optional rule guide (:mod:`repro.advisor.guided`): rollouts
        #: whose prefix determinately violates a prune-strength rule are
        #: abandoned mid-draw (counted in ``n_subtrees_cut``, mirroring
        #: the enumerator's branch-and-bound cut), and completed draws
        #: the guide still rejects are skipped (``n_pruned``) before
        #: they cost a simulation — rejection sampling toward the
        #: rule-satisfying region, bounded by the same attempt cap.
        self.guide = guide

    def run(self, n_iterations: int) -> SearchResult:
        with obs.span(
            "search.random",
            n_iterations=n_iterations,
            guided=self.guide is not None,
        ):
            result = self._run(n_iterations)
        result.record_metrics()
        return result

    def _run(self, n_iterations: int) -> SearchResult:
        result = SearchResult(strategy=self.name)
        seen = set()
        attempts = 0
        max_attempts = 50 * max(1, n_iterations)
        while result.n_iterations < n_iterations and attempts < max_attempts:
            block: List[Schedule] = []
            while (
                result.n_iterations + len(block) < n_iterations
                and len(block) < self.batch_size
                and attempts < max_attempts
            ):
                attempts += 1
                keep_prefix = (
                    self.guide.admits_prefix
                    if self.guide is not None
                    else None
                )
                schedule = self.space.random_schedule(
                    self.rng, keep_prefix=keep_prefix
                )
                if schedule is None:  # rollout abandoned mid-prefix
                    result.n_subtrees_cut += 1
                    continue
                if self.guide is not None and not self.guide.admits(schedule):
                    result.n_pruned += 1
                    continue
                if self.dedup:
                    if schedule in seen:
                        continue
                    seen.add(schedule)
                block.append(schedule)
            if not block:
                break
            for schedule, m in zip(
                block, self.evaluator.evaluate_batch(block)
            ):
                result.add(schedule, m.time)
                result.n_iterations += 1
        result.n_simulations = self.evaluator.n_simulations
        return result
