"""Performance-class labeling (paper §IV-A, Figure 4).

1. Sort the measured times ascending.
2. Convolve with a step kernel of radius ``r`` — ``-1`` over the left
   half-window, ``+1`` over the right — so jumps in the sorted curve
   become peaks.  ``r`` is 0.5 % of the measurement count (minimum 1), a
   screen against small fluctuations.
3. Detect peaks and keep those with prominence at or above the 98th
   percentile; each surviving peak is a class boundary.
4. Label every measurement with its class (0 = fastest class).

Each class also carries its observed time range — the interval used by the
paper's Table V accuracy metric ("the proportion of implementations with
performance that falls within the label's range").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import LabelingError
from repro.ml.peaks import prominent_peaks


@dataclass(frozen=True)
class LabelingConfig:
    """Knobs of the labeling procedure (paper defaults)."""

    #: Step-kernel radius as a fraction of the number of measurements.
    radius_fraction: float = 0.005
    #: Minimum kernel radius.
    min_radius: int = 1
    #: Keep peaks with prominence at/above this percentile.
    prominence_percentile: float = 98.0
    #: Scale-free floor: a boundary peak must additionally have prominence
    #: of at least this fraction of the total time spread (screens float
    #: noise on near-flat data; the paper's percentile screen alone is not
    #: scale-free).
    min_prominence_fraction: float = 0.01

    def radius(self, n: int) -> int:
        return max(self.min_radius, int(round(self.radius_fraction * n)))


@dataclass(frozen=True)
class ClassInfo:
    """One performance class: index interval in the sorted order + times."""

    label: int
    #: Half-open [start, stop) interval into the sorted measurement array.
    start: int
    stop: int
    t_min: float
    t_max: float

    @property
    def size(self) -> int:
        return self.stop - self.start

    def contains_time(self, t: float) -> bool:
        return self.t_min <= t <= self.t_max


@dataclass
class LabelResult:
    """Output of :func:`label_by_performance`."""

    #: Class label per input measurement (original order).
    labels: np.ndarray
    #: Class metadata, fastest first.
    classes: List[ClassInfo]
    #: Sorted times (ascending) — Figure 4a.
    sorted_times: np.ndarray
    #: Convolution signal over the sorted times — Figure 4b.  Index i of
    #: this array corresponds to sorted index i + radius.
    convolution: np.ndarray
    #: Prominence threshold actually applied.
    prominence_threshold: float
    #: Sorted-order boundary positions (indices into sorted_times).
    boundaries: np.ndarray
    #: Kernel radius used.
    radius: int

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def class_of_time(self, t: float) -> int:
        """Class whose time range contains ``t`` (nearest range if none)."""
        for c in self.classes:
            if c.contains_time(t):
                return c.label
        # Outside every range: attribute to the nearest class by distance.
        dists = [
            0.0 if c.contains_time(t) else min(abs(t - c.t_min), abs(t - c.t_max))
            for c in self.classes
        ]
        return int(np.argmin(dists))


def step_kernel_convolution(sorted_times: np.ndarray, radius: int) -> np.ndarray:
    """Convolve the sorted curve with the ±r step kernel (valid region only).

    Output index ``i`` corresponds to sorted index ``i + radius``: the value
    is ``sum(a[i+1 .. i+r]) - sum(a[i-r+1 .. i])`` — the jump in local mean
    across position ``i`` scaled by ``r``.
    """
    if radius < 1:
        raise LabelingError("kernel radius must be >= 1")
    a = np.asarray(sorted_times, dtype=float)
    n = len(a)
    if n < 2 * radius + 1:
        return np.zeros(0)
    # kernel: r taps of -1 (past) followed by r taps of +1 (future).
    kernel = np.concatenate([np.ones(radius), -np.ones(radius)])
    # np.convolve flips the kernel; arrange so output[i] = future - past.
    out = np.convolve(a, kernel, mode="valid")
    # 'valid' length is n - 2r + 1; drop the last element so that output
    # index i maps to boundary between sorted positions i+r-1 and i+r.
    return out[:-1] if len(out) > 0 else out


def label_by_performance(
    times: Sequence[float], config: LabelingConfig = LabelingConfig()
) -> LabelResult:
    """Assign a performance-class label to every measurement."""
    t = np.asarray(list(times), dtype=float)
    n = len(t)
    if n == 0:
        raise LabelingError("no measurements to label")
    order = np.argsort(t, kind="stable")
    sorted_t = t[order]
    radius = config.radius(n)
    conv = step_kernel_convolution(sorted_t, radius)
    if len(conv) == 0:
        peaks = np.array([], dtype=int)
        threshold = 0.0
    else:
        peaks, proms, threshold = prominent_peaks(
            conv, config.prominence_percentile
        )
        spread = float(sorted_t[-1] - sorted_t[0])
        floor = config.min_prominence_fraction * spread * radius
        if floor > 0:
            keep = proms >= floor
            peaks = peaks[keep]
    # Convolution index i maps to sorted index i + radius; a peak there
    # means a jump between sorted positions (boundary before index).
    boundaries = np.sort(peaks + radius)
    # Deduplicate and drop degenerate edges.
    boundaries = np.unique(boundaries[(boundaries > 0) & (boundaries < n)])

    classes: List[ClassInfo] = []
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [n]])
    for label, (lo, hi) in enumerate(zip(starts, stops)):
        seg = sorted_t[lo:hi]
        classes.append(
            ClassInfo(
                label=label,
                start=int(lo),
                stop=int(hi),
                t_min=float(seg.min()),
                t_max=float(seg.max()),
            )
        )
    labels_sorted = np.zeros(n, dtype=int)
    for c in classes:
        labels_sorted[c.start : c.stop] = c.label
    labels = np.empty(n, dtype=int)
    labels[order] = labels_sorted
    return LabelResult(
        labels=labels,
        classes=classes,
        sorted_times=sorted_t,
        convolution=conv,
        prominence_threshold=threshold,
        boundaries=boundaries,
        radius=radius,
    )
