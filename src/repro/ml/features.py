"""Sequence-to-vector feature transformation (paper §IV-B).

"An ordering feature is defined for each pairwise combination of traversal
operations u and v.  This feature is 1 if u appears in the traversal before
v, and 0 otherwise.  Similarly, a stream assignment feature is defined for
each pairwise combination of BoundGPU operations.  This feature is 1 if u
and v occur in the same stream, and 0 otherwise.  Many of these feature
entries will have the same value for all traversals ... Such features are
removed."

Feature naming matches the paper's rule text:

* ordering feature value 1 → "u before v";     value 0 → "v before u"
* stream feature value 1   → "u same stream as v"; value 0 →
  "u different stream than v"
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np

from repro.dag.vertex import OpKind
from repro.errors import TrainingError
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class OrderFeature:
    """Binary feature: 1 iff ``u`` precedes ``v`` in the launch sequence."""

    u: str
    v: str

    def describe(self, value: bool) -> str:
        return f"{self.u} before {self.v}" if value else f"{self.v} before {self.u}"

    @property
    def name(self) -> str:
        return f"order({self.u},{self.v})"


@dataclass(frozen=True)
class StreamFeature:
    """Binary feature: 1 iff GPU ops ``u`` and ``v`` share a stream."""

    u: str
    v: str

    def describe(self, value: bool) -> str:
        if value:
            return f"{self.u} same stream as {self.v}"
        return f"{self.u} different stream than {self.v}"

    @property
    def name(self) -> str:
        return f"stream({self.u},{self.v})"


Feature = object  # OrderFeature | StreamFeature


@dataclass
class FeatureMatrix:
    """Extracted features for a set of schedules."""

    matrix: np.ndarray  # shape (n_schedules, n_features), dtype uint8
    features: List[Feature]

    @property
    def n_features(self) -> int:
        return len(self.features)

    def column(self, feature: Feature) -> np.ndarray:
        return self.matrix[:, self.features.index(feature)]


class FeatureExtractor:
    """Builds feature vectors over a fixed operation vocabulary.

    The vocabulary (which ops exist, which are GPU) is fixed at ``fit``
    time from the schedules' *common* operations, so an extractor fitted
    on a search subset can featurize the full space consistently (needed
    for the Table V generalization experiment).  Constant columns are
    dropped at fit time; ``transform`` reuses the fitted set.
    """

    def __init__(self) -> None:
        self.ops: Tuple[str, ...] = ()
        self.gpu_ops: Tuple[str, ...] = ()
        self.features: List[Feature] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, schedules: Sequence[Schedule]) -> "FeatureExtractor":
        if not schedules:
            raise TrainingError("cannot fit features on zero schedules")
        common = set(schedules[0].op_names())
        for s in schedules[1:]:
            common &= set(s.op_names())
        # Stable order: first schedule's sequence order.
        self.ops = tuple(
            n for n in schedules[0].op_names() if n in common
        )
        gpu = [
            op.name
            for op in schedules[0].ops
            if op.kind is OpKind.GPU and op.name in common
        ]
        self.gpu_ops = tuple(gpu)
        candidates: List[Feature] = [
            OrderFeature(u, v) for u, v in combinations(self.ops, 2)
        ]
        candidates += [
            StreamFeature(u, v) for u, v in combinations(self.gpu_ops, 2)
        ]
        full = self._raw_matrix(schedules, candidates)
        keep = [
            j
            for j in range(full.shape[1])
            if not np.all(full[:, j] == full[0, j])
        ]
        self.features = [candidates[j] for j in keep]
        self._fitted = True
        return self

    def transform(self, schedules: Sequence[Schedule]) -> FeatureMatrix:
        if not self._fitted:
            raise TrainingError("extractor is not fitted")
        return FeatureMatrix(
            matrix=self._raw_matrix(schedules, self.features),
            features=self.features,
        )

    def fit_transform(self, schedules: Sequence[Schedule]) -> FeatureMatrix:
        return self.fit(schedules).transform(schedules)

    # ------------------------------------------------------------------
    def _raw_matrix(
        self, schedules: Sequence[Schedule], features: Sequence[Feature]
    ) -> np.ndarray:
        mat = np.zeros((len(schedules), len(features)), dtype=np.uint8)
        for i, s in enumerate(schedules):
            pos = {op.name: k for k, op in enumerate(s.ops)}
            streams = {
                op.name: op.stream
                for op in s.ops
                if op.kind is OpKind.GPU
            }
            for j, f in enumerate(features):
                if isinstance(f, OrderFeature):
                    pu, pv = pos.get(f.u), pos.get(f.v)
                    if pu is None or pv is None:
                        raise TrainingError(
                            f"schedule missing op for feature {f}"
                        )
                    mat[i, j] = 1 if pu < pv else 0
                else:
                    mat[i, j] = 1 if streams[f.u] == streams[f.v] else 0
        return mat
