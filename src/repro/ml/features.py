"""Sequence-to-vector feature transformation (paper §IV-B).

"An ordering feature is defined for each pairwise combination of traversal
operations u and v.  This feature is 1 if u appears in the traversal before
v, and 0 otherwise.  Similarly, a stream assignment feature is defined for
each pairwise combination of BoundGPU operations.  This feature is 1 if u
and v occur in the same stream, and 0 otherwise.  Many of these feature
entries will have the same value for all traversals ... Such features are
removed."

Feature naming matches the paper's rule text:

* ordering feature value 1 → "u before v";     value 0 → "v before u"
* stream feature value 1   → "u same stream as v"; value 0 →
  "u different stream than v"
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dag.vertex import OpKind
from repro.errors import TrainingError
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class OrderFeature:
    """Binary feature: 1 iff ``u`` precedes ``v`` in the launch sequence."""

    u: str
    v: str

    def describe(self, value: bool) -> str:
        return f"{self.u} before {self.v}" if value else f"{self.v} before {self.u}"

    @property
    def name(self) -> str:
        return f"order({self.u},{self.v})"


@dataclass(frozen=True)
class StreamFeature:
    """Binary feature: 1 iff GPU ops ``u`` and ``v`` share a stream."""

    u: str
    v: str

    def describe(self, value: bool) -> str:
        if value:
            return f"{self.u} same stream as {self.v}"
        return f"{self.u} different stream than {self.v}"

    @property
    def name(self) -> str:
        return f"stream({self.u},{self.v})"


Feature = object  # OrderFeature | StreamFeature


@dataclass
class FeatureMatrix:
    """Extracted features for a set of schedules."""

    matrix: np.ndarray  # shape (n_schedules, n_features), dtype uint8
    features: List[Feature]

    @property
    def n_features(self) -> int:
        return len(self.features)

    def column(self, feature: Feature) -> np.ndarray:
        return self.matrix[:, self.features.index(feature)]


class FeatureExtractor:
    """Builds feature vectors over a fixed operation vocabulary.

    The vocabulary (which ops exist, which are GPU) is fixed at ``fit``
    time from the schedules' *common* operations, so an extractor fitted
    on a search subset can featurize the full space consistently (needed
    for the Table V generalization experiment).  Constant columns are
    dropped at fit time; ``transform`` reuses the fitted set.
    """

    def __init__(self) -> None:
        self.ops: Tuple[str, ...] = ()
        self.gpu_ops: Tuple[str, ...] = ()
        self.features: List[Feature] = []
        self._fitted = False

    # ------------------------------------------------------------------
    def _set_vocabulary(
        self, template: Schedule, common: frozenset
    ) -> List[Feature]:
        """Fix op order (the template schedule's launch sequence restricted
        to ``common``) and return the pairwise candidate features."""
        self.ops = tuple(n for n in template.op_names() if n in common)
        self.gpu_ops = tuple(
            op.name
            for op in template.ops
            if op.kind is OpKind.GPU and op.name in common
        )
        candidates: List[Feature] = [
            OrderFeature(u, v) for u, v in combinations(self.ops, 2)
        ]
        candidates += [
            StreamFeature(u, v) for u, v in combinations(self.gpu_ops, 2)
        ]
        return candidates

    @staticmethod
    def _varying_columns(full: np.ndarray) -> List[int]:
        """Indices of non-constant columns (the paper drops the rest)."""
        return [
            j
            for j in range(full.shape[1])
            if not np.all(full[:, j] == full[0, j])
        ]

    def fit(self, schedules: Sequence[Schedule]) -> "FeatureExtractor":
        if not schedules:
            raise TrainingError("cannot fit features on zero schedules")
        common = set(schedules[0].op_names())
        for s in schedules[1:]:
            common &= set(s.op_names())
        candidates = self._set_vocabulary(schedules[0], frozenset(common))
        full = self._raw_matrix(schedules, candidates)
        keep = self._varying_columns(full)
        self.features = [candidates[j] for j in keep]
        self._fitted = True
        return self

    def transform(self, schedules: Sequence[Schedule]) -> FeatureMatrix:
        if not self._fitted:
            raise TrainingError("extractor is not fitted")
        return FeatureMatrix(
            matrix=self._raw_matrix(schedules, self.features),
            features=self.features,
        )

    def fit_transform(self, schedules: Sequence[Schedule]) -> FeatureMatrix:
        return self.fit(schedules).transform(schedules)

    # ------------------------------------------------------------------
    def _raw_matrix(
        self, schedules: Sequence[Schedule], features: Sequence[Feature]
    ) -> np.ndarray:
        mat = np.zeros((len(schedules), len(features)), dtype=np.uint8)
        for i, s in enumerate(schedules):
            pos = {op.name: k for k, op in enumerate(s.ops)}
            streams = {
                op.name: op.stream
                for op in s.ops
                if op.kind is OpKind.GPU
            }
            for j, f in enumerate(features):
                if isinstance(f, OrderFeature):
                    pu, pv = pos.get(f.u), pos.get(f.v)
                    if pu is None or pv is None:
                        raise TrainingError(
                            f"schedule missing op for feature {f}"
                        )
                    mat[i, j] = 1 if pu < pv else 0
                else:
                    mat[i, j] = 1 if streams[f.u] == streams[f.v] else 0
        return mat


class StreamingFeatureFit:
    """Incremental :class:`FeatureExtractor` fit over schedule blocks.

    ``fit_transform`` needs every schedule at once — twice over (once to
    intersect the op vocabulary, once for the matrix) — which defeats
    streaming enumeration.  This accumulator takes the common-op
    vocabulary up front (for an exhaustive walk it is exactly
    :meth:`repro.schedule.space.DesignSpace.all_op_names`: program ops
    plus the always-inserted CER/CES sync ops), consumes blocks one at a
    time, and keeps only the *varying* candidate columns — never the
    schedules, and never the constant columns that dominate the candidate
    matrix (most pairwise candidates are dependency-forced).

    Column compaction is incremental: a candidate column is stored only
    from the first block where it deviates from the reference (first)
    row; earlier blocks' values for it are, by definition of "constant so
    far", exactly the reference value, so ``finish`` backfills them and
    the result stays bit-identical to
    ``FeatureExtractor().fit_transform(all_schedules)`` whenever
    ``common_ops`` matches the schedules' true common-op set.  Peak
    memory is one full-width *block* (not space) plus the varying
    columns of everything seen — the difference between labeling a
    10^7-schedule space and not.
    """

    def __init__(self, common_ops: Sequence[str]) -> None:
        self._common = frozenset(common_ops)
        if not self._common:
            raise TrainingError("cannot fit features on an empty vocabulary")
        self._extractor = FeatureExtractor()
        self._candidates: Optional[List[Feature]] = None
        self._first_row: Optional[np.ndarray] = None
        self._varying: List[int] = []  # ascending candidate indices
        self._varying_set: set = set()
        #: Per-block chunks: (candidate indices stored, their values).
        self._chunks: List[Tuple[Tuple[int, ...], np.ndarray]] = []
        self.n_schedules = 0

    @property
    def n_candidates(self) -> int:
        """Pairwise candidate features before constant-column pruning."""
        return len(self._candidates) if self._candidates is not None else 0

    @property
    def n_varying(self) -> int:
        """Candidate columns seen to vary so far (= final feature count
        once the stream is done)."""
        return len(self._varying)

    def add_block(self, schedules: Sequence[Schedule]) -> None:
        """Featurize one block of schedules against the candidate set.

        The first block's first schedule fixes the op order (its launch
        sequence, restricted to the common vocabulary) exactly as
        :meth:`FeatureExtractor.fit` does with the first schedule of a
        fully materialized set.
        """
        if not schedules:
            return
        if self._candidates is None:
            self._candidates = self._fix_vocabulary(schedules[0])
        block = self._extractor._raw_matrix(schedules, self._candidates)
        if self._first_row is None:
            self._first_row = block[0].copy()
        if len(self._varying) < len(self._candidates):
            deviates = np.nonzero(np.any(block != self._first_row, axis=0))[0]
            new = [int(j) for j in deviates if j not in self._varying_set]
            if new:
                self._varying_set.update(new)
                self._varying = sorted(self._varying_set)
        cols = tuple(self._varying)
        self._chunks.append((cols, block[:, list(cols)]))
        self.n_schedules += len(schedules)

    def finish(self) -> Tuple[FeatureExtractor, FeatureMatrix]:
        """Drop constant columns and seal the extractor."""
        if self._candidates is None or not self.n_schedules:
            raise TrainingError("cannot fit features on zero schedules")
        keep = self._varying
        self._extractor.features = [self._candidates[j] for j in keep]
        self._extractor._fitted = True
        full = np.empty((self.n_schedules, len(keep)), dtype=np.uint8)
        col_pos = {j: p for p, j in enumerate(keep)}
        row = 0
        for cols, mat in self._chunks:
            n = mat.shape[0]
            # Columns this chunk predates were still constant then: their
            # values are the reference row's, backfilled by broadcast.
            full[row : row + n] = self._first_row[keep]
            for local, j in enumerate(cols):
                full[row : row + n, col_pos[j]] = mat[:, local]
            row += n
        return self._extractor, FeatureMatrix(
            matrix=full, features=list(self._extractor.features)
        )

    # ------------------------------------------------------------------
    def _fix_vocabulary(self, template: Schedule) -> List[Feature]:
        missing = self._common - set(template.op_names())
        if missing:
            raise TrainingError(
                f"template schedule lacks common ops: {sorted(missing)}"
            )
        return self._extractor._set_vocabulary(template, self._common)


#: Schedule op name -> canonical key; ``None``/absent ops do not
#: participate in mapped features.
KeyMapping = Mapping[str, Optional[str]]


class MappedFeatureExtractor:
    """Feature extraction over canonical op *keys* instead of raw names.

    The base :class:`FeatureExtractor` identifies operations by name,
    which confines a feature space to a single program.  This extractor
    takes, alongside each schedule set, a name→key mapping (typically
    structural signature keys from
    :func:`repro.transfer.signature.program_signatures`) and builds the
    pairwise features over keys shared by at least ``min_sets`` tagged
    sets — one canonical feature space several programs project into.
    Requiring two sets (the default) grounds every feature in transfer:
    some *other* program can express it too; strict intersection across
    all sets would leave nothing when even one comm-free workload joins
    a union of communication patterns.

    Several ops of one schedule may share a key; features quantify
    universally, matching rule evaluation in :mod:`repro.rules.score`:
    an ordering feature is 1 iff every ``u``-key op launches before every
    ``v``-key op, and a stream feature is 1 iff all cross pairs share a
    stream.  A feature whose keys a schedule lacks evaluates to 0 there —
    a constraint about structure a program does not have is unsatisfied,
    not an error — which also makes held-out-workload projection total.
    """

    def __init__(self) -> None:
        self.keys: Tuple[str, ...] = ()
        self.gpu_keys: Tuple[str, ...] = ()
        self.features: List[Feature] = []
        self._fitted = False

    # ------------------------------------------------------------------
    @staticmethod
    def _schedule_groups(
        schedule: Schedule, mapping: KeyMapping
    ) -> Tuple[Dict[str, List[int]], Dict[str, List[int]]]:
        """(key -> launch positions, key -> GPU stream bindings)."""
        order: Dict[str, List[int]] = {}
        streams: Dict[str, List[int]] = {}
        for i, op in enumerate(schedule.ops):
            key = mapping.get(op.name)
            if key is None:
                continue
            order.setdefault(key, []).append(i)
            if op.kind is OpKind.GPU:
                streams.setdefault(key, []).append(op.stream)  # type: ignore[arg-type]
        return order, streams

    def fit(
        self,
        tagged: Sequence[Tuple[Sequence[Schedule], KeyMapping]],
        *,
        min_sets: Optional[int] = None,
    ) -> "MappedFeatureExtractor":
        """Fix the key vocabulary and feature set from several schedule
        sets, each with its own name→key mapping.

        A key enters the vocabulary when it appears (in some schedule)
        in at least ``min_sets`` sets — default ``min(2, len(tagged))``.
        Constant columns over the concatenated sets are dropped.
        """
        if not tagged or not any(schedules for schedules, _ in tagged):
            raise TrainingError("cannot fit mapped features on zero schedules")
        if min_sets is None:
            min_sets = min(2, len(tagged))
        seen_in: Dict[str, int] = {}
        gpu_seen_in: Dict[str, int] = {}
        for schedules, mapping in tagged:
            present: set = set()
            gpu_present: set = set()
            for s in schedules:
                order, streams = self._schedule_groups(s, mapping)
                present |= set(order)
                gpu_present |= set(streams)
            for key in present:
                seen_in[key] = seen_in.get(key, 0) + 1
            for key in gpu_present:
                gpu_seen_in[key] = gpu_seen_in.get(key, 0) + 1
        self.keys = tuple(
            sorted(k for k, n in seen_in.items() if n >= min_sets)
        )
        self.gpu_keys = tuple(
            sorted(k for k, n in gpu_seen_in.items() if n >= min_sets)
        )
        candidates: List[Feature] = [
            OrderFeature(u, v) for u, v in combinations(self.keys, 2)
        ]
        candidates += [
            StreamFeature(u, v) for u, v in combinations(self.gpu_keys, 2)
        ]
        blocks = [
            self._raw_matrix(schedules, mapping, candidates)
            for schedules, mapping in tagged
            if schedules
        ]
        full = np.concatenate(blocks, axis=0)
        keep = [
            j
            for j in range(full.shape[1])
            if not np.all(full[:, j] == full[0, j])
        ]
        self.features = [candidates[j] for j in keep]
        self._fitted = True
        return self

    def transform(
        self, schedules: Sequence[Schedule], mapping: KeyMapping
    ) -> FeatureMatrix:
        if not self._fitted:
            raise TrainingError("extractor is not fitted")
        return FeatureMatrix(
            matrix=self._raw_matrix(schedules, mapping, self.features),
            features=self.features,
        )

    # ------------------------------------------------------------------
    def _raw_matrix(
        self,
        schedules: Sequence[Schedule],
        mapping: KeyMapping,
        features: Sequence[Feature],
    ) -> np.ndarray:
        mat = np.zeros((len(schedules), len(features)), dtype=np.uint8)
        for i, s in enumerate(schedules):
            order, streams = self._schedule_groups(s, mapping)
            for j, f in enumerate(features):
                if isinstance(f, OrderFeature):
                    us, vs = order.get(f.u), order.get(f.v)
                    if us and vs:
                        mat[i, j] = 1 if max(us) < min(vs) else 0
                else:
                    su, sv = streams.get(f.u), streams.get(f.v)
                    if su and sv:
                        mat[i, j] = (
                            1 if all(a == b for a in su for b in sv) else 0
                        )
        return mat
