"""CART decision tree, from scratch (paper §IV-C, Table IV).

The paper trains scikit-learn's ``DecisionTreeClassifier`` (CART [30]) with
``criterion`` gini or entropy, ``class_weight="balanced"``, and
``max_leaf_nodes`` / ``max_depth`` chosen by Algorithm 1.  scikit-learn is
not installable in this offline environment, so this module implements the
same algorithm:

* impurity: Gini or entropy over *weighted* class frequencies;
* ``class_weight="balanced"``: sample weight
  ``n_samples / (n_classes * count(class))``;
* growth: best-first — repeatedly split the leaf with the greatest
  weighted impurity decrease — which is exactly how scikit-learn grows
  trees when ``max_leaf_nodes`` is set;
* splits: binary tests ``x[f] <= threshold``; for the pipeline's binary
  features the threshold is always 0.5 (left = feature 0, right = 1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError


@dataclass(frozen=True)
class TreeConfig:
    """Training hyperparameters (paper Table IV)."""

    criterion: str = "gini"  # "gini" | "entropy"
    max_leaf_nodes: Optional[int] = None
    max_depth: Optional[int] = None
    class_weight: Optional[str] = "balanced"  # "balanced" | None
    min_impurity_decrease: float = 0.0

    def __post_init__(self) -> None:
        if self.criterion not in ("gini", "entropy"):
            raise TrainingError(f"unknown criterion {self.criterion!r}")
        if self.max_leaf_nodes is not None and self.max_leaf_nodes < 2:
            raise TrainingError("max_leaf_nodes must be >= 2")
        if self.class_weight not in (None, "balanced"):
            raise TrainingError(f"unknown class_weight {self.class_weight!r}")


def _impurity(weighted_counts: np.ndarray, criterion: str) -> float:
    total = weighted_counts.sum()
    if total <= 0:
        return 0.0
    p = weighted_counts / total
    if criterion == "gini":
        return float(1.0 - np.sum(p * p))
    nz = p[p > 0]
    return float(-np.sum(nz * np.log2(nz)))


class TreeNode:
    """One node of the fitted tree."""

    __slots__ = (
        "node_id",
        "depth",
        "feature",
        "threshold",
        "left",
        "right",
        "n_samples",
        "weighted_counts",
    )

    def __init__(
        self,
        node_id: int,
        depth: int,
        n_samples: int,
        weighted_counts: np.ndarray,
    ) -> None:
        self.node_id = node_id
        self.depth = depth
        self.feature: Optional[int] = None
        self.threshold: float = 0.0
        self.left: Optional["TreeNode"] = None
        self.right: Optional["TreeNode"] = None
        self.n_samples = n_samples
        self.weighted_counts = weighted_counts

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def predicted_class(self) -> int:
        return int(np.argmax(self.weighted_counts))

    def class_proportions(self) -> np.ndarray:
        total = self.weighted_counts.sum()
        if total <= 0:
            return np.zeros_like(self.weighted_counts)
        return self.weighted_counts / total


@dataclass(order=True)
class _Candidate:
    """Heap entry: a leaf and its best available split."""

    neg_gain: float
    tiebreak: int
    node: TreeNode = field(compare=False)
    indices: np.ndarray = field(compare=False)
    feature: int = field(compare=False, default=-1)
    threshold: float = field(compare=False, default=0.0)


class DecisionTree:
    """Best-first CART classifier."""

    def __init__(self, config: TreeConfig = TreeConfig()) -> None:
        self.config = config
        self.root: Optional[TreeNode] = None
        self.n_classes = 0
        self.n_features = 0
        self.n_leaves = 0
        self.depth = 0
        self._next_id = 0
        self._tiebreak = 0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTree":
        x = np.asarray(x)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise TrainingError("x must be 2-D (n_samples, n_features)")
        if len(x) != len(y):
            raise TrainingError("x and y length mismatch")
        if len(x) == 0:
            raise TrainingError("cannot fit on zero samples")
        self.n_classes = int(y.max()) + 1 if len(y) else 0
        self.n_features = x.shape[1]
        weights = self._sample_weights(y)

        self.root = self._make_node(np.arange(len(y)), y, weights, depth=0)
        self.n_leaves = 1
        heap: List[_Candidate] = []
        first = self._best_split(self.root, np.arange(len(y)), x, y, weights)
        if first is not None:
            heapq.heappush(heap, first)

        max_leaves = self.config.max_leaf_nodes or np.inf
        while heap and self.n_leaves < max_leaves:
            cand = heapq.heappop(heap)
            # Zero-gain splits are allowed when min_impurity_decrease is 0
            # (matches scikit-learn; required for XOR-style interactions
            # where the first split alone does not reduce impurity).
            if -cand.neg_gain < self.config.min_impurity_decrease:
                break
            node, idx = cand.node, cand.indices
            go_left = x[idx, cand.feature] <= cand.threshold
            li, ri = idx[go_left], idx[~go_left]
            node.feature = cand.feature
            node.threshold = cand.threshold
            node.left = self._make_node(li, y, weights, node.depth + 1)
            node.right = self._make_node(ri, y, weights, node.depth + 1)
            self.n_leaves += 1
            self.depth = max(self.depth, node.depth + 1)
            for child, cidx in ((node.left, li), (node.right, ri)):
                nxt = self._best_split(child, cidx, x, y, weights)
                if nxt is not None:
                    heapq.heappush(heap, nxt)
        return self

    # ------------------------------------------------------------------
    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.config.class_weight is None:
            return np.ones(len(y))
        counts = np.bincount(y, minlength=self.n_classes).astype(float)
        nonzero = counts > 0
        class_w = np.zeros(self.n_classes)
        class_w[nonzero] = len(y) / (nonzero.sum() * counts[nonzero])
        return class_w[y]

    def _make_node(
        self,
        indices: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        depth: int,
    ) -> TreeNode:
        wc = np.zeros(self.n_classes)
        np.add.at(wc, y[indices], weights[indices])
        node = TreeNode(
            node_id=self._next_id,
            depth=depth,
            n_samples=len(indices),
            weighted_counts=wc,
        )
        self._next_id += 1
        return node

    def _best_split(
        self,
        node: TreeNode,
        indices: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
    ) -> Optional[_Candidate]:
        """Best (feature, threshold) for this leaf, as a heap candidate."""
        if self.config.max_depth is not None and node.depth >= self.config.max_depth:
            return None
        if len(indices) < 2:
            return None
        crit = self.config.criterion
        parent_imp = _impurity(node.weighted_counts, crit)
        w_total = node.weighted_counts.sum()
        if parent_imp <= 0 or w_total <= 0:
            return None
        best_gain = -1.0
        best: Optional[Tuple[int, float]] = None
        xv = x[indices]
        yv = y[indices]
        wv = weights[indices]
        for f in range(self.n_features):
            col = xv[:, f]
            values = np.unique(col)
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for thr in thresholds:
                mask = col <= thr
                wl = np.zeros(self.n_classes)
                wr = np.zeros(self.n_classes)
                np.add.at(wl, yv[mask], wv[mask])
                np.add.at(wr, yv[~mask], wv[~mask])
                sl, sr = wl.sum(), wr.sum()
                if sl <= 0 or sr <= 0:
                    continue
                child_imp = (
                    sl * _impurity(wl, crit) + sr * _impurity(wr, crit)
                ) / w_total
                gain = (w_total / w_total) * (parent_imp - child_imp)
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best = (f, float(thr))
        if best is None:
            return None
        self._tiebreak += 1
        return _Candidate(
            neg_gain=-best_gain,
            tiebreak=self._tiebreak,
            node=node,
            indices=indices,
            feature=best[0],
            threshold=best[1],
        )

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise TrainingError("tree is not fitted")
        x = np.asarray(x)
        out = np.empty(len(x), dtype=int)
        for i, row in enumerate(x):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.predicted_class
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf node id for each sample."""
        if self.root is None:
            raise TrainingError("tree is not fitted")
        out = np.empty(len(x), dtype=int)
        for i, row in enumerate(np.asarray(x)):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.node_id
        return out

    # ------------------------------------------------------------------
    def leaves(self) -> List[TreeNode]:
        return [n for n in self.nodes() if n.is_leaf]

    def nodes(self) -> Iterator[TreeNode]:
        if self.root is None:
            return iter(())

        def walk(node: TreeNode) -> Iterator[TreeNode]:
            yield node
            if not node.is_leaf:
                yield from walk(node.left)
                yield from walk(node.right)

        return walk(self.root)

    def paths(self) -> List[Tuple[List[Tuple[int, bool]], TreeNode]]:
        """Root-to-leaf paths as (conditions, leaf).

        Each condition is ``(feature index, value)`` where value is the
        boolean outcome of the binary feature on that branch (False =
        "<= threshold" branch, True = ">" branch).
        """
        if self.root is None:
            raise TrainingError("tree is not fitted")
        out: List[Tuple[List[Tuple[int, bool]], TreeNode]] = []

        def walk(node: TreeNode, conds: List[Tuple[int, bool]]) -> None:
            if node.is_leaf:
                out.append((list(conds), node))
                return
            walk(node.left, conds + [(node.feature, False)])
            walk(node.right, conds + [(node.feature, True)])

        walk(self.root, [])
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form of the fitted tree (config + node structure).

        The node encoding is recursive and canonical — two equal trees
        produce identical dicts, so persisted artifacts
        (:mod:`repro.advisor.store`) are bit-stable.  ``weighted_counts``
        are stored as plain floats; :meth:`from_dict` restores them as
        ``np.ndarray`` exactly (they are finite IEEE doubles end to end).
        """

        def node_dict(node: TreeNode) -> dict:
            out = {
                "node_id": node.node_id,
                "depth": node.depth,
                "n_samples": node.n_samples,
                "weighted_counts": [float(w) for w in node.weighted_counts],
            }
            if not node.is_leaf:
                out["feature"] = node.feature
                out["threshold"] = node.threshold
                out["left"] = node_dict(node.left)
                out["right"] = node_dict(node.right)
            return out

        return {
            "config": {
                "criterion": self.config.criterion,
                "max_leaf_nodes": self.config.max_leaf_nodes,
                "max_depth": self.config.max_depth,
                "class_weight": self.config.class_weight,
                "min_impurity_decrease": self.config.min_impurity_decrease,
            },
            "n_classes": self.n_classes,
            "n_features": self.n_features,
            "n_leaves": self.n_leaves,
            "depth": self.depth,
            "root": node_dict(self.root) if self.root is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTree":
        """Rebuild a fitted tree from :meth:`to_dict` output."""
        tree = cls(TreeConfig(**data["config"]))
        tree.n_classes = int(data["n_classes"])
        tree.n_features = int(data["n_features"])
        tree.n_leaves = int(data["n_leaves"])
        tree.depth = int(data["depth"])

        def build(nd: Optional[dict]) -> Optional[TreeNode]:
            if nd is None:
                return None
            node = TreeNode(
                node_id=int(nd["node_id"]),
                depth=int(nd["depth"]),
                n_samples=int(nd["n_samples"]),
                weighted_counts=np.asarray(nd["weighted_counts"], dtype=float),
            )
            if "feature" in nd:
                node.feature = int(nd["feature"])
                node.threshold = float(nd["threshold"])
                node.left = build(nd["left"])
                node.right = build(nd["right"])
            return node

        tree.root = build(data.get("root"))
        if tree.root is not None:
            tree._next_id = 1 + max(n.node_id for n in tree.nodes())
        return tree

    # ------------------------------------------------------------------
    def render(self, feature_names: Optional[Sequence[str]] = None) -> str:
        """Text rendering in the style of the paper's Figure 6."""
        if self.root is None:
            return "(unfitted tree)"
        lines: List[str] = []

        def name(f: int) -> str:
            if feature_names is not None:
                return str(feature_names[f])
            return f"x[{f}]"

        def walk(node: TreeNode, prefix: str, branch: str) -> None:
            props = ", ".join(
                f"{100*p:.1f}%" for p in node.class_proportions()
            )
            if node.is_leaf:
                lines.append(
                    f"{prefix}{branch}leaf#{node.node_id} "
                    f"samples={node.n_samples} classes=[{props}] "
                    f"-> class {node.predicted_class}"
                )
                return
            lines.append(
                f"{prefix}{branch}[{name(node.feature)}] "
                f"samples={node.n_samples} classes=[{props}]"
            )
            walk(node.left, prefix + "  ", "False: ")
            walk(node.right, prefix + "  ", "True:  ")

        walk(self.root, "", "")
        return "\n".join(lines)
