"""Peak detection with prominences.

The paper uses ``scipy.signal.find_peaks`` ([27], [28]); we provide an
independent implementation (tested against scipy) so the labeling pipeline
is fully self-contained and its semantics are explicit:

* a *peak* is a strict local maximum; flat-topped peaks report the left
  edge of the plateau (scipy reports the middle — for our convolution
  signals plateaus are broken by noise screening, and the class-boundary
  positions agree; the cross-check test quantifies this);
* *prominence* of a peak is its height minus the higher of the two lowest
  points one must descend to on the way to higher terrain (or the signal
  edge), the standard topographic definition scipy implements.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def find_peaks(x: np.ndarray) -> np.ndarray:
    """Indices of local maxima of ``x`` (plateaus report their left edge)."""
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 3:
        return np.array([], dtype=int)
    peaks: List[int] = []
    i = 1
    while i < n - 1:
        if x[i] > x[i - 1]:
            # Scan across any plateau.
            j = i
            while j < n - 1 and x[j + 1] == x[j]:
                j += 1
            if j < n - 1 and x[j + 1] < x[j]:
                peaks.append(i)
                i = j + 1
                continue
            i = j + 1
        else:
            i += 1
    return np.array(peaks, dtype=int)


def peak_prominences(x: np.ndarray, peaks: np.ndarray) -> np.ndarray:
    """Topographic prominence of each peak (matches scipy's definition)."""
    x = np.asarray(x, dtype=float)
    proms = np.empty(len(peaks), dtype=float)
    for k, p in enumerate(peaks):
        height = x[p]
        # Walk left until a higher point or the edge; track the minimum.
        left_min = height
        i = p - 1
        while i >= 0 and x[i] <= height:
            left_min = min(left_min, x[i])
            i -= 1
        if i < 0:
            # Reached the edge without meeting higher terrain.
            left_base = left_min
        else:
            left_base = left_min
        # Walk right similarly.
        right_min = height
        i = p + 1
        while i < len(x) and x[i] <= height:
            right_min = min(right_min, x[i])
            i += 1
        right_base = right_min
        proms[k] = height - max(left_base, right_base)
    return proms


def prominent_peaks(
    x: np.ndarray, percentile: float = 98.0, tie_tolerance: float = 0.01
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Peaks whose prominence is at or above the given percentile of all
    peak prominences.

    ``tie_tolerance`` admits peaks within a relative tolerance below the
    threshold: with few peaks, linear percentile interpolation between two
    near-equal top prominences would otherwise arbitrarily exclude one of
    them.  Returns (kept peak indices, their prominences, threshold); with
    no peaks at all, empty arrays and a zero threshold.
    """
    peaks = find_peaks(x)
    if len(peaks) == 0:
        return peaks, np.array([]), 0.0
    proms = peak_prominences(x, peaks)
    threshold = float(np.percentile(proms, percentile))
    keep = proms >= threshold * (1.0 - tie_tolerance)
    return peaks[keep], proms[keep], threshold
