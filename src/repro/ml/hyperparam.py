"""Decision-tree size search — the paper's Algorithm 1 and Figure 5.

"The number of leaf nodes of the tree is initially set to [2], and
iteratively increased until classification error no longer shrinks" —
``train()`` takes ``max_leaf_nodes`` and uses
``max_depth = max_leaf_nodes - 1``.  The search keeps trying up to five
larger sizes after each accepted size; the first improvement is accepted
(greedy), and if none of the five improves, the search stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.ml.metrics import training_error
from repro.ml.tree import DecisionTree, TreeConfig


@dataclass
class HyperparamTrace:
    """Every (max_leaf_nodes, error, depth) evaluated — Figure 5's series."""

    leaf_nodes: List[int] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)
    depths: List[int] = field(default_factory=list)

    def record(self, mln: int, err: float, depth: int) -> None:
        self.leaf_nodes.append(mln)
        self.errors.append(err)
        self.depths.append(depth)

    def rows(self) -> List[Tuple[int, float, int]]:
        return list(zip(self.leaf_nodes, self.errors, self.depths))


def search_tree_size(
    x: np.ndarray,
    y: np.ndarray,
    *,
    criterion: str = "gini",
    class_weight: Optional[str] = "balanced",
    patience: int = 5,
) -> Tuple[DecisionTree, HyperparamTrace]:
    """Algorithm 1: grow ``max_leaf_nodes`` until error stops shrinking.

    Returns the selected classifier and the evaluation trace (Figure 5).
    """
    trace = HyperparamTrace()

    def train(mln: int) -> Tuple[float, DecisionTree]:
        clf = DecisionTree(
            TreeConfig(
                criterion=criterion,
                class_weight=class_weight,
                max_leaf_nodes=mln,
                max_depth=mln - 1,
            )
        ).fit(x, y)
        err = training_error(clf, x, y)
        trace.record(mln, err, clf.depth)
        return err, clf

    mln = 2
    err = np.inf
    cur, clf = train(mln)
    while cur < err:
        err = cur
        for i in range(1, patience + 1):
            cur, nclf = train(mln + i)
            if cur < err:
                clf = nclf
                mln = mln + i
                break
    return clf, trace
