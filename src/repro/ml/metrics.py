"""Evaluation metrics for the rule-generation pipeline.

``range_accuracy`` is the paper's Table V metric: classify every
implementation in the full space with a tree trained on a search subset;
an implementation is counted accurate when its measured time falls within
the *performance range* of the class the tree assigned it ("the proportion
of implementations with performance that falls within the label's range,
i.e., how well using only a subset generalized to the entire space").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.labeling import ClassInfo
from repro.ml.tree import DecisionTree


def training_error(tree: DecisionTree, x: np.ndarray, y: np.ndarray) -> float:
    """Misclassification rate on the training set."""
    pred = tree.predict(x)
    return float(np.mean(pred != np.asarray(y)))


def range_accuracy(
    tree: DecisionTree,
    x_all: np.ndarray,
    times_all: np.ndarray,
    classes: Sequence[ClassInfo],
) -> float:
    """Table V metric: fraction of implementations whose measured time lies
    within the time range of their predicted class."""
    pred = tree.predict(x_all)
    times = np.asarray(times_all, dtype=float)
    by_label = {c.label: c for c in classes}
    ok = 0
    for label, t in zip(pred, times):
        c = by_label.get(int(label))
        if c is not None and c.contains_time(float(t)):
            ok += 1
    return ok / len(times) if len(times) else 0.0


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Counts[i, j] = samples with true class i predicted as j."""
    m = np.zeros((n_classes, n_classes), dtype=int)
    for t, p in zip(np.asarray(y_true, int), np.asarray(y_pred, int)):
        m[t, p] += 1
    return m
