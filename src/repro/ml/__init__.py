"""Machine-learning pipeline: labels, features, decision tree, metrics.

This package implements paper §IV end to end, including a from-scratch
CART decision tree (scikit-learn is not available in this environment;
the algorithm — gini/entropy impurity, balanced class weights, best-first
growth bounded by ``max_leaf_nodes`` — matches what the paper used).
"""

from repro.ml.features import (
    FeatureExtractor,
    FeatureMatrix,
    OrderFeature,
    StreamFeature,
    StreamingFeatureFit,
)
from repro.ml.hyperparam import HyperparamTrace, search_tree_size
from repro.ml.labeling import (
    ClassInfo,
    LabelingConfig,
    LabelResult,
    label_by_performance,
)
from repro.ml.metrics import range_accuracy, training_error
from repro.ml.peaks import find_peaks, peak_prominences
from repro.ml.tree import DecisionTree, TreeConfig, TreeNode

__all__ = [
    "ClassInfo",
    "DecisionTree",
    "FeatureExtractor",
    "FeatureMatrix",
    "HyperparamTrace",
    "LabelResult",
    "LabelingConfig",
    "OrderFeature",
    "StreamFeature",
    "StreamingFeatureFit",
    "TreeConfig",
    "TreeNode",
    "find_peaks",
    "label_by_performance",
    "peak_prominences",
    "range_accuracy",
    "search_tree_size",
    "training_error",
]
