"""Programmatic experiment report (markdown).

``generate_report(wb)`` runs every paper experiment on a workbench and
renders a single markdown document — the machine-generated counterpart of
EXPERIMENTS.md, useful for regenerating results on a different platform
configuration or problem scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.figures import run_fig1, run_fig4, run_fig5, run_fig6
from repro.experiments.tables import run_rule_tables, run_table5
from repro.experiments.workbench import SpmvWorkbench
from repro.platform.presets import describe


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body.rstrip()}\n"


def _code(body: str) -> str:
    return f"```\n{body.rstrip()}\n```"


def generate_report(
    wb: SpmvWorkbench,
    *,
    include_rule_tables: bool = True,
    iterations: Optional[Sequence[int]] = None,
) -> str:
    """Run all experiments on ``wb`` and render a markdown report."""
    parts: List[str] = [
        "# Design-rule reproduction report",
        "",
        f"Program: `{wb.instance.program.name}`  ",
        f"Design space: {wb.space.count()} implementations "
        f"({wb.n_streams} streams)",
        "",
        _section("Platform", _code(describe(wb.machine))),
    ]

    fig1 = run_fig1(wb)
    parts.append(
        _section(
            "Figure 1 — sorted implementation sweep",
            fig1.report() + "\n\n" + _code(fig1.ascii_plot()),
        )
    )

    fig4 = run_fig4(wb)
    parts.append(_section("Figure 4 — class labeling", _code(fig4.report())))

    fig5 = run_fig5(wb)
    parts.append(
        _section("Figure 5 — Algorithm 1 trace", _code(fig5.report()))
    )

    fig6 = run_fig6(wb)
    parts.append(
        _section("Figure 6 — six-leaf decision tree", _code(fig6.report()))
    )

    t5 = run_table5(wb, iterations=iterations)
    parts.append(
        _section("Table V — MCTS iterations vs accuracy", _code(t5.report()))
    )

    if include_rule_tables:
        rt = run_rule_tables(wb, iterations=iterations)
        parts.append(
            _section(
                "Tables VI–VIII — rulesets vs canonical",
                _code(rt.report(max_rulesets=3)),
            )
        )
    return "\n".join(parts)
