"""Programmatic experiment reports (markdown).

``generate_report(wb)`` runs every paper experiment on a workbench and
renders a single markdown document — the machine-generated counterpart of
EXPERIMENTS.md, useful for regenerating results on a different platform
configuration or problem scale.  ``render_transfer_report(result)``
renders a :class:`repro.transfer.TransferMatrixResult` the same way (the
``repro transfer --report`` output), and ``render_suite_report(report)``
does the same for a :class:`repro.workloads.SuiteReport` (``repro suite
--report``).  Both include the run's execution-plan timing — shard
count plus per-task wall and stage breakdown — which the JSON reports
always carried but the rendered output used to drop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.experiments.figures import run_fig1, run_fig4, run_fig5, run_fig6
from repro.experiments.tables import run_rule_tables, run_table5
from repro.experiments.workbench import SpmvWorkbench
from repro.platform.presets import describe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transfer.matrix import TransferMatrixResult
    from repro.workloads.suite import SuiteReport


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body.rstrip()}\n"


def _code(body: str) -> str:
    return f"```\n{body.rstrip()}\n```"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(lines)


def generate_report(
    wb: SpmvWorkbench,
    *,
    include_rule_tables: bool = True,
    iterations: Optional[Sequence[int]] = None,
) -> str:
    """Run all experiments on ``wb`` and render a markdown report."""
    parts: List[str] = [
        "# Design-rule reproduction report",
        "",
        f"Program: `{wb.instance.program.name}`  ",
        f"Design space: {wb.space.count()} implementations "
        f"({wb.n_streams} streams)",
        "",
        _section("Platform", _code(describe(wb.machine))),
    ]

    fig1 = run_fig1(wb)
    parts.append(
        _section(
            "Figure 1 — sorted implementation sweep",
            fig1.report() + "\n\n" + _code(fig1.ascii_plot()),
        )
    )

    fig4 = run_fig4(wb)
    parts.append(_section("Figure 4 — class labeling", _code(fig4.report())))

    fig5 = run_fig5(wb)
    parts.append(
        _section("Figure 5 — Algorithm 1 trace", _code(fig5.report()))
    )

    fig6 = run_fig6(wb)
    parts.append(
        _section("Figure 6 — six-leaf decision tree", _code(fig6.report()))
    )

    t5 = run_table5(wb, iterations=iterations)
    parts.append(
        _section("Table V — MCTS iterations vs accuracy", _code(t5.report()))
    )

    if include_rule_tables:
        rt = run_rule_tables(wb, iterations=iterations)
        parts.append(
            _section(
                "Tables VI–VIII — rulesets vs canonical",
                _code(rt.report(max_rulesets=3)),
            )
        )
    return "\n".join(parts)


# ----------------------------------------------------------------------
def _timing_section(timing: Dict[str, object]) -> Optional[str]:
    """Markdown rendering of an execution plan's timing summary.

    One row per workload task: total wall plus the per-stage breakdown
    (build → search/enumerate → label → extract) the runner measured.
    Returns ``None`` when the run carried no timing (e.g. a matrix built
    from precomputed pipeline outputs).
    """
    tasks = timing.get("tasks") if timing else None
    if not tasks:
        return None
    shards = int(timing.get("shard_workers", 0) or 0)
    header = (
        f"{len(tasks)} workload tasks "
        + (f"across {shards} shards" if shards > 1 else "in-process")
        + f", {float(timing.get('wall_s', 0.0)):.2f}s total wall "
        "(wall-clock only; all other report fields are identical for "
        "any shard count).\n\n"
    )
    rows = []
    for t in tasks:
        stages = t.get("stages") or {}
        breakdown = " · ".join(
            f"{name} {float(wall):.2f}s" for name, wall in stages.items()
        )
        rows.append(
            (
                f"`{t.get('label', '')}`",
                str(t.get("kind", "")),
                f"{float(t.get('wall_s', 0.0)):.2f}s",
                breakdown or "—",
            )
        )
    return _section(
        "Timing",
        header
        + _md_table(("workload", "task", "wall", "stages"), rows),
    )


def render_transfer_report(result: "TransferMatrixResult") -> str:
    """Markdown report of a cross-program transfer-matrix experiment.

    Sections: the discrimination grid (signature-matched fast/slow
    satisfaction gaps), the per-target always-true controls (which must
    score 0 — the metric's vacuity check), and the leave-one-workload-out
    union-tree accuracy row.
    """
    parts: List[str] = [
        "# Cross-program transfer report",
        "",
        f"Workloads: {len(result.workloads)}",
        "",
        "\n".join(f"- `{w}`" for w in result.workloads),
        "",
        _section(
            "Discrimination matrix",
            "Each source workload's fastest-class rules scored on every "
            "other workload via structural signature matching.  "
            "*disc* is the mean fast/slow satisfaction gap over "
            "transferable rules (+1 = perfectly separates the target's "
            "fast class, 0 = uninformative); *cover* is the mean "
            "fraction of target schedules the rules were evaluable "
            "on.\n\n"
            + _md_table(
                (
                    "rules from",
                    "scored on",
                    "transfer",
                    "disc",
                    "cover",
                    "best",
                    "advice",
                ),
                [
                    (
                        f"`{c['source']}`",
                        f"`{c['target']}`",
                        f"{c['n_transferable']}/{c['n_rules']}",
                        f"{float(c['mean_discrimination']):+.2f}",
                        f"{100.0 * float(c['mean_coverage']):.0f}%",
                        f"{float(c['best_discrimination']):+.2f}",
                        "**avoid**" if c["do_not_transfer"] else "",
                    )
                    for c in result.rows()
                ],
            ),
        ),
        _section(
            "Always-true controls",
            "A vacuous rule (implied by the target's own dependence "
            "edges, hence satisfied by every schedule) is injected per "
            "target; under satisfaction scoring it would transfer "
            "perfectly, under discrimination scoring it must score "
            "0.\n\n"
            + _md_table(
                ("target", "control rule", "fast", "slow", "disc"),
                [
                    (
                        f"`{c.target}`",
                        f"`{c.rule}`",
                        f"{100.0 * c.fast_satisfaction:.0f}%",
                        f"{100.0 * c.slow_satisfaction:.0f}%",
                        f"{c.discrimination:+.2f}",
                    )
                    for c in result.controls
                ],
            ),
        ),
    ]
    if result.union_rows:
        parts.append(
            _section(
                "Union-trained tree (leave-one-workload-out)",
                "One tree trained on the union of all other workloads' "
                "schedules in the signature-canonical feature space, "
                "then asked to classify the held-out workload's "
                "schedules fast/slow.\n\n"
                + _md_table(
                    (
                        "held-out target",
                        "train sources",
                        "features",
                        "leaves",
                        "train acc",
                        "held-out acc",
                    ),
                    [
                        (
                            f"`{u.target}`",
                            str(len(u.trained_on)),
                            str(u.n_features),
                            str(u.n_leaves),
                            f"{100.0 * u.train_accuracy:.0f}%",
                            f"{100.0 * u.holdout_accuracy:.0f}%",
                        )
                        for u in result.union_rows
                    ],
                ),
            )
        )
    advisories = result.advisories()
    if advisories:
        parts.append(
            _section(
                "Do-not-transfer advisories",
                "Cells whose transferred rules *anti*-predict the "
                "target's fast class (strongly negative mean "
                "discrimination): following these sources' guidance on "
                "these targets is worse than not transferring at "
                "all.\n\n"
                + "\n".join(
                    f"- `{c.source}` → `{c.target}`: "
                    f"{c.mean_discrimination:+.2f} over "
                    f"{c.n_transferable} transferred rules"
                    for c in advisories
                ),
            )
        )
    if result.union_note:
        parts.append(_section("Union training note", result.union_note))
    timing = _timing_section(result.timing)
    if timing is not None:
        parts.append(timing)
    return "\n".join(parts)


# ----------------------------------------------------------------------
def render_suite_report(report: "SuiteReport") -> str:
    """Markdown report of a workload-suite run (``repro suite --report``).

    Sections: the per-cell comparison table, the cross-workload tables a
    generalization suite adds, the per-stage timing breakdown, and the
    advisor artifacts the run published.
    """
    parts: List[str] = [
        f"# Suite report — `{report.suite}`",
        "",
        f"Machine: `{report.machine}`  ",
        f"Cells: {len(report.cells)}",
        "",
        _section(
            "Results",
            _md_table(
                (
                    "workload",
                    "strategy",
                    "ops",
                    "iters",
                    "unique",
                    "sims",
                    "best (µs)",
                    "mean (µs)",
                ),
                [
                    (
                        f"`{c.workload}`",
                        c.strategy,
                        str(c.n_ops),
                        str(c.n_iterations),
                        str(c.n_unique),
                        str(c.n_simulations),
                        f"{c.best_time * 1e6:.2f}",
                        f"{c.mean_time * 1e6:.2f}",
                    )
                    for c in report.cells
                ],
            ),
        ),
    ]
    if report.rules_table:
        parts.append(
            _section(
                "Cross-workload rule transfer",
                _md_table(
                    ("rules from", "scored on", "rules", "transfer", "satisfied"),
                    [
                        (
                            f"`{r['source']}`",
                            f"`{r['target']}`",
                            str(r["n_rules"]),
                            str(r["n_transferable"]),
                            f"{100.0 * float(r['mean_satisfaction']):.0f}%",
                        )
                        for r in report.rules_table
                    ],
                ),
            )
        )
    if report.transfer_table:
        parts.append(
            _section(
                "Signature-matched discrimination",
                _md_table(
                    ("rules from", "scored on", "transfer", "disc", "cover"),
                    [
                        (
                            f"`{r['source']}`",
                            f"`{r['target']}`",
                            f"{r['n_transferable']}/{r['n_rules']}",
                            f"{float(r['mean_discrimination']):+.2f}",
                            f"{100.0 * float(r['mean_coverage']):.0f}%",
                        )
                        for r in report.transfer_table
                    ],
                ),
            )
        )
    if report.union_table:
        parts.append(
            _section(
                "Union-trained tree (leave-one-workload-out)",
                _md_table(
                    ("held-out target", "features", "leaves", "train acc", "held-out acc"),
                    [
                        (
                            f"`{u['target']}`",
                            str(u["n_features"]),
                            str(u["n_leaves"]),
                            f"{100.0 * float(u['train_accuracy']):.0f}%",
                            f"{100.0 * float(u['holdout_accuracy']):.0f}%",
                        )
                        for u in report.union_table
                    ],
                ),
            )
        )
    if report.union_note:
        parts.append(_section("Union training note", report.union_note))
    timing = _timing_section(report.timing)
    if timing is not None:
        parts.append(timing)
    if report.published:
        parts.append(
            _section(
                "Published advisor artifacts",
                "\n".join(f"- `{p}`" for p in report.published),
            )
        )
    if report.store_note:
        parts.append(_section("Store note", report.store_note))
    return "\n".join(parts)
