"""Programmatic experiment reports (markdown).

``generate_report(wb)`` runs every paper experiment on a workbench and
renders a single markdown document — the machine-generated counterpart of
EXPERIMENTS.md, useful for regenerating results on a different platform
configuration or problem scale.  ``render_transfer_report(result)``
renders a :class:`repro.transfer.TransferMatrixResult` the same way (the
``repro transfer --report`` output).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.experiments.figures import run_fig1, run_fig4, run_fig5, run_fig6
from repro.experiments.tables import run_rule_tables, run_table5
from repro.experiments.workbench import SpmvWorkbench
from repro.platform.presets import describe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transfer.matrix import TransferMatrixResult


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body.rstrip()}\n"


def _code(body: str) -> str:
    return f"```\n{body.rstrip()}\n```"


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(lines)


def generate_report(
    wb: SpmvWorkbench,
    *,
    include_rule_tables: bool = True,
    iterations: Optional[Sequence[int]] = None,
) -> str:
    """Run all experiments on ``wb`` and render a markdown report."""
    parts: List[str] = [
        "# Design-rule reproduction report",
        "",
        f"Program: `{wb.instance.program.name}`  ",
        f"Design space: {wb.space.count()} implementations "
        f"({wb.n_streams} streams)",
        "",
        _section("Platform", _code(describe(wb.machine))),
    ]

    fig1 = run_fig1(wb)
    parts.append(
        _section(
            "Figure 1 — sorted implementation sweep",
            fig1.report() + "\n\n" + _code(fig1.ascii_plot()),
        )
    )

    fig4 = run_fig4(wb)
    parts.append(_section("Figure 4 — class labeling", _code(fig4.report())))

    fig5 = run_fig5(wb)
    parts.append(
        _section("Figure 5 — Algorithm 1 trace", _code(fig5.report()))
    )

    fig6 = run_fig6(wb)
    parts.append(
        _section("Figure 6 — six-leaf decision tree", _code(fig6.report()))
    )

    t5 = run_table5(wb, iterations=iterations)
    parts.append(
        _section("Table V — MCTS iterations vs accuracy", _code(t5.report()))
    )

    if include_rule_tables:
        rt = run_rule_tables(wb, iterations=iterations)
        parts.append(
            _section(
                "Tables VI–VIII — rulesets vs canonical",
                _code(rt.report(max_rulesets=3)),
            )
        )
    return "\n".join(parts)


# ----------------------------------------------------------------------
def render_transfer_report(result: "TransferMatrixResult") -> str:
    """Markdown report of a cross-program transfer-matrix experiment.

    Sections: the discrimination grid (signature-matched fast/slow
    satisfaction gaps), the per-target always-true controls (which must
    score 0 — the metric's vacuity check), and the leave-one-workload-out
    union-tree accuracy row.
    """
    parts: List[str] = [
        "# Cross-program transfer report",
        "",
        f"Workloads: {len(result.workloads)}",
        "",
        "\n".join(f"- `{w}`" for w in result.workloads),
        "",
        _section(
            "Discrimination matrix",
            "Each source workload's fastest-class rules scored on every "
            "other workload via structural signature matching.  "
            "*disc* is the mean fast/slow satisfaction gap over "
            "transferable rules (+1 = perfectly separates the target's "
            "fast class, 0 = uninformative); *cover* is the mean "
            "fraction of target schedules the rules were evaluable "
            "on.\n\n"
            + _md_table(
                (
                    "rules from",
                    "scored on",
                    "transfer",
                    "disc",
                    "cover",
                    "best",
                    "advice",
                ),
                [
                    (
                        f"`{c['source']}`",
                        f"`{c['target']}`",
                        f"{c['n_transferable']}/{c['n_rules']}",
                        f"{float(c['mean_discrimination']):+.2f}",
                        f"{100.0 * float(c['mean_coverage']):.0f}%",
                        f"{float(c['best_discrimination']):+.2f}",
                        "**avoid**" if c["do_not_transfer"] else "",
                    )
                    for c in result.rows()
                ],
            ),
        ),
        _section(
            "Always-true controls",
            "A vacuous rule (implied by the target's own dependence "
            "edges, hence satisfied by every schedule) is injected per "
            "target; under satisfaction scoring it would transfer "
            "perfectly, under discrimination scoring it must score "
            "0.\n\n"
            + _md_table(
                ("target", "control rule", "fast", "slow", "disc"),
                [
                    (
                        f"`{c.target}`",
                        f"`{c.rule}`",
                        f"{100.0 * c.fast_satisfaction:.0f}%",
                        f"{100.0 * c.slow_satisfaction:.0f}%",
                        f"{c.discrimination:+.2f}",
                    )
                    for c in result.controls
                ],
            ),
        ),
    ]
    if result.union_rows:
        parts.append(
            _section(
                "Union-trained tree (leave-one-workload-out)",
                "One tree trained on the union of all other workloads' "
                "schedules in the signature-canonical feature space, "
                "then asked to classify the held-out workload's "
                "schedules fast/slow.\n\n"
                + _md_table(
                    (
                        "held-out target",
                        "train sources",
                        "features",
                        "leaves",
                        "train acc",
                        "held-out acc",
                    ),
                    [
                        (
                            f"`{u.target}`",
                            str(len(u.trained_on)),
                            str(u.n_features),
                            str(u.n_leaves),
                            f"{100.0 * u.train_accuracy:.0f}%",
                            f"{100.0 * u.holdout_accuracy:.0f}%",
                        )
                        for u in result.union_rows
                    ],
                ),
            )
        )
    advisories = result.advisories()
    if advisories:
        parts.append(
            _section(
                "Do-not-transfer advisories",
                "Cells whose transferred rules *anti*-predict the "
                "target's fast class (strongly negative mean "
                "discrimination): following these sources' guidance on "
                "these targets is worse than not transferring at "
                "all.\n\n"
                + "\n".join(
                    f"- `{c.source}` → `{c.target}`: "
                    f"{c.mean_discrimination:+.2f} over "
                    f"{c.n_transferable} transferred rules"
                    for c in advisories
                ),
            )
        )
    if result.union_note:
        parts.append(_section("Union training note", result.union_note))
    return "\n".join(parts)
