"""Schedules and the design space of a CUDA+MPI program (paper §III).

A *schedule* (the paper's "implementation" / "traversal") is a total order
over the program's operations plus inserted synchronization ops, with every
GPU operation bound to a stream.  :class:`~repro.schedule.space.DesignSpace`
exposes the schedule space as a sequential decision problem — the interface
both exhaustive enumeration and MCTS consume.
"""

from repro.schedule.schedule import BoundOp, Schedule
from repro.schedule.space import (
    DecisionState,
    DesignSpace,
    EnumerationCursor,
    ScheduleBlock,
)
from repro.schedule.sync import SyncPlan, build_sync_plan, cer_name, ces_name

__all__ = [
    "BoundOp",
    "DecisionState",
    "DesignSpace",
    "EnumerationCursor",
    "Schedule",
    "ScheduleBlock",
    "SyncPlan",
    "build_sync_plan",
    "cer_name",
    "ces_name",
]
