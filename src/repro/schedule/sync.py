"""Synchronization-operation insertion (paper Table III).

The program DAG does not contain synchronization operations; they are
required by particular (prefix, binding) combinations and therefore appear
during scheduling:

==============  ===============  =========================================
u kind          v kind           Inserted between u -> v
==============  ===============  =========================================
CPU             anything         nothing (CPU ops are synchronous)
BoundGPU(i)     CPU              cudaEventRecord -> cudaEventSynchronize
BoundGPU(i)     BoundGPU(i)      nothing (same-stream FIFO order)
BoundGPU(i)     BoundGPU(j)      cudaEventRecord -> cudaStreamWaitEvent
==============  ===============  =========================================

Naming matches the paper's automatically generated names ("CES-b4-PostSend
is an inserted (and automatically named) synchronization operation before
PostSend"; the record is "CER-after-Pack").

Placement freedom: the record (CER) and CPU-side sync (CES) are launch-
sequence entries whose position *is part of the design space* — the paper's
design rules constrain them (e.g. "yL before CES-b4-PostSend").  The
cross-stream wait (CSWE) is inserted atomically with the dependent kernel
because its stream is only known once that kernel is bound; this collapses
a small amount of CSWE-placement freedom, documented in DESIGN.md (the
SpMV program has no GPU->GPU edges, so its space is unaffected).

Edges into the artificial ``end`` vertex need no inserted ops: ``end`` is
modeled as a device-wide synchronize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.dag.graph import Graph
from repro.dag.vertex import OpKind, Vertex


def cer_name(u: str) -> str:
    """Name of the inserted ``cudaEventRecord`` after GPU op ``u``."""
    return f"CER-after-{u}"


def ces_name(u: str, v: str, ambiguous: bool) -> str:
    """Name of the inserted ``cudaEventSynchronize`` before CPU op ``v``.

    When ``v`` has several GPU predecessors the source is appended to keep
    names unique (the paper's example has a single predecessor, giving the
    short form ``CES-b4-PostSend``).
    """
    return f"CES-b4-{v}-after-{u}" if ambiguous else f"CES-b4-{v}"


def cswe_name(u: str, v: str) -> str:
    """Name of the inserted ``cudaStreamWaitEvent`` making ``v`` wait on ``u``."""
    return f"CSWE-{v}-waits-{u}"


def event_name(u: str) -> str:
    """CUDA event name recorded by ``CER-after-u``."""
    return f"ev-{u}"


@dataclass(frozen=True)
class SyncPlan:
    """Precomputed synchronization structure of a program DAG.

    Attributes
    ----------
    cer_sources:
        GPU vertices that may need a standalone ``cudaEventRecord`` action
        (those with at least one non-``end`` CPU successor).
    ces_edges:
        (u, v) pairs — GPU u with CPU successor v — each requiring a
        ``cudaEventSynchronize`` before v.
    ces_name_of:
        Edge -> generated CES op name.
    gpu_gpu_edges:
        (u, v) pairs of GPU -> GPU dependencies; these trigger atomic
        CER/CSWE insertion when v is bound to a different stream than u.
    """

    cer_sources: FrozenSet[str]
    ces_edges: Tuple[Tuple[str, str], ...]
    ces_name_of: Dict[Tuple[str, str], str] = field(hash=False)
    gpu_gpu_edges: Tuple[Tuple[str, str], ...] = ()

    def ces_for_target(self, v: str) -> Tuple[Tuple[str, str], ...]:
        return tuple(e for e in self.ces_edges if e[1] == v)

    def n_sync_ops_min(self) -> int:
        """Sync ops present in every schedule (CER+CES per GPU->CPU edge)."""
        return len(self.cer_sources) + len(self.ces_edges)


def build_sync_plan(graph: Graph) -> SyncPlan:
    """Analyze ``graph`` and derive its synchronization structure."""
    cer_sources: List[str] = []
    ces_edges: List[Tuple[str, str]] = []
    gpu_gpu: List[Tuple[str, str]] = []
    # Count GPU predecessors per CPU vertex to resolve name ambiguity.
    gpu_pred_count: Dict[str, int] = {}
    for u, v in graph.edges():
        if u.kind is OpKind.GPU and v.kind is OpKind.CPU:
            gpu_pred_count[v.name] = gpu_pred_count.get(v.name, 0) + 1
    for u, v in graph.edges():
        if u.kind is not OpKind.GPU:
            continue
        if v.kind is OpKind.CPU:
            if u.name not in cer_sources:
                cer_sources.append(u.name)
            ces_edges.append((u.name, v.name))
        elif v.kind is OpKind.GPU:
            gpu_gpu.append((u.name, v.name))
    names = {
        (u, v): ces_name(u, v, ambiguous=gpu_pred_count[v] > 1)
        for (u, v) in ces_edges
    }
    return SyncPlan(
        cer_sources=frozenset(cer_sources),
        ces_edges=tuple(ces_edges),
        ces_name_of=names,
        gpu_gpu_edges=tuple(gpu_gpu),
    )


def make_cer_vertex(u: str) -> Vertex:
    return Vertex(name=cer_name(u), kind=OpKind.EVENT_RECORD)


def make_ces_vertex(name: str) -> Vertex:
    return Vertex(name=name, kind=OpKind.EVENT_SYNC)


def make_cswe_vertex(u: str, v: str) -> Vertex:
    return Vertex(name=cswe_name(u, v), kind=OpKind.STREAM_WAIT)
