"""The design space of a program as a sequential decision problem (§III-B/C).

A :class:`DecisionState` is the paper's prefix ``P_k``: the ops placed so
far, their stream bindings, and the synchronization obligations those
choices created.  ``available_actions`` yields the legal next steps:

* an eligible CPU vertex (all DAG predecessors placed, all required
  ``cudaEventSynchronize`` ops placed);
* an eligible GPU vertex, once per *canonical* stream choice — streams are
  numbered by first use, so stream-bijection-equivalent prefixes are never
  generated (the paper's redundancy pruning, §III-C2);
* a standalone ``cudaEventRecord`` for a placed GPU op with a CPU
  successor;
* a standalone ``cudaEventSynchronize`` whose record has been placed.

Cross-stream GPU→GPU dependencies insert their record/stream-wait pair
atomically with the dependent kernel (see :mod:`repro.schedule.sync`).

An *action* is a tuple of :class:`~repro.schedule.schedule.BoundOp` —
almost always a single op; atomic sync groups make it longer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.dag.program import Program
from repro.dag.vertex import OpKind, Vertex
from repro.errors import ScheduleError
from repro.schedule.schedule import BoundOp, Schedule
from repro.schedule.sync import (
    SyncPlan,
    build_sync_plan,
    cer_name,
    event_name,
    make_cer_vertex,
    make_ces_vertex,
    make_cswe_vertex,
)

#: One decision: a tuple of ops appended atomically.
Action = Tuple[BoundOp, ...]


def _action_key(action: Action) -> Tuple:
    return tuple((op.name, op.stream, op.event) for op in action)


@dataclass(frozen=True)
class DecisionState:
    """Immutable prefix of a schedule (the paper's ``P_k``)."""

    space: "DesignSpace"
    placed: Tuple[BoundOp, ...] = ()

    # -- derived (computed on demand; states are short-lived) ----------
    @property
    def placed_names(self) -> FrozenSet[str]:
        return frozenset(op.name for op in self.placed)

    @property
    def gpu_streams(self) -> Dict[str, int]:
        return {
            op.name: op.stream
            for op in self.placed
            if op.kind is OpKind.GPU
        }

    @property
    def n_streams_used(self) -> int:
        return len({
            op.stream for op in self.placed if op.stream is not None
        })

    def is_complete(self) -> bool:
        placed = self.placed_names
        return all(v.name in placed for v in self.space.program_ops)

    def schedule(self) -> Schedule:
        if not self.is_complete():
            raise ScheduleError("state is not a complete schedule")
        return Schedule(self.placed)

    def apply(self, action: Action) -> "DecisionState":
        return DecisionState(space=self.space, placed=self.placed + action)

    # ------------------------------------------------------------------
    def available_actions(self) -> Tuple[Action, ...]:
        space = self.space
        plan = space.sync_plan
        placed = self.placed_names
        gpu_streams = self.gpu_streams
        actions: List[Action] = []

        # Canonical stream choices: any stream already used, plus one fresh.
        n_used = self.n_streams_used
        stream_choices = list(range(min(n_used + 1, space.n_streams)))

        for v in space.program_ops:
            if v.name in placed:
                continue
            pred_names = space.pred_names[v.name]
            if not pred_names <= placed:
                continue
            gpu_preds = [
                u for u in pred_names if space.kind_of[u] is OpKind.GPU
            ]
            if v.kind is OpKind.CPU:
                needed = [
                    plan.ces_name_of[(u, v.name)]
                    for u in gpu_preds
                ]
                if all(n in placed for n in needed):
                    actions.append((BoundOp(vertex=v),))
            elif v.kind is OpKind.GPU:
                for s in stream_choices:
                    group: List[BoundOp] = []
                    for u in sorted(gpu_preds):
                        if gpu_streams[u] == s:
                            continue  # same-stream FIFO order suffices
                        if cer_name(u) not in placed and cer_name(u) not in {
                            g.name for g in group
                        }:
                            group.append(
                                BoundOp(
                                    vertex=make_cer_vertex(u),
                                    stream=gpu_streams[u],
                                    event=event_name(u),
                                )
                            )
                        group.append(
                            BoundOp(
                                vertex=make_cswe_vertex(u, v.name),
                                stream=s,
                                event=event_name(u),
                            )
                        )
                    group.append(BoundOp(vertex=v, stream=s))
                    actions.append(tuple(group))
            else:  # pragma: no cover - program_ops excludes START/END
                raise ScheduleError(f"unexpected kind {v.kind} in program ops")

        # Standalone cudaEventRecord actions.
        for u in sorted(plan.cer_sources):
            if u in placed and cer_name(u) not in placed:
                actions.append(
                    (
                        BoundOp(
                            vertex=make_cer_vertex(u),
                            stream=gpu_streams[u],
                            event=event_name(u),
                        ),
                    )
                )

        # Standalone cudaEventSynchronize actions.
        for (u, v) in plan.ces_edges:
            name = plan.ces_name_of[(u, v)]
            if cer_name(u) in placed and name not in placed and v not in placed:
                actions.append(
                    (
                        BoundOp(
                            vertex=make_ces_vertex(name),
                            event=event_name(u),
                        ),
                    )
                )

        return tuple(actions)


@dataclass(frozen=True)
class EnumerationCursor:
    """Resumable position in a design space's enumeration order.

    ``path`` is the action-index path (one index per decision level) of
    the *last schedule already produced*; the empty path means nothing
    has been produced yet.  A cursor is a pure value — a tuple of small
    integers — so it is trivially picklable and can be shipped to another
    process, which resumes enumeration at exactly the next schedule.
    ``exhausted`` marks the cursor returned with the final block; resuming
    from it yields nothing.
    """

    path: Tuple[int, ...] = ()
    exhausted: bool = False

    @property
    def at_start(self) -> bool:
        return not self.path and not self.exhausted


@dataclass
class ScheduleBlock:
    """One chunk of streaming enumeration.

    ``cursor`` is the resume point *after* this block: feeding it back to
    :meth:`DesignSpace.iter_blocks` continues with the next schedule, so
    enumeration can be checkpointed, interleaved with evaluation, or
    split across processes without ever materializing the space.
    ``n_skipped`` counts schedules a ``keep`` filter rejected while this
    block filled (they were enumerated but never staged);
    ``n_subtrees_cut`` counts whole subtrees a ``keep_prefix`` predicate
    cut before expansion while this block filled (their schedules were
    never even enumerated — branch-and-bound, not filtering).
    ``n_leaves_cut`` is the number of enumeration positions those cut
    subtrees spanned — populated only when leaf counting is on (range
    limits or live progress), zero otherwise.
    """

    index: int
    schedules: List[Schedule] = field(default_factory=list)
    cursor: EnumerationCursor = EnumerationCursor()
    n_skipped: int = 0
    n_subtrees_cut: int = 0
    n_leaves_cut: int = 0

    def __len__(self) -> int:
        return len(self.schedules)

    def __iter__(self) -> Iterator[Schedule]:
        return iter(self.schedules)


def _record_block_metrics(block: "ScheduleBlock") -> None:
    """Per-*block* counter adds (never per schedule) keep the always-on
    metrics cost unmeasurable against simulation work."""
    obs.add("space.schedules_enumerated", len(block.schedules) + block.n_skipped)
    obs.add("space.schedules_kept", len(block.schedules))
    if block.n_skipped:
        obs.add("space.schedules_skipped", block.n_skipped)
    if block.n_subtrees_cut:
        obs.add("space.subtrees_cut", block.n_subtrees_cut)
    if block.n_leaves_cut:
        obs.add("space.leaves_cut", block.n_leaves_cut)


@dataclass
class _CutLog:
    """Mutable subtree-cut bookkeeping shared between :meth:`_stream`
    and :meth:`iter_blocks`.

    ``n_leaves`` (the enumeration positions the cut subtrees spanned) is
    tracked only when ``count_leaves`` is set — it needs the completion-
    count DP, which range-limited walks require for exact position
    accounting and everything else can skip.
    """

    n_subtrees: int = 0
    n_leaves: int = 0
    count_leaves: bool = False


class DesignSpace:
    """All valid schedules of a program on ``n_streams`` streams."""

    def __init__(self, program: Program, n_streams: int) -> None:
        if n_streams < 1:
            raise ScheduleError("need at least one stream")
        self.program = program
        self.n_streams = n_streams
        self.sync_plan: SyncPlan = build_sync_plan(program.graph)
        self.program_ops: Tuple[Vertex, ...] = program.schedulable_vertices()
        self.pred_names: Dict[str, FrozenSet[str]] = {
            v.name: frozenset(
                p.name
                for p in program.graph.predecessors(v)
                if p.kind not in (OpKind.START, OpKind.END)
            )
            for v in self.program_ops
        }
        self.kind_of: Dict[str, OpKind] = {
            v.name: v.kind for v in self.program_ops
        }
        #: Completion-count memo shared by :meth:`count`, :meth:`seek`,
        #: and cut-leaf accounting in :meth:`_stream`.  Key is (placed
        #: names, GPU bindings) — see :meth:`_completions`.
        self._count_memo: Dict[Tuple, int] = {}

    # ------------------------------------------------------------------
    def initial_state(self) -> DecisionState:
        return DecisionState(space=self)

    def enumerate_schedules(self) -> Iterator[Schedule]:
        """Yield every schedule in the space (DFS; deterministic order)."""
        return (schedule for _, schedule in self._stream())

    def _stream(
        self,
        after: Tuple[int, ...] = (),
        keep_prefix: Optional[Callable[[Tuple[BoundOp, ...]], bool]] = None,
        cuts: Optional[_CutLog] = None,
    ) -> Iterator[Tuple[Tuple[int, ...], Schedule]]:
        """Depth-first enumeration as ``(action-index path, schedule)``
        pairs, optionally resuming strictly after the leaf at ``after``.

        The explicit stack replaces the natural recursion so the walk can
        be suspended at any leaf and resumed from its path alone —
        decision states are rebuilt on resume, never serialized.  The
        leaf order is identical to the recursive formulation: first child
        first, complete states are leaves (no further expansion).

        ``keep_prefix`` is the branch-and-bound hook: every *expanded*
        incomplete state is tested, and a rejected prefix discards its
        whole subtree without generating it.  Soundness requires the
        predicate to be monotone (a rejected prefix stays rejected under
        any extension) — :meth:`ScheduleGuide.admits_prefix` is.  States
        rebuilt along a resume path are not re-tested: a cursor always
        addresses a leaf that was actually produced, so its prefix
        already passed.  Cuts are tallied in ``cuts`` when given; leaf
        counting additionally uses the completion-count DP so callers
        can track exact enumeration positions under pruning.
        """
        stack: List[Tuple[DecisionState, Tuple[Action, ...], int]] = []
        state: Optional[DecisionState] = self.initial_state()
        for depth, idx in enumerate(after):
            actions = state.available_actions()
            if not 0 <= idx < len(actions):
                raise ScheduleError(
                    f"cursor index {idx} at depth {depth} does not address "
                    f"this design space ({len(actions)} actions available)"
                )
            stack.append((state, actions, idx))
            state = state.apply(actions[idx])
        if after:
            if not state.is_complete():
                raise ScheduleError(
                    "cursor path does not end at a complete schedule"
                )
            state = None  # resume with the backtrack step past this leaf
        while True:
            if state is None:
                # Backtrack to the deepest level with an untried action.
                while stack:
                    prev, actions, i = stack.pop()
                    if i + 1 < len(actions):
                        stack.append((prev, actions, i + 1))
                        state = prev.apply(actions[i + 1])
                        break
                else:
                    return
            elif state.is_complete():
                yield tuple(i for _, _, i in stack), state.schedule()
                state = None
            else:
                if keep_prefix is not None and not keep_prefix(state.placed):
                    if cuts is not None:
                        cuts.n_subtrees += 1
                        if cuts.count_leaves:
                            cuts.n_leaves += self._completions(state)
                    state = None  # cut: the whole subtree is skipped
                    continue
                actions = state.available_actions()
                if not actions:  # dead branch: contributes no schedules
                    state = None
                else:
                    stack.append((state, actions, 0))
                    state = state.apply(actions[0])

    def iter_blocks(
        self,
        block_size: int,
        cursor: Optional[EnumerationCursor] = None,
        keep: Optional[Callable[[Schedule], bool]] = None,
        keep_prefix: Optional[Callable[[Tuple[BoundOp, ...]], bool]] = None,
        limit: Optional[int] = None,
    ) -> Iterator[ScheduleBlock]:
        """Stream the space in blocks of at most ``block_size`` schedules.

        Concatenating every block's schedules reproduces
        :meth:`enumerate_schedules` exactly (same order, same count), but
        peak schedule residency is one block plus a single look-ahead
        schedule — never the space.  Each block carries the
        :class:`EnumerationCursor` to resume after it; the final block's
        cursor is marked ``exhausted``.  Pass ``cursor`` to continue a
        previous run (possibly in another process: enumeration order is a
        pure function of the program and ``n_streams``).

        ``keep`` is a streaming pruning filter (rule-guided search,
        :mod:`repro.advisor.guided`): rejected schedules are dropped
        immediately — counted in :attr:`ScheduleBlock.n_skipped`, never
        staged — and blocks keep filling from the stream, so downstream
        evaluation batches stay full however aggressive the filter.
        Cursors remain exact: the resume point tracks the last schedule
        *enumerated*, kept or not.

        ``keep_prefix`` turns the walk into branch-and-bound: incomplete
        prefixes it rejects cut their entire subtree before expansion
        (see :meth:`_stream`), tallied per block in
        :attr:`ScheduleBlock.n_subtrees_cut`.  ``limit`` bounds the walk
        to the next ``limit`` *enumeration positions* after the cursor —
        leaves enumerated plus leaves inside cut subtrees — which is what
        makes :meth:`seek`-delimited range shards exact: shard ``k``
        resumes at ``seek(start)`` with ``limit=length`` and covers
        precisely the serial walk's positions ``[start, start+length)``.
        A limit-stopped final block keeps ``exhausted=False`` so the
        caller can distinguish "range done" from "space done".
        """
        if block_size < 1:
            raise ScheduleError("block_size must be >= 1")
        if limit is not None and limit < 0:
            raise ScheduleError("limit must be >= 0")
        if cursor is not None and cursor.exhausted:
            return
        after = cursor.path if cursor is not None else ()
        # Leaf counting costs a completion-count DP per cut, so it stays
        # off unless a range limit needs exact positions or a progress
        # meter needs every retired position in its numerator.
        count_leaves = limit is not None or obs.progress_enabled()
        cuts = _CutLog(count_leaves=count_leaves)
        stream = self._stream(after, keep_prefix=keep_prefix, cuts=cuts)
        produced = 0
        ended = False

        def pull() -> Optional[Tuple[Tuple[int, ...], Schedule]]:
            """Next in-range leaf, or None (range or space exhausted)."""
            nonlocal produced, ended
            if limit is not None and produced + cuts.n_leaves >= limit:
                return None
            nxt = next(stream, None)
            if nxt is None:
                ended = True
                return None
            produced += 1
            if limit is not None and produced + cuts.n_leaves > limit:
                # Cut subtrees pulled us past the range end: this leaf's
                # position is >= limit, so it belongs to the next shard.
                produced -= 1
                return None
            return nxt

        index = 0
        cut_base = 0
        leaf_base = 0
        pending = pull()
        while pending is not None:
            block = ScheduleBlock(index=index)
            last_path = after
            while pending is not None and len(block.schedules) < block_size:
                last_path, schedule = pending
                if keep is None or keep(schedule):
                    block.schedules.append(schedule)
                else:
                    block.n_skipped += 1
                pending = pull()
            block.n_subtrees_cut = cuts.n_subtrees - cut_base
            cut_base = cuts.n_subtrees
            block.n_leaves_cut = cuts.n_leaves - leaf_base
            leaf_base = cuts.n_leaves
            block.cursor = EnumerationCursor(
                path=last_path, exhausted=pending is None and ended
            )
            _record_block_metrics(block)
            yield block
            index += 1
        if index == 0 and cuts.n_subtrees > 0:
            # Everything in range was cut before a single leaf surfaced;
            # still surface the bookkeeping in one empty terminal block.
            block = ScheduleBlock(
                index=0,
                cursor=EnumerationCursor(path=after, exhausted=ended),
                n_subtrees_cut=cuts.n_subtrees,
                n_leaves_cut=cuts.n_leaves,
            )
            _record_block_metrics(block)
            yield block

    def count(self) -> int:
        """Number of schedules, via memoized DP over decision states."""
        return self._completions(self.initial_state())

    def _completions(self, state: DecisionState) -> int:
        """Number of complete schedules reachable from ``state``.

        The memo key is (set of placed names, GPU bindings): the count of
        completions depends only on what is placed and where GPU ops run,
        not on the order they were placed in.  The memo lives on the
        space instance so :meth:`count`, :meth:`seek`, and cut-leaf
        accounting in :meth:`_stream` all share one table.
        """
        if state.is_complete():
            return 1
        k = (
            state.placed_names,
            tuple(sorted(state.gpu_streams.items())),
        )
        hit = self._count_memo.get(k)
        if hit is not None:
            return hit
        total = sum(
            self._completions(state.apply(a))
            for a in state.available_actions()
        )
        self._count_memo[k] = total
        return total

    def seek(self, index: int) -> EnumerationCursor:
        """Cursor that resumes enumeration at schedule ``index`` — without
        enumerating anything.

        The descent picks, level by level, the child whose completion
        count (the same DP :meth:`count` uses) contains the target leaf
        rank, so cost is O(depth × branching) DP lookups instead of
        O(index) schedule constructions.  ``seek(0)`` is the start cursor,
        ``seek(count())`` the exhausted one; together with ``limit`` in
        :meth:`iter_blocks` this splits one huge sweep into independent
        ranges that concatenate bit-identically to the serial walk.
        """
        total = self.count()
        if not 0 <= index <= total:
            raise ScheduleError(
                f"seek index {index} outside [0, {total}]"
            )
        if index == 0:
            return EnumerationCursor()
        if index == total:
            return EnumerationCursor(exhausted=True)
        target = index - 1  # rank of the last already-produced leaf
        path: List[int] = []
        state = self.initial_state()
        while not state.is_complete():
            for i, action in enumerate(state.available_actions()):
                child = state.apply(action)
                below = self._completions(child)
                if target < below:
                    path.append(i)
                    state = child
                    break
                target -= below
            else:  # pragma: no cover - counts partition the leaf ranks
                raise ScheduleError("seek descent ran out of actions")
        return EnumerationCursor(path=tuple(path))

    def random_schedule(
        self,
        rng: np.random.Generator,
        keep_prefix: Optional[Callable[[Tuple[BoundOp, ...]], bool]] = None,
    ) -> Optional[Schedule]:
        """Frontier-uniform random completion (the paper's rollout policy).

        With ``keep_prefix`` the rollout is abandoned — returning None —
        the moment its prefix is rejected, mirroring the enumerator's
        branch-and-bound cut instead of finishing a doomed completion.
        """
        state = self.initial_state()
        while not state.is_complete():
            if keep_prefix is not None and not keep_prefix(state.placed):
                return None
            actions = state.available_actions()
            if not actions:
                raise ScheduleError(
                    "dead end while sampling; program DAG is inconsistent"
                )
            state = state.apply(actions[int(rng.integers(len(actions)))])
        return state.schedule()

    # ------------------------------------------------------------------
    def all_op_names(self) -> Tuple[str, ...]:
        """Names of ops common to every schedule: program ops plus the
        always-inserted CER/CES sync ops (stream waits vary by binding)."""
        names = [v.name for v in self.program_ops]
        names += sorted(cer_name(u) for u in self.sync_plan.cer_sources)
        names += sorted(self.sync_plan.ces_name_of.values())
        return tuple(names)

    def validate_schedule(self, schedule: Schedule) -> None:
        """Check that ``schedule`` is a member of this design space.

        Verifies op coverage, DAG order, sync-op ordering (u < CER(u) <
        CES(u, v) < v), stream bounds, and cross-stream wait requirements.
        Raises :class:`~repro.errors.ScheduleError` on the first violation.
        """
        pos = {op.name: i for i, op in enumerate(schedule.ops)}
        placed_gpu = {
            op.name: op.stream
            for op in schedule.ops
            if op.kind is OpKind.GPU
        }
        for v in self.program_ops:
            if v.name not in pos:
                raise ScheduleError(f"schedule is missing op {v.name!r}")
        for v in self.program_ops:
            for u in self.pred_names[v.name]:
                if pos[u] >= pos[v.name]:
                    raise ScheduleError(
                        f"dependency violated: {u!r} must precede {v.name!r}"
                    )
        for op in schedule.ops:
            if op.stream is not None and not (
                0 <= op.stream < self.n_streams
            ):
                raise ScheduleError(
                    f"{op.name!r} bound to stream {op.stream} out of range"
                )
        for (u, v) in self.sync_plan.ces_edges:
            cer = cer_name(u)
            ces = self.sync_plan.ces_name_of[(u, v)]
            for name in (cer, ces):
                if name not in pos:
                    raise ScheduleError(f"schedule is missing sync op {name!r}")
            if not (pos[u] < pos[cer] < pos[ces] < pos[v]):
                raise ScheduleError(
                    f"sync chain out of order for edge {u!r}->{v!r}"
                )
        for (u, v) in self.sync_plan.gpu_gpu_edges:
            if placed_gpu.get(u) != placed_gpu.get(v):
                from repro.schedule.sync import cswe_name

                w = cswe_name(u, v)
                if w not in pos:
                    raise ScheduleError(
                        f"cross-stream edge {u!r}->{v!r} lacks {w!r}"
                    )
                cer = cer_name(u)
                if not (pos[u] < pos[cer] < pos[w] < pos[v]):
                    raise ScheduleError(
                        f"stream-wait chain out of order for {u!r}->{v!r}"
                    )
