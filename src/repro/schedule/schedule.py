"""Bound operations and complete schedules.

A :class:`BoundOp` pairs a vertex with its stream assignment (``None`` for
CPU-side ops); a :class:`Schedule` is the full launch sequence the CPU
control thread of every rank executes, in order.  Synchronization vertices
(event records / syncs / stream waits) appear explicitly in the sequence —
their position is part of the design space (paper §IV-D discusses rules
such as "yL before CES-b4-PostSend").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.dag.vertex import OpKind, Vertex
from repro.errors import ScheduleError


@dataclass(frozen=True)
class BoundOp:
    """A schedulable operation, stream-bound if it executes on the GPU.

    ``stream`` is required for GPU kernels and event records / stream waits
    (they are enqueued onto a stream) and must be ``None`` for CPU ops.
    ``target`` names the associated CUDA event for sync ops (the event
    namespace is per rank) and the awaited event's *recording* op for
    stream waits.
    """

    vertex: Vertex
    stream: Optional[int] = None
    event: Optional[str] = None

    def __post_init__(self) -> None:
        k = self.vertex.kind
        needs_stream = k in (OpKind.GPU, OpKind.EVENT_RECORD, OpKind.STREAM_WAIT)
        if needs_stream and self.stream is None:
            raise ScheduleError(
                f"{self.vertex.name!r} ({k.value}) requires a stream binding"
            )
        if not needs_stream and self.stream is not None:
            raise ScheduleError(
                f"{self.vertex.name!r} ({k.value}) must not carry a stream"
            )
        if k in (OpKind.EVENT_RECORD, OpKind.EVENT_SYNC, OpKind.STREAM_WAIT):
            if not self.event:
                raise ScheduleError(
                    f"sync op {self.vertex.name!r} requires an event name"
                )

    @property
    def name(self) -> str:
        return self.vertex.name

    @property
    def kind(self) -> OpKind:
        return self.vertex.kind

    def __str__(self) -> str:
        if self.stream is not None:
            return f"{self.vertex.name}@s{self.stream}"
        return self.vertex.name


class Schedule:
    """An ordered sequence of bound operations (one complete implementation).

    Schedules are immutable and hashable; equality is by the op sequence
    (names, streams, events), which is the identity the search tree, the
    feature extractor, and result caches all rely on.
    """

    __slots__ = ("ops", "_key", "_fingerprint")

    def __init__(self, ops: Sequence[BoundOp]) -> None:
        self.ops: Tuple[BoundOp, ...] = tuple(ops)
        names = [op.name for op in self.ops]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ScheduleError(f"duplicate ops in schedule: {dupes}")
        self._key = tuple((op.name, op.stream, op.event) for op in self.ops)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[BoundOp]:
        return iter(self.ops)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schedule) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    @property
    def key(self) -> Tuple:
        return self._key

    def fingerprint(self) -> str:
        """Canonical, process-stable identity of this schedule.

        A SHA-256 hex digest of the bound-op sequence (names, streams,
        events).  Unlike ``hash(schedule)`` it does not depend on
        ``PYTHONHASHSEED`` or the process, so it can key persistent
        measurement caches and cross-process memoization.  Two equal
        schedules (``a == b``) always share a fingerprint.
        """
        if self._fingerprint is None:
            text = "\x1f".join(
                f"{name}\x1e{stream}\x1e{event}"
                for name, stream, event in self._key
            )
            self._fingerprint = hashlib.sha256(
                text.encode("utf-8")
            ).hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    def position(self, name: str) -> int:
        """Index of the op called ``name``; raises if absent."""
        for i, op in enumerate(self.ops):
            if op.name == name:
                return i
        raise ScheduleError(f"op {name!r} not in schedule")

    def stream_of(self, name: str) -> Optional[int]:
        return self.ops[self.position(name)].stream

    def op_names(self) -> Tuple[str, ...]:
        return tuple(op.name for op in self.ops)

    def gpu_ops(self) -> Tuple[BoundOp, ...]:
        return tuple(op for op in self.ops if op.kind is OpKind.GPU)

    def streams_used(self) -> Tuple[int, ...]:
        seen: Dict[int, None] = {}
        for op in self.ops:
            if op.stream is not None and op.stream not in seen:
                seen[op.stream] = None
        return tuple(seen)

    # ------------------------------------------------------------------
    def canonical(self) -> "Schedule":
        """Relabel streams by order of first use (stream-bijection canonical
        form, paper §III-C2).

        Two schedules that differ only by a permutation of equivalent
        streams canonicalize to the same object.
        """
        mapping: Dict[int, int] = {}
        ops = []
        for op in self.ops:
            if op.stream is None:
                ops.append(op)
                continue
            if op.stream not in mapping:
                mapping[op.stream] = len(mapping)
            ops.append(
                BoundOp(vertex=op.vertex, stream=mapping[op.stream], event=op.event)
            )
        return Schedule(ops)

    def is_canonical(self) -> bool:
        used = self.streams_used()
        return used == tuple(range(len(used)))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return "Schedule[" + " -> ".join(str(op) for op in self.ops) + "]"
