"""Command-line interface: run any paper experiment.

Usage::

    repro fig1 [--scale 0.025]      # sorted implementation sweep
    repro fig4                      # labeling pipeline
    repro fig5                      # Algorithm 1 trace
    repro fig6                      # six-leaf tree + rules
    repro table5                    # MCTS iterations vs accuracy
    repro rules                     # Tables VI-VIII
    repro ablation-random           # MCTS vs random sampling
    repro ablation-exploit          # exploitation-term ablation
    repro ablation-noise            # labeling noise sensitivity
    repro platform                  # Table I analog
    repro all                       # everything above
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.platform.presets import describe


def _wb(args):
    from repro.experiments import default_workbench

    return default_workbench(
        scale=args.scale,
        noise_sigma=args.noise,
        workers=args.workers,
        cache_path=args.cache,
    )


def _cmd_fig1(args) -> str:
    from repro.experiments import run_fig1

    r = run_fig1(_wb(args))
    return r.report() + "\n" + r.ascii_plot()


def _cmd_fig4(args) -> str:
    from repro.experiments import run_fig4

    return run_fig4(_wb(args)).report()


def _cmd_fig5(args) -> str:
    from repro.experiments import run_fig5

    return run_fig5(_wb(args)).report()


def _cmd_fig6(args) -> str:
    from repro.experiments import run_fig6

    return run_fig6(_wb(args)).report()


def _cmd_table5(args) -> str:
    from repro.experiments import run_table5

    return run_table5(_wb(args)).report()


def _cmd_rules(args) -> str:
    from repro.experiments import run_rule_tables

    return run_rule_tables(_wb(args)).report()


def _cmd_ablation_random(args) -> str:
    from repro.experiments import run_mcts_vs_random

    return run_mcts_vs_random(_wb(args)).report()


def _cmd_ablation_exploit(args) -> str:
    from repro.experiments import run_exploitation_ablation

    return run_exploitation_ablation(_wb(args)).report()


def _cmd_ablation_noise(args) -> str:
    from repro.experiments import run_noise_sensitivity

    return run_noise_sensitivity(_wb(args)).report()


def _cmd_platform(args) -> str:
    from repro.platform.presets import perlmutter_like

    return describe(perlmutter_like(noise_sigma=args.noise))


def _cmd_multi_input(args) -> str:
    from repro.apps.spmv import SpmvCase
    from repro.experiments import run_multi_input
    from repro.platform.presets import perlmutter_like

    base = SpmvCase() if args.scale >= 1 else SpmvCase().scaled(args.scale)
    cases = [
        ("bw=n/4", base),
        (
            "bw=n/8",
            SpmvCase(
                n_rows=base.n_rows,
                nnz=base.nnz,
                bandwidth=base.n_rows / 8,
                n_ranks=base.n_ranks,
                seed=base.seed,
            ),
        ),
    ]
    return run_multi_input(
        cases, perlmutter_like(noise_sigma=args.noise)
    ).report()


_COMMANDS: Dict[str, Callable] = {
    "fig1": _cmd_fig1,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "table5": _cmd_table5,
    "rules": _cmd_rules,
    "ablation-random": _cmd_ablation_random,
    "ablation-exploit": _cmd_ablation_exploit,
    "ablation-noise": _cmd_ablation_noise,
    "platform": _cmd_platform,
    "multi-input": _cmd_multi_input,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce experiments from 'Machine Learning for CUDA+MPI "
            "Design Rules' (arXiv:2203.02530) on the simulated platform."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="matrix scale factor (1.0 = the paper's 150k-row case)",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=0.01,
        help="measurement noise sigma (lognormal)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for schedule evaluation "
            "(0/1 = serial, the default)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "persistent measurement cache (SQLite); repeated runs skip "
            "already-simulated schedules"
        ),
    )
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in sorted(_COMMANDS):
            print(f"\n===== {name} =====")
            print(_COMMANDS[name](args))
    else:
        print(_COMMANDS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
