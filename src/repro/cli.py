"""Command-line interface: paper experiments, workload suites, listings.

Run ``repro list`` for the authoritative command / workload / suite
inventory (this docstring deliberately stops naming every command — the
registry is the single source of truth).

Examples::

    repro list                      # what can I run?
    repro fig1 --scale 0.025        # sorted implementation sweep
    repro rules                     # Tables VI-VIII
    repro all                       # every paper experiment
    repro suite smoke --workers 2   # cross-workload suite, parallel eval
    repro suite paper --shard-workers 4   # whole workloads in parallel
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.platform.presets import describe


def _wb(args):
    from repro.experiments import default_workbench

    return default_workbench(
        scale=args.scale,
        noise_sigma=args.noise,
        workers=args.workers,
        cache_path=args.cache,
    )


def _cmd_fig1(args) -> str:
    from repro.experiments import run_fig1

    r = run_fig1(_wb(args))
    return r.report() + "\n" + r.ascii_plot()


def _cmd_fig4(args) -> str:
    from repro.experiments import run_fig4

    return run_fig4(_wb(args)).report()


def _cmd_fig5(args) -> str:
    from repro.experiments import run_fig5

    return run_fig5(_wb(args)).report()


def _cmd_fig6(args) -> str:
    from repro.experiments import run_fig6

    return run_fig6(_wb(args)).report()


def _cmd_table5(args) -> str:
    from repro.experiments import run_table5

    return run_table5(_wb(args)).report()


def _cmd_rules(args) -> str:
    from repro.experiments import run_rule_tables

    return run_rule_tables(_wb(args)).report()


def _cmd_ablation_random(args) -> str:
    from repro.experiments import run_mcts_vs_random

    return run_mcts_vs_random(_wb(args)).report()


def _cmd_ablation_exploit(args) -> str:
    from repro.experiments import run_exploitation_ablation

    return run_exploitation_ablation(_wb(args)).report()


def _cmd_ablation_noise(args) -> str:
    from repro.experiments import run_noise_sensitivity

    return run_noise_sensitivity(_wb(args)).report()


def _cmd_platform(args) -> str:
    from repro.platform.presets import perlmutter_like

    return describe(perlmutter_like(noise_sigma=args.noise))


def _cmd_multi_input(args) -> str:
    from repro.apps.spmv import SpmvCase
    from repro.experiments import run_multi_input
    from repro.platform.presets import perlmutter_like

    base = SpmvCase() if args.scale >= 1 else SpmvCase().scaled(args.scale)
    cases = [
        ("bw=n/4", base),
        (
            "bw=n/8",
            SpmvCase(
                n_rows=base.n_rows,
                nnz=base.nnz,
                bandwidth=base.n_rows / 8,
                n_ranks=base.n_ranks,
                seed=base.seed,
            ),
        ),
    ]
    return run_multi_input(
        cases, perlmutter_like(noise_sigma=args.noise)
    ).report()


#: Paper-experiment registry: name -> (handler, one-line help).
_COMMANDS: Dict[str, Tuple[Callable, str]] = {
    "fig1": (_cmd_fig1, "sorted implementation sweep (Figure 1)"),
    "fig4": (_cmd_fig4, "labeling pipeline (Figure 4)"),
    "fig5": (_cmd_fig5, "Algorithm 1 hyperparameter trace (Figure 5)"),
    "fig6": (_cmd_fig6, "six-leaf tree + rules (Figure 6)"),
    "table5": (_cmd_table5, "MCTS iterations vs accuracy (Table V)"),
    "rules": (_cmd_rules, "ruleset consistency tables (Tables VI-VIII)"),
    "ablation-random": (_cmd_ablation_random, "MCTS vs random sampling"),
    "ablation-exploit": (_cmd_ablation_exploit, "exploitation-term ablation"),
    "ablation-noise": (_cmd_ablation_noise, "labeling noise sensitivity"),
    "platform": (_cmd_platform, "simulated platform description (Table I)"),
    "multi-input": (_cmd_multi_input, "cross-input rule generalization"),
}


# ----------------------------------------------------------------------
def _cmd_list(args) -> str:
    """Enumerate experiments, workload families, and suites."""
    from repro.workloads import builtin_suites, list_families

    lines = ["Experiments (repro <name>):"]
    width = max(len(n) for n in _COMMANDS) + 2
    for name in sorted(_COMMANDS):
        lines.append(f"  {name.ljust(width)}{_COMMANDS[name][1]}")
    lines.append(f"  {'all'.ljust(width)}every experiment above, in order")

    lines.append("")
    lines.append("Workload families (repro suite, or repro.workloads API):")
    families = list_families()
    width = max(len(f.name) for f in families) + 2
    for fam in families:
        lines.append(f"  {fam.name.ljust(width)}{fam.description}")
        if fam.defaults:
            defaults = ", ".join(f"{k}={v}" for k, v in fam.defaults)
            lines.append(f"  {''.ljust(width)}defaults: {defaults}")

    lines.append("")
    lines.append("Suites (repro suite <name>):")
    suites = builtin_suites()
    width = max(len(n) for n in suites) + 2
    for name in sorted(suites):
        s = suites[name]
        lines.append(f"  {name.ljust(width)}{s.description}")
        lines.append(
            f"  {''.ljust(width)}{len(s.specs)} workloads x "
            f"{len(s.strategies)} strategies "
            f"({', '.join(s.strategies)}), {s.n_iterations} iterations"
        )
    return "\n".join(lines)


def _cmd_suite(args) -> str:
    """Run a named suite through the batched evaluation substrate."""
    from repro.platform.presets import perlmutter_like
    from repro.workloads import run_suite

    report = run_suite(
        args.name,
        machine=perlmutter_like(noise_sigma=args.noise),
        workers=args.workers,
        cache_path=args.cache,
        seed=args.seed,
        shard_workers=args.shard_workers,
        block_size=args.block_size,
        store_path=args.store,
        progress=args.progress,
        sim_backend=args.sim_backend,
    )
    json_path = args.json or f"repro-suite-{args.name}.json"
    out = report.ascii_table()
    if json_path == "-":
        out += "\n" + report.to_json()
    else:
        report.save_json(json_path)
        out += f"\nJSON report written to {json_path}"
    if args.report:
        from repro.report import render_suite_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_suite_report(report) + "\n")
        out += f"\nMarkdown report written to {args.report}"
    return out


def _cmd_transfer(args) -> str:
    """Run the cross-program transfer-matrix experiment."""
    import json

    from repro.platform.presets import perlmutter_like
    from repro.sim.measure import MeasurementConfig
    from repro.transfer import run_transfer_matrix
    from repro.workloads import get_suite

    suite = get_suite(args.suite)
    measurement = (
        MeasurementConfig(max_samples=1) if args.smoke else suite.measurement
    )
    result = run_transfer_matrix(
        suite.specs,
        machine=perlmutter_like(noise_sigma=args.noise),
        n_streams=suite.n_streams,
        measurement=measurement,
        workers=args.workers,
        cache_path=args.cache,
        shard_workers=args.shard_workers,
        block_size=args.block_size,
        sim_backend=args.sim_backend,
    )
    out = result.report()
    json_path = args.json or "repro-transfer.json"
    if json_path == "-":
        out += "\n" + json.dumps(result.to_dict(), indent=2, sort_keys=True)
    else:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        out += f"\nJSON report written to {json_path}"
    if args.report:
        from repro.report import render_transfer_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_transfer_report(result) + "\n")
        out += f"\nMarkdown report written to {args.report}"
    return out


# ----------------------------------------------------------------------
def _parse_params(items) -> dict:
    """``k=v`` pairs with int → float → string value coercion."""
    out = {}
    for item in items or ():
        if "=" not in item:
            raise SystemExit(f"--param expects k=v, got {item!r}")
        key, text = item.split("=", 1)
        value: object
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                value = text
        out[key] = value
    return out


def _target_spec(args):
    from repro.workloads import WorkloadSpec

    return WorkloadSpec(
        args.family, _parse_params(args.param), seed=args.workload_seed
    )


#: Held-out default target for ``repro advise --smoke``: a layered_random
#: parameterization (params + seed) no built-in suite trains on.
_SMOKE_TARGET = ("layered_random", {"layers": 3, "width": 2, "edge_p": 0.7}, 5)


def _train_store(args, store, machine) -> list:
    """Run the training suite's rule pipelines and publish artifacts."""
    from repro.advisor import publish_artifacts
    from repro.sim.measure import MeasurementConfig
    from repro.workloads import get_suite, rules_for_specs

    suite = get_suite(args.train)
    measurement = (
        MeasurementConfig(max_samples=1) if args.smoke else suite.measurement
    )
    per_workload = rules_for_specs(
        suite.specs,
        machine=machine,
        n_streams=suite.n_streams,
        measurement=measurement,
        workers=args.workers,
        cache_path=args.cache,
        shard_workers=args.shard_workers,
        block_size=args.block_size,
        sim_backend=args.sim_backend,
    )
    return publish_artifacts(
        store,
        per_workload,
        machine=machine.name,
        n_streams=suite.n_streams,
    )


def _cmd_advise(args) -> str:
    """Recommend a schedule for a (possibly never-searched) workload."""
    import json

    from repro.advisor import ArtifactStore, recommend
    from repro.platform.presets import perlmutter_like
    from repro.workloads import WorkloadSpec, build_workload

    machine = perlmutter_like(noise_sigma=args.noise)
    store = ArtifactStore(args.store)
    lines = []
    if args.smoke and not args.train:
        args.train = "smoke"
    if args.smoke and args.family is None:
        family, params, seed = _SMOKE_TARGET
        spec = WorkloadSpec(family, params, seed=seed)
    elif args.family is None:
        raise SystemExit("repro advise needs --family (or --smoke)")
    else:
        spec = _target_spec(args)
    if args.train:
        paths = _train_store(args, store, machine)
        lines.append(
            f"trained on suite {args.train!r}: published {len(paths)} "
            f"artifacts to {args.store}"
        )
    program = build_workload(spec)
    rec = recommend(
        program,
        store,
        machine=machine.name,
        n_streams=args.streams,
        seed=args.seed,
    )
    lines.append(f"advise {spec.label} (store: {args.store})")
    lines.append(f"  status:     {rec.status}")
    lines.append(f"  confidence: {rec.confidence:.3f}")
    if rec.recommended:
        lines.append(
            f"  ranked {rec.n_candidates} candidates with {rec.n_rules} "
            f"resolved rules from {len(rec.sources)} sources"
        )
        lines.append(
            f"  rule score {rec.rule_score:+.3f}, union P(fast) "
            f"{rec.p_fast:.2f}"
        )
        lines.append(
            "  schedule:   "
            + " -> ".join(str(op) for op in rec.schedule.ops)
        )
    if rec.excluded_sources:
        lines.append(
            "  excluded by do-not-transfer advisories: "
            + ", ".join(rec.excluded_sources)
        )
    if rec.note:
        lines.append(f"  note: {rec.note}")
    if args.json:
        payload = json.dumps(rec.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            lines.append(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            lines.append(f"JSON written to {args.json}")
    return "\n".join(lines)


def _search_payload(args, spec, space_count, result, wall) -> dict:
    """JSON summary of one search run.

    Everything outside ``timing`` is a pure function of the run's inputs
    — the workload, strategy, guide artifacts, and seeds — so CI can
    assert a range-sharded sweep is bit-identical to the serial one by
    comparing payloads with ``timing`` dropped.  ``samples_digest``
    condenses the full (fingerprint, time) sample sequence into one
    hash, order included.
    """
    import hashlib

    best = result.best()
    digest = hashlib.sha256()
    for sample in result.samples:
        digest.update(
            f"{sample.schedule.fingerprint()}:{sample.time!r};".encode()
        )
    return {
        "family": spec.family,
        "label": spec.label,
        "strategy": args.strategy,
        "guided": bool(args.guided),
        "n_streams": args.streams,
        "space": space_count,
        "n_iterations": result.n_iterations,
        "n_pruned": result.n_pruned,
        "n_subtrees_cut": result.n_subtrees_cut,
        "n_simulations": result.n_simulations,
        "best": {
            "time": best.time,
            "fingerprint": best.schedule.fingerprint(),
        },
        "samples_digest": digest.hexdigest(),
        "timing": {"wall_s": wall},
    }


def _cmd_search(args) -> str:
    """Run one search strategy on one workload, optionally rule-guided."""
    import json
    import time

    from repro.advisor import ArtifactStore, ScheduleGuide
    from repro.exec import build_evaluator
    from repro.platform.presets import perlmutter_like
    from repro.schedule.space import DesignSpace
    from repro.search.beam import BeamSearch
    from repro.search.exhaustive import ExhaustiveSearch
    from repro.search.mcts import MctsConfig, MctsSearch
    from repro.search.random_search import RandomSearch
    from repro.sim.measure import MeasurementConfig
    from repro.workloads import build_workload

    if args.family is None:
        raise SystemExit("repro search needs --family (see `repro list`)")
    if args.progress and args.strategy != "exhaustive":
        raise SystemExit(
            "--progress requires --strategy exhaustive (the meter's "
            "denominator is the enumerated space)"
        )
    spec = _target_spec(args)
    machine = perlmutter_like(noise_sigma=args.noise)
    program = build_workload(spec)
    space = DesignSpace(program, n_streams=args.streams)
    guide = None
    lines = []
    if args.range_shards > 1:
        # Range-sharded exhaustive: split the enumeration order into
        # seek-delimited slices and merge — bit-identical to serial.
        from repro.orchestrate import run_range_sharded_search

        if args.strategy != "exhaustive":
            raise SystemExit("--range-shards requires --strategy exhaustive")
        t0 = time.perf_counter()
        sharded = run_range_sharded_search(
            spec,
            machine=machine,
            n_streams=args.streams,
            n_shards=args.range_shards,
            measurement=MeasurementConfig(),
            workers=args.workers,
            cache_path=args.cache,
            block_size=args.block_size,
            store_path=args.store if args.guided else None,
            shard_workers=args.shard_workers,
            progress=args.progress,
            sim_backend=args.sim_backend,
        )
        result = sharded.result
        wall = time.perf_counter() - t0
        lines.append(
            f"range-sharded over {len(sharded.ranges)} ranges "
            f"(shard workers: {args.shard_workers or 'in-process'})"
        )
    else:
        if args.guided:
            guide = ScheduleGuide.from_store(
                ArtifactStore(args.store),
                program,
                machine=machine.name,
            )
            lines.append(guide.describe())
        from repro.exec import MeasurementCache

        evaluator = build_evaluator(
            program,
            machine.with_ranks(program.n_ranks),
            MeasurementConfig(),
            workers=args.workers,
            cache=MeasurementCache(args.cache) if args.cache else None,
            sim_backend=args.sim_backend,
        )
        try:
            if args.strategy == "exhaustive":
                strategy = ExhaustiveSearch(space, evaluator, guide=guide)
                budget = args.iterations  # None = exhaust
            else:
                if args.strategy == "random":
                    strategy = RandomSearch(
                        space, evaluator, seed=args.seed, guide=guide
                    )
                elif args.strategy == "beam":
                    strategy = BeamSearch(
                        space, evaluator, seed=args.seed, guide=guide
                    )
                elif args.strategy == "mcts":
                    strategy = MctsSearch(
                        space, evaluator, MctsConfig(seed=args.seed), guide=guide
                    )
                else:
                    raise SystemExit(f"unknown strategy {args.strategy!r}")
                budget = args.iterations or 64
            t0 = time.perf_counter()
            from repro import obs

            total = space.count()
            if budget is not None:
                total = min(total, budget)
            with obs.progress_scope(
                total, label=f"search {spec.family}", enabled=args.progress
            ):
                result = strategy.run(budget)
            wall = time.perf_counter() - t0
        finally:
            evaluator.close()
    best = result.best()
    space_count = space.count()
    lines.append(
        f"{args.strategy}{' (guided)' if args.guided else ''} on "
        f"{spec.label}: space {space_count} schedules"
    )
    lines.append(
        f"  evaluated {result.n_iterations} schedules"
        + (
            f", pruned {result.n_pruned} by rules, cut "
            f"{result.n_subtrees_cut} subtrees before enumeration"
            if args.guided
            else ""
        )
        + f" in {wall:.2f}s"
    )
    lines.append(f"  best time {best.time * 1e6:.2f} us")
    if args.json:
        payload = json.dumps(
            _search_payload(args, spec, space_count, result, wall),
            indent=2,
            sort_keys=True,
        )
        if args.json == "-":
            lines.append(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            lines.append(f"JSON written to {args.json}")
    return "\n".join(lines)


def _cmd_trace(args) -> str:
    """Render, analyze, or diff recorded traces / archived runs.

    Accepts bare trace files (``--trace PATH`` output), run-bundle
    directories, or archive roots (``--archive DIR``; resolves to the
    archive's latest run).  ``--diff BASELINE CURRENT`` gates on the
    thresholds and exits nonzero on any regression — the same gate CI
    and ``benchmarks/compare_bench.py`` use.  ``--analyze --json`` emits
    the analysis tables as machine-readable JSON (the history store's
    ingestion format); ``--export-perfetto OUT.json`` lowers the trace
    to Chrome/Perfetto trace-event JSON for ``ui.perfetto.dev``.
    """
    import json as json_mod

    from repro.obs import (
        DiffThresholds,
        analysis_to_dict,
        diff_runs,
        export_perfetto,
        render_analysis,
        render_diff,
        render_trace,
        resolve_trace,
    )

    if args.diff:
        if len(args.paths) != 2:
            raise SystemExit(
                "repro trace --diff takes exactly two runs: BASELINE CURRENT"
            )
        thresholds = DiffThresholds(
            max_wall_delta=args.max_wall_delta,
            min_wall_s=args.min_wall_ms / 1000.0,
            counter_tolerance=args.counter_tolerance,
            max_quantile_delta=args.max_quantile_delta,
        )
        diff = diff_runs(
            resolve_trace(args.paths[0]),
            resolve_trace(args.paths[1]),
            thresholds,
        )
        report = render_diff(diff, top=args.top)
        if not diff.ok:
            print(report)
            raise SystemExit(
                f"trace diff: {len(diff.regressions())} regression(s)"
            )
        return report
    if len(args.paths) != 1:
        raise SystemExit(
            "repro trace renders one trace (use --diff to compare two)"
        )
    data = resolve_trace(args.paths[0])
    lines = []
    if args.export_perfetto:
        n_events = export_perfetto(data, args.export_perfetto)
        lines.append(
            f"perfetto trace with {n_events} events written to "
            f"{args.export_perfetto} (open in ui.perfetto.dev)"
        )
    if args.analyze:
        if args.json:
            payload = json_mod.dumps(
                analysis_to_dict(data), indent=2, sort_keys=True
            )
            if args.json == "-":
                lines.append(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as fh:
                    fh.write(payload + "\n")
                lines.append(f"analysis JSON written to {args.json}")
                lines.append(render_analysis(data, top=args.top))
        else:
            lines.append(render_analysis(data, top=args.top))
    elif not lines:
        lines.append(render_trace(data, width=args.width))
    return "\n".join(lines)


def _cmd_obs(args) -> str:
    """``repro obs history ingest|show|gate`` — the cross-run trend store."""
    import os as os_mod

    from repro.obs import HistoryStore, detect_regressions

    store = HistoryStore(args.store)
    if args.obs_command != "history":  # pragma: no cover - argparse gates
        raise SystemExit(f"unknown obs command {args.obs_command!r}")

    if args.history_command == "ingest":
        lines = []
        total = 0
        for source in args.sources:
            if os_mod.path.isdir(source):
                if not os_mod.path.isfile(
                    os_mod.path.join(source, "index.jsonl")
                ):
                    raise SystemExit(
                        f"{source}: not an archive root (no index.jsonl)"
                    )
                added = store.ingest_archive(source)
            elif source.endswith(".json"):
                added = store.ingest_bench(
                    source, sha=args.sha or "", pattern=args.bench_pattern
                )
            else:
                raise SystemExit(
                    f"{source}: expected an archive directory or a "
                    "pytest-benchmark .json file"
                )
            lines.append(f"ingested {source}: {added} points")
            total += added
        lines.append(
            f"history store {store.path}: +{total} points, "
            f"{len(store.run_ids())} runs total"
        )
        return "\n".join(lines)

    if args.history_command == "show":
        groups = store.series()
        if args.series:
            groups = {
                name: pts
                for name, pts in groups.items()
                if args.series in name
            }
        if not groups:
            return f"history store {store.path}: no matching series"
        lines = [
            f"history store {store.path}: {len(groups)} series, "
            f"{len(store.run_ids())} runs"
        ]
        for name in sorted(groups):
            points = groups[name][-max(1, args.last):]
            values = " ".join(f"{p.value:.6g}" for p in points)
            lines.append(
                f"  {name} ({len(groups[name])} points): {values}"
            )
        return "\n".join(lines)

    if args.history_command == "gate":
        prefixes = (
            tuple(args.prefix)
            if args.prefix
            else ("span:", "bench:", "hist:")
        )
        regressions = detect_regressions(
            store,
            window=args.window,
            mad_k=args.mad_k,
            min_rel=args.min_rel,
            min_points=args.min_points,
            prefixes=prefixes,
        )
        n_series = len(store.series())
        if not regressions:
            return (
                f"history gate: OK ({n_series} series, no trend "
                f"regressions; series under {args.min_points} points "
                "are warn-only)"
            )
        report = "\n".join(
            "  " + r.describe() for r in regressions
        )
        print(
            f"history gate: {len(regressions)} trend regression(s) "
            f"across {n_series} series:\n{report}"
        )
        raise SystemExit(
            "history gate failed: "
            + ", ".join(r.series for r in regressions)
        )

    raise SystemExit(  # pragma: no cover - argparse gates
        f"unknown history command {args.history_command!r}"
    )


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="matrix scale factor (1.0 = the paper's 150k-row case)",
    )
    _add_common_options(parser)


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--noise",
        type=float,
        default=0.01,
        help="measurement noise sigma (lognormal)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for schedule evaluation "
            "(0/1 = serial, the default)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "persistent measurement cache (SQLite); repeated runs skip "
            "already-simulated schedules"
        ),
    )


def _add_sharding_options(parser: argparse.ArgumentParser) -> None:
    """Workload-level scaling knobs (repro.orchestrate)."""
    parser.add_argument(
        "--shard-workers",
        dest="shard_workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "processes sharding whole workloads across the run "
            "(0/1 = in-process; composes with --workers, which "
            "parallelizes within each workload)"
        ),
    )
    parser.add_argument(
        "--block-size",
        dest="block_size",
        type=int,
        default=None,
        metavar="B",
        help=(
            "schedules per enumeration/evaluation block in the exhaustive "
            "rule pipelines (these runs keep labeled schedules for transfer "
            "scoring; fully bounded residency is the "
            "DesignRulePipeline.run_streaming API)"
        ),
    )


def _add_sim_backend_option(parser: argparse.ArgumentParser) -> None:
    """Simulation-backend knob for the measuring commands."""
    parser.add_argument(
        "--sim-backend",
        dest="sim_backend",
        type=str,
        default="auto",
        choices=("reference", "batch", "auto"),
        help=(
            "simulation backend: 'reference' interprets each schedule on "
            "the discrete-event engine; 'batch' compiles the program once "
            "and replays schedule blocks as array sweeps (bit-identical "
            "results); 'auto' (default) uses batch wherever the compiled "
            "context supports the program and falls back otherwise"
        ),
    )


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """Run-telemetry flags (repro.obs) for the long-running commands."""
    parser.add_argument(
        "--trace",
        dest="trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "record a span trace of the whole run (including shard "
            "worker processes) and write it as JSONL to PATH; render "
            "with `repro trace PATH`"
        ),
    )
    parser.add_argument(
        "--metrics",
        dest="metrics",
        action="store_true",
        help=(
            "append the run's metrics (counters, gauges, latency "
            "histograms) to the output"
        ),
    )
    parser.add_argument(
        "--archive",
        dest="archive",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "archive this run (span trace + metrics + meta: git sha, "
            "argv, machine preset) as a self-describing bundle under "
            "DIR; inspect or compare with `repro trace DIR "
            "[--analyze|--diff]`"
        ),
    )
    parser.add_argument(
        "--telemetry",
        dest="telemetry",
        action="store_true",
        help=(
            "sample per-process resources (CPU, RSS, GC; tracemalloc "
            "peak with REPRO_TELEMETRY_MALLOC=1) across the run and "
            "every shard worker; samples land in the trace/archive and "
            "surface in `repro trace --analyze` resource columns"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce experiments from 'Machine Learning for CUDA+MPI "
            "Design Rules' (arXiv:2203.02530) on the simulated platform."
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help=(
            "more diagnostics on stderr (repeatable; results stay on "
            "stdout)"
        ),
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="fewer diagnostics on stderr (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    for name, (_, help_text) in sorted(_COMMANDS.items()):
        p = sub.add_parser(name, help=help_text)
        _add_experiment_options(p)
    p = sub.add_parser("all", help="run every experiment, in order")
    _add_experiment_options(p)

    p = sub.add_parser(
        "list", help="list experiments, workload families, and suites"
    )

    p = sub.add_parser(
        "suite",
        help="run a workload suite (every workload x strategy cell)",
    )
    p.add_argument("name", help="suite name (see `repro list`)")
    p.add_argument(
        "--seed", type=int, default=0, help="seed for sampling strategies"
    )
    p.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "where to write the JSON report "
            "(default repro-suite-<name>.json; '-' appends it to stdout)"
        ),
    )
    p.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "also write a markdown report with per-stage timing "
            "(repro.report.render_suite_report) to PATH"
        ),
    )
    p.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "advisor artifact store; cross-workload suites publish "
            "their trained rules/trees/signatures there (repro.advisor)"
        ),
    )
    _add_common_options(p)
    _add_sharding_options(p)
    _add_sim_backend_option(p)
    _add_obs_options(p)
    p.add_argument(
        "--progress",
        action="store_true",
        help=(
            "live stderr progress line over completed workload tasks "
            "(sharded runs report through worker heartbeats)"
        ),
    )

    p = sub.add_parser(
        "transfer",
        help=(
            "cross-program transfer matrix: signature-matched rule "
            "discrimination + leave-one-workload-out union tree"
        ),
    )
    p.add_argument(
        "--suite",
        type=str,
        default="generalization",
        help=(
            "suite whose workloads form the matrix (needs exhaustible "
            "spaces; default: generalization)"
        ),
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="CI-fast mode: single measurement sample per schedule",
    )
    p.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "where to write the JSON report "
            "(default repro-transfer.json; '-' appends it to stdout)"
        ),
    )
    p.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="PATH",
        help="also write a markdown report (repro.report) to PATH",
    )
    _add_common_options(p)
    _add_sharding_options(p)
    _add_sim_backend_option(p)
    _add_obs_options(p)

    p = sub.add_parser(
        "advise",
        help=(
            "recommend a schedule for a workload from persisted advisor "
            "artifacts — no simulation, just rules + the union tree"
        ),
    )
    _add_target_options(p)
    p.add_argument(
        "--store",
        type=str,
        default="repro-store",
        metavar="DIR",
        help="advisor artifact store directory (default: repro-store)",
    )
    p.add_argument(
        "--train",
        type=str,
        default=None,
        metavar="SUITE",
        help=(
            "first run this suite's exhaustive rule pipelines and "
            "publish their artifacts to the store"
        ),
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI-fast mode: single measurement sample for training, and "
            "a held-out synthetic default target; implies "
            "--train smoke unless --train is given"
        ),
    )
    p.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the recommendation as JSON ('-' appends to stdout)",
    )
    _add_common_options(p)
    _add_sharding_options(p)
    _add_sim_backend_option(p)
    _add_obs_options(p)

    p = sub.add_parser(
        "search",
        help=(
            "run one search strategy on one workload, optionally "
            "rule-guided from the artifact store (--guided)"
        ),
    )
    _add_target_options(p)
    p.add_argument(
        "--strategy",
        type=str,
        default="exhaustive",
        choices=("exhaustive", "random", "beam", "mcts"),
        help="search strategy (default: exhaustive)",
    )
    p.add_argument(
        "--guided",
        action="store_true",
        help=(
            "prune/bias the search with rules from the artifact store: "
            "exhaustive and random skip schedules violating "
            "high-discrimination rules, beam orders expansion by rule "
            "satisfaction, MCTS biases rollouts"
        ),
    )
    p.add_argument(
        "--store",
        type=str,
        default="repro-store",
        metavar="DIR",
        help="advisor artifact store directory (default: repro-store)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help=(
            "benchmark budget (sampling strategies default to 64; "
            "exhaustive defaults to the whole space)"
        ),
    )
    p.add_argument(
        "--range-shards",
        dest="range_shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "split an exhaustive sweep into N seek-delimited enumeration "
            "ranges executed as orchestrate tasks (results merge "
            "bit-identically to serial; combine with --shard-workers "
            "for actual parallelism)"
        ),
    )
    p.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write a deterministic run summary as JSON ('-' = stdout)",
    )
    _add_common_options(p)
    _add_sharding_options(p)
    _add_sim_backend_option(p)
    _add_obs_options(p)
    p.add_argument(
        "--progress",
        action="store_true",
        help=(
            "live stderr progress line with ETA over enumeration "
            "positions retired (exhaustive sweeps; range shards report "
            "through worker heartbeats)"
        ),
    )

    p = sub.add_parser(
        "trace",
        help=(
            "render, analyze (--analyze), or diff (--diff) recorded "
            "traces or archived runs"
        ),
    )
    p.add_argument(
        "paths",
        nargs="+",
        metavar="TRACE",
        help=(
            "a trace file (--trace PATH), a run-bundle directory, or an "
            "archive root (--archive DIR; resolves to its latest run); "
            "--diff takes two"
        ),
    )
    p.add_argument(
        "--width",
        type=int,
        default=24,
        metavar="COLS",
        help="duration bar width in columns (default 24)",
    )
    p.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "per-span-path aggregation, self-time hotspots, and the "
            "parallelism-aware critical path instead of the span tree"
        ),
    )
    p.add_argument(
        "--diff",
        action="store_true",
        help=(
            "compare two runs (BASELINE CURRENT): per-span-path wall "
            "deltas, counter deltas, histogram quantile deltas; exits "
            "nonzero when a threshold is violated"
        ),
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows per table in --analyze/--diff output (default 10)",
    )
    p.add_argument(
        "--max-wall-delta",
        dest="max_wall_delta",
        type=float,
        default=0.25,
        metavar="FRAC",
        help=(
            "--diff: allowed relative wall growth per shared span path "
            "(default 0.25 = +25%%)"
        ),
    )
    p.add_argument(
        "--min-wall-ms",
        dest="min_wall_ms",
        type=float,
        default=5.0,
        metavar="MS",
        help=(
            "--diff: ignore wall deltas on span paths whose baseline "
            "total is under this many milliseconds (default 5)"
        ),
    )
    p.add_argument(
        "--counter-tolerance",
        dest="counter_tolerance",
        type=float,
        default=0.0,
        metavar="FRAC",
        help=(
            "--diff: allowed relative counter drift (default 0 = "
            "bit-exact counters, the serial/sharded identity gate)"
        ),
    )
    p.add_argument(
        "--max-quantile-delta",
        dest="max_quantile_delta",
        type=float,
        default=None,
        metavar="FRAC",
        help=(
            "--diff: also gate on histogram p50/p95/p99 growth beyond "
            "this fraction (default: informational only)"
        ),
    )
    p.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "--analyze: also write the tables as machine-readable JSON "
            "to PATH ('-' prints JSON instead of tables; this is the "
            "`repro obs history` ingestion format)"
        ),
    )
    p.add_argument(
        "--export-perfetto",
        dest="export_perfetto",
        type=str,
        default=None,
        metavar="OUT.json",
        help=(
            "lower the trace (spans across pids, counters, resource "
            "samples) to Chrome/Perfetto trace-event JSON at OUT.json; "
            "open in ui.perfetto.dev"
        ),
    )

    p = sub.add_parser(
        "obs",
        help=(
            "observability stores: `repro obs history ingest|show|gate` "
            "accumulates per-metric time series across runs and gates "
            "on rolling median + MAD trend breaks"
        ),
    )
    obs_sub = p.add_subparsers(
        dest="obs_command", required=True, metavar="store"
    )
    hist = obs_sub.add_parser(
        "history",
        help="cross-run per-metric time series + trend regression gate",
    )
    hist_sub = hist.add_subparsers(
        dest="history_command", required=True, metavar="action"
    )

    hp = hist_sub.add_parser(
        "ingest",
        help=(
            "index archive roots (--archive DIR) and/or pytest-benchmark "
            "JSON files into the store (idempotent per run id)"
        ),
    )
    hp.add_argument("store", help="history store directory")
    hp.add_argument(
        "sources",
        nargs="+",
        metavar="SOURCE",
        help="archive root directories and/or BENCH_*.json files",
    )
    hp.add_argument(
        "--sha",
        type=str,
        default=None,
        help="git sha to stamp on benchmark points (archives carry their own)",
    )
    hp.add_argument(
        "--bench-pattern",
        dest="bench_pattern",
        type=str,
        default=None,
        metavar="REGEX",
        help="only ingest benchmarks whose fullname matches REGEX",
    )

    hp = hist_sub.add_parser(
        "show", help="print stored series and their recent values"
    )
    hp.add_argument("store", help="history store directory")
    hp.add_argument(
        "--series",
        type=str,
        default=None,
        metavar="SUBSTR",
        help="only series whose name contains SUBSTR",
    )
    hp.add_argument(
        "--last",
        type=int,
        default=8,
        metavar="N",
        help="values per series to print (default 8)",
    )

    hp = hist_sub.add_parser(
        "gate",
        help=(
            "exit nonzero when any series' newest point breaks its "
            "rolling median + MAD trend band (series with fewer than "
            "--min-points runs are skipped: warn-only until a baseline "
            "accumulates)"
        ),
    )
    hp.add_argument("store", help="history store directory")
    hp.add_argument(
        "--window",
        type=int,
        default=8,
        metavar="N",
        help="baseline window: median/MAD over the last N prior points",
    )
    hp.add_argument(
        "--mad-k",
        dest="mad_k",
        type=float,
        default=4.0,
        metavar="K",
        help="band half-width in scaled-MAD units (default 4.0)",
    )
    hp.add_argument(
        "--min-rel",
        dest="min_rel",
        type=float,
        default=0.10,
        metavar="FRAC",
        help=(
            "relative floor: never flag below median * (1 + FRAC) "
            "(default 0.10)"
        ),
    )
    hp.add_argument(
        "--min-points",
        dest="min_points",
        type=int,
        default=5,
        metavar="N",
        help="series with fewer points are skipped (default 5)",
    )
    hp.add_argument(
        "--prefix",
        action="append",
        default=None,
        metavar="PREFIX",
        help=(
            "series-name prefixes to gate on (repeatable; default "
            "span:, bench:, hist:)"
        ),
    )
    return parser


def _add_target_options(parser: argparse.ArgumentParser) -> None:
    """Workload-targeting options shared by ``advise`` and ``search``."""
    parser.add_argument(
        "--family",
        type=str,
        default=None,
        help="workload family (see `repro list`)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="K=V",
        help="family parameter override (repeatable)",
    )
    parser.add_argument(
        "--workload-seed",
        dest="workload_seed",
        type=int,
        default=0,
        help="workload generation seed",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=2,
        help="GPU streams in the design space (default 2)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for candidate sampling / search strategies",
    )


def _dispatch(args) -> str:
    """Route one parsed command to its handler; the result string is the
    command's entire stdout (the CLI is the only thing that prints)."""
    if args.command == "all":
        chunks = []
        for name in sorted(_COMMANDS):
            chunks.append(f"\n===== {name} =====")
            chunks.append(_COMMANDS[name][0](args))
        return "\n".join(chunks)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "transfer":
        return _cmd_transfer(args)
    if args.command == "advise":
        return _cmd_advise(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "obs":
        return _cmd_obs(args)
    return _COMMANDS[args.command][0](args)


def main(argv: Optional[List[str]] = None) -> int:
    from repro import obs

    args = build_parser().parse_args(argv)
    obs.configure_logging(verbose=args.verbose, quiet=args.quiet)
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    archive_dir = getattr(args, "archive", None)
    telemetry = getattr(args, "telemetry", False)
    if (
        trace_path is None
        and not want_metrics
        and archive_dir is None
        and not telemetry
    ):
        print(_dispatch(args))
        return 0
    # Archiving implies span capture: a bundle without spans can't be
    # critical-path-analyzed or wall-diffed later.
    with obs.capture(
        trace=trace_path is not None or archive_dir is not None,
        telemetry=telemetry,
    ) as cap:
        out = _dispatch(args)
    print(out)
    if trace_path is not None:
        n_spans = obs.write_trace(
            trace_path,
            cap.spans,
            metrics=cap.metrics,
            meta={"command": args.command},
            samples=cap.resources,
        )
        print(f"trace with {n_spans} spans written to {trace_path}")
    if archive_dir is not None:
        from repro.platform.presets import perlmutter_like

        rec = obs.RunArchive(archive_dir).record(
            cap.spans,
            cap.metrics,
            command=args.command,
            meta={
                "argv": list(argv) if argv is not None else sys.argv[1:],
                "machine": perlmutter_like(
                    noise_sigma=getattr(args, "noise", 0.01)
                ).name,
            },
            samples=cap.resources,
        )
        print(f"archived run {rec.run_id} to {rec.path}")
    if telemetry:
        rss = cap.metrics.gauges.get("telemetry.rss_max_bytes", 0.0)
        cpu = cap.metrics.gauges.get("telemetry.cpu_s", 0.0)
        print(
            f"telemetry: {len(cap.resources)} resource samples, "
            f"peak rss {rss / (1024 * 1024):.0f}MB, cpu {cpu:.2f}s"
        )
    if want_metrics:
        print(obs.render_metrics(cap.metrics))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
