"""Tiny text-rendering helpers shared by ASCII report producers."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Tuple[str, ...], rows: Sequence[Tuple[str, ...]]
) -> List[str]:
    """Fixed-width rows: header, dashed separator, one line per row."""
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*r) for r in rows]
    return lines
