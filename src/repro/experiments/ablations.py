"""Ablations the paper calls for (§VI) plus design-choice sweeps.

* **MCTS vs random sampling** — "a search strategy that randomly samples
  the design space could be used to show that the current strategy indeed
  produces better results."
* **Exploitation-term ablation** — the paper's coverage-ratio V vs plain
  UCT (exploitation constantly 1): does the coverage heuristic matter?
* **Noise sensitivity** — how the labeling's class count responds to
  measurement noise, the interaction its convolution radius exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.workbench import SpmvWorkbench
from repro.ml.labeling import label_by_performance
from repro.platform.presets import perlmutter_like
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.mcts import MctsConfig, MctsNode, MctsSearch
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker


@dataclass
class AblationResult:
    """Generic sweep result: one row per (variant, budget)."""

    title: str
    columns: List[str]
    rows: List[List[object]]

    def report(self) -> str:
        widths = [
            max(len(str(r[i])) for r in ([self.columns] + self.rows))
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        lines.append(
            "  " + "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        for row in self.rows:
            lines.append(
                "  "
                + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
            )
        return "\n".join(lines)


def run_mcts_vs_random(
    wb: SpmvWorkbench,
    iterations: Optional[Sequence[int]] = None,
    seeds: Sequence[int] = (0, 1, 2),
) -> AblationResult:
    """Compare MCTS and random sampling on Table V's accuracy metric."""
    from repro.experiments.tables import run_table5

    iters = list(iterations) if iterations is not None else wb.iteration_grid()[:-1]
    rows: List[List[object]] = []
    for strategy in ("mcts", "random", "beam"):
        for budget in iters:
            accs = []
            uniq = []
            for seed in seeds:
                t5 = run_table5(
                    wb, iterations=[budget], seed=seed, strategy=strategy
                )
                accs.append(t5.accuracies[0])
                uniq.append(t5.n_unique[0])
            rows.append(
                [
                    strategy,
                    budget,
                    f"{np.mean(accs):.3f}",
                    f"{np.std(accs):.3f}",
                    f"{np.mean(uniq):.0f}",
                ]
            )
    return AblationResult(
        title=(
            "Search-strategy comparison: MCTS vs random vs beam "
            "(Table V metric; mean over seeds)"
        ),
        columns=["strategy", "iterations", "acc_mean", "acc_std", "unique"],
        rows=rows,
    )


class _PlainUctMcts(MctsSearch):
    """MCTS with the paper's coverage exploitation replaced by a constant.

    Isolation of the paper's novel exploitation term: with V ≡ 1 the
    selection reduces to breadth-driven UCT over visit counts alone.
    """

    name = "mcts-plain-uct"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._patch()

    def _patch(self) -> None:
        def exploit_one(_node: MctsNode) -> float:
            return 1.0

        # Monkeypatch at the instance-tree level: nodes consult their own
        # method, so wrap value computation instead.
        self._exploit = exploit_one

    def _select(self, root: MctsNode) -> MctsNode:  # same flow, V == 1
        node = root
        while True:
            if node.is_terminal or node.unexpanded_actions():
                return node
            children = list(node.children.values())
            if any(ch.n_rollouts == 0 for ch in children):
                return node
            viable = [ch for ch in children if not ch.fully_explored]
            if not viable:
                node.fully_explored = True
                if node.parent is None:
                    return node
                node = node.parent
                continue
            c = self.config.exploration_c
            node = max(
                viable, key=lambda ch: ch.exploration_value(c) + 1.0
            )


def run_exploitation_ablation(
    wb: SpmvWorkbench,
    iterations: Optional[Sequence[int]] = None,
    seeds: Sequence[int] = (0, 1, 2),
) -> AblationResult:
    """Coverage-ratio exploitation vs plain UCT on the Table V metric."""
    iters = list(iterations) if iterations is not None else wb.iteration_grid()[:-1]
    full_search = wb.full_search()
    rows: List[List[object]] = []
    for label, factory in (
        ("coverage-V", lambda seed: wb.mcts(seed=seed)),
        (
            "plain-UCT",
            lambda seed: _PlainUctMcts(
                wb.space, wb.benchmarker, MctsConfig(seed=seed)
            ),
        ),
    ):
        for budget in iters:
            accs = []
            for seed in seeds:
                search = factory(seed).run(budget)
                pipe = wb.pipeline(strategy="mcts", seed=seed)
                result = pipe.run(search)
                accs.append(pipe.generalization_accuracy(result, full_search))
            rows.append(
                [label, budget, f"{np.mean(accs):.3f}", f"{np.std(accs):.3f}"]
            )
    return AblationResult(
        title="Exploitation-term ablation (Table V metric; mean over seeds)",
        columns=["selection", "iterations", "acc_mean", "acc_std"],
        rows=rows,
    )


def run_noise_sensitivity(
    wb: SpmvWorkbench,
    sigmas: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05),
) -> AblationResult:
    """Class-count stability of the labeling under measurement noise."""
    rows: List[List[object]] = []
    for sigma in sigmas:
        machine = perlmutter_like(noise_sigma=sigma)
        executor = ScheduleExecutor(wb.instance.program, machine)
        bench = Benchmarker(executor, wb.measurement)
        search = ExhaustiveSearch(wb.space, bench).run()
        lab = label_by_performance(search.times(), wb.labeling)
        spread = search.worst().time / search.best().time
        rows.append(
            [
                f"{sigma:.3f}",
                lab.n_classes,
                [c.size for c in lab.classes],
                f"{spread:.3f}",
            ]
        )
    return AblationResult(
        title="Labeling sensitivity to measurement noise",
        columns=["sigma", "n_classes", "class_sizes", "spread"],
        rows=rows,
    )
