"""Figure experiments: Fig. 1 (sorted sweep), Fig. 4 (labeling),
Fig. 5 (Algorithm 1 trace), Fig. 6 (six-leaf tree)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.workbench import SpmvWorkbench
from repro.ml.hyperparam import HyperparamTrace
from repro.ml.labeling import LabelResult
from repro.ml.metrics import training_error
from repro.ml.tree import DecisionTree, TreeConfig
from repro.rules.extract import extract_rulesets
from repro.rules.ruleset import RuleSet


# ----------------------------------------------------------------------
# Figure 1: all implementations, sorted fastest -> slowest.
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """The sorted elapsed-time curve (paper Fig. 1)."""

    sorted_times: np.ndarray
    n_implementations: int
    speedup: float  # slowest / fastest
    best_time: float
    worst_time: float

    def ascii_plot(self, width: int = 72, height: int = 14) -> str:
        t = self.sorted_times
        lo, hi = t.min(), t.max()
        cols = np.linspace(0, len(t) - 1, width).astype(int)
        vals = t[cols]
        rows = []
        for h in range(height, 0, -1):
            cut = lo + (hi - lo) * h / height
            prev_cut = lo + (hi - lo) * (h - 1) / height
            row = "".join(
                "#" if prev_cut <= v < cut or (h == height and v >= cut) else " "
                for v in vals
            )
            rows.append(f"{cut * 1e6:7.1f}us |{row}")
        rows.append(" " * 10 + "+" + "-" * width)
        rows.append(
            " " * 11
            + f"implementations sorted fastest to slowest (n={self.n_implementations})"
        )
        return "\n".join(rows)

    def report(self) -> str:
        return (
            f"Fig.1: {self.n_implementations} implementations, "
            f"fastest {self.best_time * 1e6:.2f} us, "
            f"slowest {self.worst_time * 1e6:.2f} us, "
            f"speedup {self.speedup:.2f}x  (paper: 2036 impls, 1.47x)"
        )


def run_fig1(wb: SpmvWorkbench) -> Fig1Result:
    full = wb.full_search()
    times = np.sort(full.times())
    return Fig1Result(
        sorted_times=times,
        n_implementations=len(times),
        speedup=float(times[-1] / times[0]),
        best_time=float(times[0]),
        worst_time=float(times[-1]),
    )


# ----------------------------------------------------------------------
# Figure 4: labeling pipeline visualization.
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    """Sorted data, convolution signal, and detected class boundaries."""

    labeling: LabelResult

    def report(self) -> str:
        lab = self.labeling
        lines = [
            f"Fig.4: radius={lab.radius}, "
            f"prominence threshold={lab.prominence_threshold:.3g}, "
            f"boundaries at {lab.boundaries.tolist()}, "
            f"{lab.n_classes} classes (paper: 3 classes)",
        ]
        for c in lab.classes:
            lines.append(
                f"  class {c.label}: {c.size} samples "
                f"[{c.t_min * 1e6:.2f}, {c.t_max * 1e6:.2f}] us"
            )
        return "\n".join(lines)


def run_fig4(wb: SpmvWorkbench) -> Fig4Result:
    return Fig4Result(labeling=wb.full_pipeline().labeling)


# ----------------------------------------------------------------------
# Figure 5: hyperparameter search trace.
# ----------------------------------------------------------------------
@dataclass
class Fig5Result:
    trace: HyperparamTrace
    chosen_leaves: int
    chosen_depth: int
    final_error: float

    def report(self) -> str:
        lines = [
            "Fig.5: Algorithm 1 trace (leaf nodes, training error, depth)"
        ]
        for mln, err, depth in self.trace.rows():
            lines.append(f"  leaves={mln:3d}  error={err:.4f}  depth={depth}")
        lines.append(
            f"  chosen: {self.chosen_leaves} leaves, depth "
            f"{self.chosen_depth}, error {self.final_error:.4f} "
            f"(paper: 13 leaves, depth 6)"
        )
        return "\n".join(lines)


def run_fig5(wb: SpmvWorkbench) -> Fig5Result:
    result = wb.full_pipeline()
    return Fig5Result(
        trace=result.hyperparam_trace,
        chosen_leaves=result.tree.n_leaves,
        chosen_depth=result.tree.depth,
        final_error=result.training_error,
    )


# ----------------------------------------------------------------------
# Figure 6: the six-leaf decision tree.
# ----------------------------------------------------------------------
@dataclass
class Fig6Result:
    tree: DecisionTree
    rulesets: List[RuleSet]
    rendered: str
    training_error: float

    def report(self) -> str:
        lines = [
            f"Fig.6: 6-leaf tree, depth {self.tree.depth}, "
            f"training error {self.training_error:.4f} "
            f"(paper: depth 4, imperfect leaf expected)",
            self.rendered,
            "rulesets (per leaf, by samples):",
        ]
        for rs in self.rulesets:
            lines.append(
                f"  -> class {rs.predicted_class} "
                f"(samples={rs.n_samples}): "
                + "; ".join(rs.text_lines())
            )
        return "\n".join(lines)


def run_fig6(wb: SpmvWorkbench, n_leaves: int = 6) -> Fig6Result:
    """Train the intermediate tree with a fixed leaf budget (paper Fig. 6)."""
    full = wb.full_pipeline()
    tree = DecisionTree(
        TreeConfig(
            criterion="gini",
            class_weight="balanced",
            max_leaf_nodes=n_leaves,
            max_depth=n_leaves - 1,
        )
    ).fit(full.features.matrix, full.labeling.labels)
    feature_names = [
        f.describe(True) for f in full.features.features
    ]
    rendered = tree.render(feature_names=feature_names)
    rulesets = extract_rulesets(tree, full.features.features)
    return Fig6Result(
        tree=tree,
        rulesets=rulesets,
        rendered=rendered,
        training_error=training_error(
            tree, full.features.matrix, full.labeling.labels
        ),
    )
