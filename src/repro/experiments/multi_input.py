"""Future-work extension (paper §VI): rules that generalize across inputs.

"A natural extension is to generate rules that generalize across inputs."

Protocol: run the full pipeline independently on several problem inputs
(e.g. SpMV matrices with different bandwidths, which shift the
communication/computation balance), extract each input's canonical
rulesets, and intersect per performance class:

* a rule is **generalizing** for class c if it appears in some ruleset of
  class c for *every* input;
* a rule is **input-specific** if it appears for some inputs only.

The generalizing set is what a systems expert can apply without knowing
the input; the input-specific remainder quantifies how much of the design
guidance is input-dependent — the gap the paper's proposed feature-vector
extension would need to close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.apps.spmv import SpmvCase, build_spmv_program
from repro.core.pipeline import DesignRulePipeline, PipelineConfig
from repro.platform.machine import MachineConfig
from repro.rules.extract import rulesets_by_class
from repro.sim.measure import MeasurementConfig


@dataclass
class MultiInputResult:
    """Cross-input rule analysis."""

    input_names: List[str]
    #: class -> input name -> set of rule texts observed for that class.
    observed: Dict[int, Dict[str, FrozenSet[str]]]
    #: class -> rule texts present for every input.
    generalizing: Dict[int, FrozenSet[str]]
    #: class -> rule texts present for some but not all inputs.
    input_specific: Dict[int, FrozenSet[str]]

    def report(self) -> str:
        lines = [
            f"Cross-input design rules over {len(self.input_names)} inputs: "
            + ", ".join(self.input_names)
        ]
        for cls in sorted(self.generalizing):
            lines.append(f"  class {cls}:")
            gen = sorted(self.generalizing[cls])
            if gen:
                lines.append("    generalizing rules (hold on every input):")
                lines.extend(f"      - {r}" for r in gen)
            else:
                lines.append("    (no rule holds on every input)")
            spec = sorted(self.input_specific[cls])
            if spec:
                lines.append(
                    f"    input-specific rules: {len(spec)} "
                    f"(e.g. {spec[0]!r})"
                )
        return "\n".join(lines)


def _class_rule_texts(pipeline_result) -> Dict[int, FrozenSet[str]]:
    by_class = rulesets_by_class(pipeline_result.rulesets)
    return {
        cls: frozenset(
            rule.text for rs in rulesets for rule in rs.rules
        )
        for cls, rulesets in by_class.items()
    }


def run_multi_input(
    cases: Sequence[Tuple[str, SpmvCase]],
    machine: MachineConfig,
    *,
    measurement: MeasurementConfig = MeasurementConfig(max_samples=2),
    n_streams: int = 2,
) -> MultiInputResult:
    """Run the exhaustive pipeline on each input and intersect the rules.

    Classes are aligned positionally: class 0 is the fastest class of each
    input, etc.  Inputs whose labeling found fewer classes simply do not
    contribute to the missing classes (treated as not supporting any rule
    there).
    """
    if len(cases) < 2:
        raise ValueError("need at least two inputs to generalize across")
    per_input: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for name, case in cases:
        inst = build_spmv_program(case)
        pipe = DesignRulePipeline(
            inst.program,
            machine,
            PipelineConfig(
                n_streams=n_streams,
                strategy="exhaustive",
                measurement=measurement,
            ),
        )
        per_input[name] = _class_rule_texts(pipe.run())

    names = [name for name, _ in cases]
    all_classes = sorted({c for rules in per_input.values() for c in rules})
    observed: Dict[int, Dict[str, FrozenSet[str]]] = {}
    generalizing: Dict[int, FrozenSet[str]] = {}
    specific: Dict[int, FrozenSet[str]] = {}
    for cls in all_classes:
        observed[cls] = {
            name: per_input[name].get(cls, frozenset()) for name in names
        }
        sets = list(observed[cls].values())
        union = frozenset().union(*sets)
        inter = sets[0]
        for s in sets[1:]:
            inter = inter & s
        generalizing[cls] = inter
        specific[cls] = union - inter
    return MultiInputResult(
        input_names=names,
        observed=observed,
        generalizing=generalizing,
        input_specific=specific,
    )
