"""Table experiments: Table V (MCTS iterations vs labeling accuracy) and
Tables VI-VIII (per-class rulesets vs canonical, with annotations)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.workbench import SpmvWorkbench
from repro.rules.compare import CompareResult, compare_all, consistency_summary
from repro.rules.extract import rulesets_by_class
from repro.rules.render import render_ruleset_table
from repro.rules.ruleset import RuleSet


@dataclass
class Table5Result:
    """Effect of MCTS iterations on labeling accuracy (paper Table V)."""

    iterations: List[int]
    accuracies: List[float]
    n_unique: List[int]
    paper_iterations: tuple = (50, 100, 200, 400, 2036)
    paper_accuracies: tuple = (0.75, 0.83, 0.96, 0.99, 1.0)

    def report(self) -> str:
        lines = [
            "Table V: MCTS iterations vs class accuracy "
            "(paper: 50->0.75, 100->0.83, 200->0.96, 400->0.99, full->1.0)"
        ]
        for it, acc, nu in zip(self.iterations, self.accuracies, self.n_unique):
            lines.append(
                f"  iterations={it:5d}  unique={nu:5d}  accuracy={acc:.3f}"
            )
        return "\n".join(lines)


def run_table5(
    wb: SpmvWorkbench,
    iterations: Optional[Sequence[int]] = None,
    seed: int = 0,
    strategy: str = "mcts",
) -> Table5Result:
    """Reproduce Table V.

    For each iteration budget: run the search, build labels/features/tree
    from the explored subset, then classify the FULL space and score each
    implementation against its predicted class's time range.  The final
    (full-budget) entry uses the exhaustive search, as the paper's 2036
    column does.
    """
    iters = list(iterations) if iterations is not None else wb.iteration_grid()
    full_search = wb.full_search()
    n_space = wb.space.count()
    accs: List[float] = []
    uniq: List[int] = []
    for budget in iters:
        if budget >= n_space:
            search = full_search
            pipe = wb.pipeline(strategy="exhaustive")
        else:
            pipe = wb.pipeline(strategy=strategy, seed=seed)
            search = pipe.make_strategy().run(budget)
        result = pipe.run(search)
        accs.append(pipe.generalization_accuracy(result, full_search))
        uniq.append(len(search.unique()))
    return Table5Result(iterations=iters, accuracies=accs, n_unique=uniq)


@dataclass
class RuleTableResult:
    """Tables VI-VIII: rulesets per class per iteration budget."""

    #: class label -> column header -> compared rulesets (sorted by samples).
    cells: Dict[int, Dict[str, List[CompareResult]]]
    canonical: List[RuleSet]
    class_names: Dict[int, str] = field(default_factory=dict)

    def render_class(self, cls: int, max_rulesets: int = 3) -> str:
        name = self.class_names.get(cls, f"class {cls}")
        return render_ruleset_table(
            self.cells[cls],
            title=f"Design rules for performance {name} "
            f"(paper Tables VI-VIII format; (+) = extraneous-but-harmless)",
            max_rulesets_per_cell=max_rulesets,
        )

    def report(self, max_rulesets: int = 3) -> str:
        return "\n\n".join(
            self.render_class(cls, max_rulesets) for cls in sorted(self.cells)
        )

    def summary(self) -> Dict[int, Dict[str, Dict[str, int]]]:
        """class -> column -> annotation counts."""
        return {
            cls: {
                col: consistency_summary(results)
                for col, results in cols.items()
            }
            for cls, cols in self.cells.items()
        }


def run_rule_tables(
    wb: SpmvWorkbench,
    iterations: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> RuleTableResult:
    """Reproduce Tables VI-VIII: for each iteration budget, extract the
    per-class rulesets and annotate them against the canonical (full-space)
    rulesets."""
    iters = list(iterations) if iterations is not None else wb.iteration_grid()
    full_search = wb.full_search()
    canonical_result = wb.full_pipeline()
    canonical = canonical_result.rulesets
    n_space = wb.space.count()

    cells: Dict[int, Dict[str, List[CompareResult]]] = {}
    for budget in iters:
        if budget >= n_space:
            result = canonical_result
        else:
            pipe = wb.pipeline(strategy="mcts", seed=seed)
            search = pipe.make_strategy().run(budget)
            result = pipe.run(search)
        by_class = rulesets_by_class(result.rulesets)
        col = str(budget)
        for cls, rulesets in by_class.items():
            compared = compare_all(rulesets, canonical)
            cells.setdefault(cls, {})[col] = compared
    # Make all classes have all columns (possibly empty).
    for cls in cells:
        for budget in iters:
            cells[cls].setdefault(str(budget), [])
        cells[cls] = {str(b): cells[cls][str(b)] for b in iters}
    names = {0: "class 1 (fastest)"}
    all_cls = sorted(cells)
    if all_cls:
        names = {
            c: (
                "class 1 (fastest)"
                if c == all_cls[0]
                else "class %d (slowest)" % (c + 1)
                if c == all_cls[-1]
                else f"class {c + 1}"
            )
            for c in all_cls
        }
    return RuleTableResult(cells=cells, canonical=canonical, class_names=names)
