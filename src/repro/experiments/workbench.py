"""Shared experiment workbench: the paper's SpMV setup, benchmarked once.

All figure/table experiments operate on the same exhaustively-benchmarked
SpMV design space (the paper's "2036 implementations"; 540 here, see
DESIGN.md).  The workbench builds and caches that data so a bench session
pays the exhaustive sweep once.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.spmv import SpmvCase, SpmvInstance, build_spmv_program
from repro.core.pipeline import DesignRulePipeline, PipelineConfig, PipelineResult
from repro.exec import Evaluator, MeasurementCache, build_evaluator
from repro.ml.labeling import LabelingConfig
from repro.platform.machine import MachineConfig
from repro.platform.presets import perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.base import SearchResult
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.mcts import MctsConfig, MctsSearch
from repro.search.random_search import RandomSearch
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig


@dataclass
class SpmvWorkbench:
    """One SpMV case + machine, with cached exhaustive results."""

    case: SpmvCase
    machine: MachineConfig
    measurement: MeasurementConfig = field(
        default_factory=lambda: MeasurementConfig(max_samples=3)
    )
    labeling: LabelingConfig = field(default_factory=LabelingConfig)
    n_streams: int = 2
    #: Worker processes for schedule evaluation (<= 1: serial).
    workers: int = 0
    #: Optional persistent measurement cache shared by all pipelines.
    cache_path: Optional[str] = None
    _instance: Optional[SpmvInstance] = None
    _space: Optional[DesignSpace] = None
    _benchmarker: Optional[Benchmarker] = None
    _evaluator: Optional[Evaluator] = None
    _cache: Optional[MeasurementCache] = None
    _full: Optional[SearchResult] = None
    _full_pipeline: Optional[PipelineResult] = None

    # ------------------------------------------------------------------
    @property
    def instance(self) -> SpmvInstance:
        if self._instance is None:
            self._instance = build_spmv_program(self.case)
        return self._instance

    @property
    def space(self) -> DesignSpace:
        if self._space is None:
            self._space = DesignSpace(
                self.instance.program, n_streams=self.n_streams
            )
        return self._space

    @property
    def benchmarker(self) -> Benchmarker:
        if self._benchmarker is None:
            executor = ScheduleExecutor(self.instance.program, self.machine)
            self._benchmarker = Benchmarker(executor, self.measurement)
        return self._benchmarker

    @property
    def evaluator(self) -> Evaluator:
        """The shared evaluation backend: every experiment on this bench
        (exhaustive sweep, searches, pipelines) measures through one
        memo/pool, honoring ``workers`` and ``cache_path``."""
        if self._evaluator is None:
            if self.cache_path is not None and self._cache is None:
                self._cache = MeasurementCache(self.cache_path)
            self._evaluator = build_evaluator(
                self.instance.program,
                self.machine,
                self.measurement,
                workers=self.workers,
                cache=self._cache,
                benchmarker=self.benchmarker,
            )
        return self._evaluator

    def close(self) -> None:
        """Release the evaluation backend (worker pool, cache connection)."""
        if self._evaluator is not None:
            self._evaluator.close()
            self._evaluator = None
        if self._cache is not None:
            self._cache.close()
            self._cache = None

    # ------------------------------------------------------------------
    def full_search(self) -> SearchResult:
        """Exhaustive benchmark of the whole space (cached)."""
        if self._full is None:
            self._full = ExhaustiveSearch(self.space, self.evaluator).run()
        return self._full

    def full_pipeline(self) -> PipelineResult:
        """Canonical pipeline result from the exhaustive search (cached)."""
        if self._full_pipeline is None:
            pipe = self.pipeline(strategy="exhaustive")
            self._full_pipeline = pipe.run(self.full_search())
        return self._full_pipeline

    def pipeline(self, strategy: str = "mcts", seed: int = 0) -> DesignRulePipeline:
        pipe = DesignRulePipeline(
            self.instance.program,
            self.machine,
            PipelineConfig(
                n_streams=self.n_streams,
                strategy=strategy,
                measurement=self.measurement,
                labeling=self.labeling,
                seed=seed,
                workers=self.workers,
                cache_path=self.cache_path,
            ),
        )
        # Share the benchmark cache across all experiments on this bench.
        pipe.benchmarker = self.benchmarker
        pipe.evaluator = self.evaluator
        return pipe

    def mcts(self, seed: int = 0) -> MctsSearch:
        return MctsSearch(self.space, self.evaluator, MctsConfig(seed=seed))

    def random(self, seed: int = 0) -> RandomSearch:
        return RandomSearch(self.space, self.evaluator, seed=seed)

    def iteration_grid(self) -> list:
        """Iteration counts analogous to the paper's {50,100,200,400,2036},
        scaled to this space's size."""
        n = self.space.count()
        grid = [
            max(2, int(round(n * f))) for f in (0.025, 0.05, 0.1, 0.2)
        ]
        return grid + [n]


@functools.lru_cache(maxsize=4)
def default_workbench(
    scale: float = 1.0,
    noise_sigma: float = 0.01,
    workers: int = 0,
    cache_path: Optional[str] = None,
) -> SpmvWorkbench:
    """The paper's SpMV on the perlmutter-like platform (memoized).

    ``scale < 1`` shrinks the matrix proportionally for fast tests;
    ``workers``/``cache_path`` configure the evaluation substrate of every
    pipeline the workbench builds (see :mod:`repro.exec`).
    """
    case = SpmvCase() if scale >= 1.0 else SpmvCase().scaled(scale)
    return SpmvWorkbench(
        case=case,
        machine=perlmutter_like(noise_sigma=noise_sigma),
        workers=workers,
        cache_path=cache_path,
    )
