"""Canned paper experiments: one function per figure/table.

These are the single source of truth that ``benchmarks/``, ``examples/``
and the CLI all call; each returns a small dataclass with the series/rows
the paper reports, plus helpers to print them.
"""

from repro.experiments.ablations import (
    AblationResult,
    run_exploitation_ablation,
    run_mcts_vs_random,
    run_noise_sensitivity,
)
from repro.experiments.figures import (
    Fig1Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
)
from repro.experiments.multi_input import MultiInputResult, run_multi_input
from repro.experiments.tables import (
    RuleTableResult,
    Table5Result,
    run_rule_tables,
    run_table5,
)
from repro.experiments.workbench import SpmvWorkbench, default_workbench

__all__ = [
    "AblationResult",
    "MultiInputResult",
    "run_multi_input",
    "Fig1Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "RuleTableResult",
    "SpmvWorkbench",
    "Table5Result",
    "default_workbench",
    "run_exploitation_ablation",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_mcts_vs_random",
    "run_noise_sensitivity",
    "run_rule_tables",
    "run_table5",
]
