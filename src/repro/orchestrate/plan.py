"""Execution plans: a suite or transfer run as a DAG of workload tasks.

A :class:`WorkloadTask` is the unit of sharding — one workload's whole
per-workload pipeline (build → search/enumerate → label → extract-rules),
not one schedule batch.  PR 1's :class:`~repro.exec.ParallelEvaluator`
parallelizes *within* a cell; a plan parallelizes *across* cells: every
task is a pure function of its spec + configuration (the workload
determinism contract), so tasks can run in any order, in any process,
and the collected results — ordered by ``task.index`` — are bit-identical
to a serial sweep.

Two task kinds exist today:

* ``suite-cells`` — run every search strategy of a suite against one
  workload (all strategies share one evaluator memo, exactly as the
  serial :class:`~repro.workloads.suite.SuiteRunner` always did) and
  emit one :class:`~repro.workloads.suite.SuiteCell` per strategy;
* ``workload-rules`` — run the exhaustive design-rule pipeline on one
  workload and reduce it to
  :class:`~repro.workloads.generalization.WorkloadRules` (the shared
  front half of the cross-workload tables and the transfer matrix).

Tasks may declare ``depends_on`` (indices of prerequisite tasks); the
runner topologically gates submission.  Current plans are embarrassingly
parallel — the reduce steps (transfer matrix assembly, report building)
run in the parent — but the field keeps the plan shape honest for future
staged work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.platform.machine import MachineConfig
from repro.sim.measure import MeasurementConfig
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.suite import Suite

#: Task kinds understood by the runner.
TASK_SUITE_CELLS = "suite-cells"
TASK_WORKLOAD_RULES = "workload-rules"
TASK_SEARCH_RANGE = "search-range"


@dataclass(frozen=True)
class WorkloadTask:
    """One shardable unit of work: a whole workload's pipeline.

    Everything here is a small picklable value; the concrete
    :class:`~repro.dag.program.Program` is rebuilt *inside* the executing
    process from ``spec`` (programs may carry non-picklable payload
    closures; specs never do, and builds are bit-deterministic).
    """

    #: Deterministic output position — results are ordered by this.
    index: int
    kind: str
    spec: WorkloadSpec
    n_streams: int = 2
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    #: ``suite-cells`` only: strategies to run and iterations per cell.
    strategies: Tuple[str, ...] = ()
    n_iterations: int = 0
    seed: int = 0
    #: Worker processes for the *inner* evaluator (within-cell batching).
    workers: int = 0
    #: Shared persistent measurement cache; every executing process opens
    #: its own connection to this path (WAL-safe under concurrency).
    cache_path: Optional[str] = None
    #: Enumeration/evaluation block size for exhaustive pipelines.
    block_size: Optional[int] = None
    #: ``search-range`` only: the task's slice of the enumeration order —
    #: it sweeps positions ``[range_start, range_start + range_limit)``,
    #: located via :meth:`~repro.schedule.space.DesignSpace.seek` without
    #: enumerating the prefix.
    range_start: Optional[int] = None
    range_limit: Optional[int] = None
    #: ``search-range`` only: optional artifact-store path; when set the
    #: shard builds a :class:`~repro.advisor.guided.ScheduleGuide` and
    #: runs its range branch-and-bound instead of unguided.
    store_path: Optional[str] = None
    #: Simulation backend knob for the task's evaluators
    #: (``reference`` | ``batch`` | ``auto``).
    sim_backend: str = "auto"
    #: Indices of tasks that must complete before this one starts.
    depends_on: Tuple[int, ...] = ()

    @property
    def label(self) -> str:
        return self.spec.label

    def __post_init__(self) -> None:
        if self.kind not in (
            TASK_SUITE_CELLS,
            TASK_WORKLOAD_RULES,
            TASK_SEARCH_RANGE,
        ):
            raise WorkloadError(f"unknown task kind {self.kind!r}")
        if self.kind == TASK_SUITE_CELLS and not self.strategies:
            raise WorkloadError("suite-cells task needs at least one strategy")
        if self.kind == TASK_SEARCH_RANGE:
            if self.range_start is None or self.range_limit is None:
                raise WorkloadError(
                    "search-range task needs range_start and range_limit"
                )
            if self.range_start < 0 or self.range_limit < 0:
                raise WorkloadError("search-range bounds must be >= 0")


@dataclass(frozen=True)
class ExecutionPlan:
    """An ordered set of workload tasks plus their shared context."""

    machine: MachineConfig
    tasks: Tuple[WorkloadTask, ...]

    def __post_init__(self) -> None:
        for pos, task in enumerate(self.tasks):
            if task.index != pos:
                raise WorkloadError(
                    f"task index {task.index} at position {pos}: plan "
                    "tasks must be indexed contiguously in order"
                )
            if any(d >= task.index for d in task.depends_on):
                raise WorkloadError(
                    f"task {task.index} depends on a later task; plans "
                    "must be topologically ordered"
                )

    def __len__(self) -> int:
        return len(self.tasks)

    def tasks_of_kind(self, kind: str) -> List[WorkloadTask]:
        return [t for t in self.tasks if t.kind == kind]


# ----------------------------------------------------------------------
def plan_suite(
    suite: "Suite",
    *,
    machine: MachineConfig,
    workers: int = 0,
    cache_path: Optional[str] = None,
    seed: int = 0,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> ExecutionPlan:
    """Turn a suite run into an execution plan.

    One ``suite-cells`` task per workload; when the suite asks for
    cross-workload rules, one additional ``workload-rules`` task per
    workload (the exhaustive pipeline feeding the satisfaction table and
    the transfer matrix).  All tasks are independent, so a sharded run
    overlaps whole workloads — including the rule pipelines the serial
    runner used to append at the end.
    """
    tasks: List[WorkloadTask] = []
    for spec in suite.specs:
        # Suite cells sample via search strategies — block_size only
        # shapes the exhaustive rule pipelines, so cell tasks omit it.
        tasks.append(
            WorkloadTask(
                index=len(tasks),
                kind=TASK_SUITE_CELLS,
                spec=spec,
                n_streams=suite.n_streams,
                measurement=suite.measurement,
                strategies=tuple(suite.strategies),
                n_iterations=suite.n_iterations,
                seed=seed,
                workers=workers,
                cache_path=cache_path,
                sim_backend=sim_backend,
            )
        )
    if suite.cross_workload_rules:
        for spec in suite.specs:
            tasks.append(
                WorkloadTask(
                    index=len(tasks),
                    kind=TASK_WORKLOAD_RULES,
                    spec=spec,
                    n_streams=suite.n_streams,
                    measurement=suite.measurement,
                    seed=seed,
                    workers=workers,
                    cache_path=cache_path,
                    block_size=block_size,
                    sim_backend=sim_backend,
                )
            )
    return ExecutionPlan(machine=machine, tasks=tuple(tasks))


def plan_rules(
    specs: Sequence[WorkloadSpec],
    *,
    machine: MachineConfig,
    n_streams: int = 2,
    measurement: Optional[MeasurementConfig] = None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> ExecutionPlan:
    """Per-workload exhaustive rule pipelines as an execution plan (the
    front half of the cross-workload tables and the transfer matrix)."""
    tasks = tuple(
        WorkloadTask(
            index=i,
            kind=TASK_WORKLOAD_RULES,
            spec=spec,
            n_streams=n_streams,
            measurement=(
                measurement if measurement is not None else MeasurementConfig()
            ),
            workers=workers,
            cache_path=cache_path,
            block_size=block_size,
            sim_backend=sim_backend,
        )
        for i, spec in enumerate(specs)
    )
    return ExecutionPlan(machine=machine, tasks=tasks)
