"""Range-sharded exhaustive search: one huge space, many processes.

PR 4's plans shard *across* workloads; this module shards *within* one
workload's exhaustive sweep.  :func:`partition_ranges` splits the
enumeration order ``[0, total)`` into near-equal contiguous slices, each
becoming a ``search-range`` :class:`~repro.orchestrate.plan.WorkloadTask`
that seeks to its start (:meth:`~repro.schedule.space.DesignSpace.seek`,
a DP descent — no prefix enumeration) and sweeps exactly its slice.

Merging is concatenation in task-index order: enumeration order is a pure
function of (spec, n_streams), measurements are pure functions of
(schedule, program, machine, config), and schedules are plain picklable
values — so the merged :class:`~repro.search.base.SearchResult` is
bit-identical to the serial sweep's, sample for sample.  With a
``store_path`` the shards run guided branch-and-bound instead; the kept
sample sequence is still identical to a serial guided sweep (cut
bookkeeping may attribute subtrees straddling shard boundaries to more
than one shard — counts are reported as summed, exactly what each shard
saw).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import WorkloadError
from repro.orchestrate.plan import TASK_SEARCH_RANGE, ExecutionPlan, WorkloadTask
from repro.orchestrate.runner import PlanRun, execute_plan
from repro.platform.machine import MachineConfig
from repro.schedule.space import DesignSpace
from repro.search.base import SearchResult
from repro.sim.measure import MeasurementConfig
from repro.workloads.spec import WorkloadSpec, build_workload


@dataclass(frozen=True)
class ScheduleRange:
    """One contiguous slice of a space's enumeration order."""

    shard: int
    start: int
    limit: int

    @property
    def stop(self) -> int:
        return self.start + self.limit


def partition_ranges(total: int, n_shards: int) -> Tuple[ScheduleRange, ...]:
    """Split ``[0, total)`` into ``n_shards`` near-equal contiguous ranges.

    The first ``total % n_shards`` ranges get one extra position, so the
    partition is exact, ordered, and deterministic.  Empty ranges are
    dropped (more shards than schedules).
    """
    if total < 0:
        raise WorkloadError("total must be >= 0")
    if n_shards < 1:
        raise WorkloadError("n_shards must be >= 1")
    base, extra = divmod(total, n_shards)
    ranges: List[ScheduleRange] = []
    start = 0
    for shard in range(n_shards):
        limit = base + (1 if shard < extra else 0)
        if limit == 0:
            continue
        ranges.append(ScheduleRange(shard=shard, start=start, limit=limit))
        start += limit
    return tuple(ranges)


@dataclass
class RangeShardedSearch:
    """A merged range-sharded sweep plus its execution footprint."""

    result: SearchResult
    total: int
    ranges: Tuple[ScheduleRange, ...]
    timing: Dict[str, object]


def run_range_sharded_search(
    spec: WorkloadSpec,
    *,
    machine: MachineConfig,
    n_streams: int = 2,
    n_shards: int = 2,
    measurement: Optional[MeasurementConfig] = None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    block_size: Optional[int] = None,
    store_path: Optional[str] = None,
    shard_workers: int = 0,
    start_method: Optional[str] = None,
    progress: bool = False,
    sim_backend: str = "auto",
) -> RangeShardedSearch:
    """Exhaustively sweep one workload's space as ``n_shards`` ranges.

    Builds a ``search-range`` plan over :func:`partition_ranges`, executes
    it on the PR-4 shard pool, and concatenates the per-shard
    :class:`SearchResult` payloads in task order.  The merged result is
    bit-identical to ``ExhaustiveSearch(...).run()`` on the whole space
    (guided runs: identical kept samples; counters are shard sums).

    ``progress=True`` wraps execution in an :func:`obs.progress_scope`
    over the exact ``space.count()`` denominator: shard workers flush
    heartbeat counters mid-task, and the stderr line tracks enumeration
    positions retired (enumerated + cut) with an ETA.  Under
    ``--telemetry`` the same heartbeat files additionally carry each
    shard's live RSS/CPU (installed by ``worker_capture``), and every
    shard ships its resource samples home for parent-side absorption —
    no extra wiring here, the plan runner threads it through.
    """
    t0 = time.perf_counter()
    space = DesignSpace(build_workload(spec), n_streams=n_streams)
    total = space.count()
    ranges = partition_ranges(total, n_shards)
    obs.log.info(
        "search.range_sharded",
        spec=spec.family,
        total=total,
        n_shards=len(ranges),
        shard_workers=shard_workers,
    )
    measurement = (
        measurement if measurement is not None else MeasurementConfig()
    )
    tasks = tuple(
        WorkloadTask(
            index=i,
            kind=TASK_SEARCH_RANGE,
            spec=spec,
            n_streams=n_streams,
            measurement=measurement,
            workers=workers,
            cache_path=cache_path,
            block_size=block_size,
            range_start=r.start,
            range_limit=r.limit,
            store_path=store_path,
            sim_backend=sim_backend,
        )
        for i, r in enumerate(ranges)
    )
    plan = ExecutionPlan(machine=machine, tasks=tasks)
    with obs.progress_scope(
        total, label=f"search {spec.family}", enabled=progress
    ):
        run: PlanRun = execute_plan(
            plan, shard_workers=shard_workers, start_method=start_method
        )
    merged = SearchResult(strategy="exhaustive")
    for task_result in run.results:
        shard: SearchResult = task_result.payload  # type: ignore[assignment]
        merged.samples.extend(shard.samples)
        merged.n_iterations += shard.n_iterations
        merged.n_simulations += shard.n_simulations
        merged.n_pruned += shard.n_pruned
        merged.n_subtrees_cut += shard.n_subtrees_cut
    timing = run.timing()
    timing["wall_s_total"] = time.perf_counter() - t0
    return RangeShardedSearch(
        result=merged, total=total, ranges=ranges, timing=timing
    )
