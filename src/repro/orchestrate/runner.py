"""Plan execution: workload tasks across a process pool, or in-process.

The runner executes an :class:`~repro.orchestrate.plan.ExecutionPlan`
either serially (``shard_workers <= 1``) or across a
``ProcessPoolExecutor`` of whole-workload shards.  Both paths run the
exact same per-task code — :func:`execute_task` — and a task's output is
a pure function of the task value, so the sharded run is bit-identical
to the serial one (per-task wall-clock aside).  Results always come back
ordered by ``task.index`` regardless of completion order.

Sharding composes with PR 1's within-cell parallelism: ``task.workers``
still controls each task's *inner* evaluator pool, so ``--shard-workers
2 --workers 4`` is two concurrent workloads, each measuring schedules
four at a time.  All shards may share one persistent
:class:`~repro.exec.MeasurementCache` path; every process opens its own
connection and SQLite's WAL mode serializes the writes.

Task payloads must pickle.  Programs may not (payload closures), so
``workload-rules`` payloads travel without their program and
:func:`restore_rules_payload` rebuilds it in the parent from the spec —
bit-identical by the workload determinism contract.
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.errors import WorkloadError
from repro.exec import MeasurementCache, build_evaluator
from repro.obs import MetricsSnapshot, ResourceSample, SpanRecord
from repro.orchestrate.plan import (
    TASK_SEARCH_RANGE,
    TASK_SUITE_CELLS,
    TASK_WORKLOAD_RULES,
    ExecutionPlan,
    WorkloadTask,
)
from repro.platform.machine import MachineConfig
from repro.schedule.space import DesignSpace
from repro.search.base import SearchStrategy
from repro.search.beam import BeamSearch
from repro.search.mcts import MctsConfig, MctsSearch
from repro.search.random_search import RandomSearch
from repro.workloads.spec import build_workload


@dataclass
class TaskResult:
    """One task's payload plus its execution footprint."""

    index: int
    label: str
    kind: str
    payload: object
    #: Total task wall time and the per-stage breakdown
    #: (build → search/enumerate → label → extract-rules).
    wall_s: float
    stages: Tuple[Tuple[str, float], ...] = ()
    #: PID of the executing process (parent PID for in-process runs).
    pid: int = 0
    #: Span subtrees recorded in a worker process (empty when the task
    #: ran in-process — those spans land directly in the ambient tracer).
    spans: Tuple[SpanRecord, ...] = ()
    #: Worker-local metrics snapshot shipped home for parent-side merge
    #: (None for in-process tasks, which hit the live registry directly).
    metrics: Optional[MetricsSnapshot] = None
    #: Worker-local resource samples (``--telemetry``), shipped home for
    #: parent-side merge alongside the spans.
    resources: Tuple[ResourceSample, ...] = ()
    #: Worker-side clock origin; lets ``obs.absorb`` rebase shipped span
    #: starts and sample timestamps onto the parent clock.
    obs_epoch: Optional[float] = None

    def timing_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "kind": self.kind,
            "wall_s": self.wall_s,
            "stages": {name: wall for name, wall in self.stages},
        }


@dataclass
class PlanRun:
    """Everything one plan execution produced, in task-index order."""

    results: List[TaskResult]
    shard_workers: int
    wall_s: float
    start_method: Optional[str] = None

    def of_kind(self, kind: str) -> List[TaskResult]:
        return [r for r in self.results if r.kind == kind]

    def timing(self) -> Dict[str, object]:
        """JSON-ready timing summary (the report's ``timing`` field)."""
        return {
            "shard_workers": self.shard_workers,
            "n_tasks": len(self.results),
            "wall_s": self.wall_s,
            "tasks": [r.timing_dict() for r in self.results],
        }


# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=256)
def _space_count(spec, n_streams: int) -> int:
    """Memoized design-space size of one workload (specs are hashable and
    builds deterministic; the DP count costs milliseconds even for
    billion-schedule spaces)."""
    from repro.workloads.spec import build_workload as _build

    return DesignSpace(_build(spec), n_streams=n_streams).count()


def estimate_task_cost(task: WorkloadTask) -> float:
    """Estimated work of one task, from its design-space size.

    ``workload-rules`` tasks enumerate and simulate the whole space, so
    their cost *is* ``space.count()``.  ``suite-cells`` tasks sample: at
    most ``n_iterations`` benchmarks per strategy, capped by the space
    itself (space size still proxies per-schedule simulation cost via
    the op count, but the cap keeps a billion-schedule sampled workload
    from outranking an exhaustive one).
    """
    if task.kind == TASK_SEARCH_RANGE:
        # A range shard's work is exactly its slice of the enumeration.
        return float(task.range_limit or 0)
    count = float(_space_count(task.spec, task.n_streams))
    if task.kind == TASK_SUITE_CELLS:
        budget = float(task.n_iterations * max(1, len(task.strategies)))
        return min(count, budget) if budget > 0 else count
    return count


def submission_order(
    tasks: Sequence[WorkloadTask], costs: Mapping[int, float]
) -> List[int]:
    """Task indices, costliest first (index breaks ties).

    Shard scheduling submits in this order so long-pole workloads start
    before cheap ones — FIFO-by-index used to leave the most expensive
    task to finish alone on one shard while the rest of the pool idled.
    Results are still returned in task-index order; only wall time moves.
    """
    return sorted(
        (t.index for t in tasks), key=lambda i: (-costs.get(i, 0.0), i)
    )


def make_strategy(
    name: str, space: DesignSpace, evaluator, seed: int
) -> SearchStrategy:
    """Suite strategy registry (random / mcts / beam)."""
    if name == "random":
        return RandomSearch(space, evaluator, seed=seed)
    if name == "mcts":
        return MctsSearch(space, evaluator, MctsConfig(seed=seed))
    if name == "beam":
        return BeamSearch(space, evaluator, seed=seed)
    raise WorkloadError(f"unknown suite strategy {name!r}")


def _run_suite_cells(machine: MachineConfig, task: WorkloadTask) -> object:
    """All of one workload's (strategy → SuiteCell) rows.

    Mirrors the historical serial SuiteRunner loop exactly: one evaluator
    per workload shared by every strategy (so the memo carries across
    strategies), per-strategy wall time measured around ``run``.
    """
    from repro.workloads.suite import _cell_from_result

    with obs.stage("build"):
        program = build_workload(task.spec)
        space = DesignSpace(program, n_streams=task.n_streams)
    cache = (
        MeasurementCache(task.cache_path)
        if task.cache_path is not None
        else None
    )
    cells = []
    try:
        evaluator = build_evaluator(
            program,
            machine.with_ranks(program.n_ranks),
            task.measurement,
            workers=task.workers,
            cache=cache,
            sim_backend=task.sim_backend,
        )
        try:
            for strat_name in task.strategies:
                sims_before = evaluator.n_simulations
                with obs.stage(f"search:{strat_name}") as st:
                    strategy = make_strategy(
                        strat_name, space, evaluator, task.seed
                    )
                    result = strategy.run(task.n_iterations)
                cells.append(
                    _cell_from_result(
                        task.spec,
                        strat_name,
                        space,
                        result,
                        evaluator.n_simulations - sims_before,
                        st.duration,
                    )
                )
        finally:
            evaluator.close()
    finally:
        if cache is not None:
            cache.close()
    return cells


def _run_workload_rules(machine: MachineConfig, task: WorkloadTask) -> object:
    """One workload's exhaustive design-rule pipeline, reduced to a
    (program-free, picklable) :class:`WorkloadRules` payload."""
    from repro.workloads.generalization import (
        pipeline_for_spec,
        reduce_workload_rules,
    )

    with obs.stage("build"):
        program = build_workload(task.spec)
    pipe = pipeline_for_spec(
        task.spec,
        machine,
        n_streams=task.n_streams,
        measurement=task.measurement,
        workers=task.workers,
        cache_path=task.cache_path,
        program=program,
        block_size=task.block_size,
        sim_backend=task.sim_backend,
    )
    try:
        with obs.stage("enumerate"):
            search = pipe.explore()
        with obs.stage("label+train"):
            result = pipe.run(search)
    finally:
        pipe.close()
    with obs.stage("extract-rules"):
        rules = reduce_workload_rules(task.spec, program, result)
    return rules


def _run_search_range(machine: MachineConfig, task: WorkloadTask) -> object:
    """One shard of a range-sharded exhaustive sweep.

    The shard seeks to ``range_start`` (a DP descent, no enumeration),
    sweeps exactly ``range_limit`` enumeration positions, and returns the
    :class:`~repro.search.base.SearchResult` — schedules are plain
    picklable values, so the payload crosses the process boundary whole.
    With ``store_path`` set the shard loads the machine's rule artifacts
    and runs guided branch-and-bound over its range instead.
    """
    from repro.search.exhaustive import ExhaustiveSearch

    with obs.stage("build+seek"):
        program = build_workload(task.spec)
        space = DesignSpace(program, n_streams=task.n_streams)
        cursor = space.seek(task.range_start)
    guide = None
    if task.store_path is not None:
        from repro.advisor import ArtifactStore
        from repro.advisor.guided import ScheduleGuide

        with obs.stage("load-guide"):
            guide = ScheduleGuide.from_store(
                ArtifactStore(task.store_path), program, machine=machine.name
            )
    cache = (
        MeasurementCache(task.cache_path)
        if task.cache_path is not None
        else None
    )
    try:
        evaluator = build_evaluator(
            program,
            machine.with_ranks(program.n_ranks),
            task.measurement,
            workers=task.workers,
            cache=cache,
            sim_backend=task.sim_backend,
        )
        try:
            with obs.stage("search"):
                result = ExhaustiveSearch(
                    space,
                    evaluator,
                    batch_size=task.block_size or 64,
                    guide=guide,
                    cursor=cursor,
                    limit=task.range_limit,
                ).run()
        finally:
            evaluator.close()
    finally:
        if cache is not None:
            cache.close()
    return result


_EXECUTORS = {
    TASK_SUITE_CELLS: _run_suite_cells,
    TASK_WORKLOAD_RULES: _run_workload_rules,
    TASK_SEARCH_RANGE: _run_search_range,
}


def execute_task(machine: MachineConfig, task: WorkloadTask) -> TaskResult:
    """Run one task to completion in the current process."""
    with obs.task_scope(task.label, kind=task.kind, index=task.index) as scope:
        payload = _EXECUTORS[task.kind](machine, task)
    return TaskResult(
        index=task.index,
        label=task.label,
        kind=task.kind,
        payload=payload,
        wall_s=scope.duration,
        stages=tuple(scope.stages),
        pid=os.getpid(),
    )


def _execute_task_shipped(
    machine: MachineConfig,
    task: WorkloadTask,
    observe: bool = False,
    heartbeat_path: Optional[str] = None,
    telemetry: bool = False,
) -> TaskResult:
    """Worker-side entry: run the task, then make the result picklable.

    Programs may close over non-picklable payloads, so a result crossing
    a process boundary travels without its program;
    :func:`restore_rules_payload` rebuilds it in the parent from the
    spec — bit-identical by the workload determinism contract.  The
    in-process path skips the round trip entirely.

    Telemetry crosses the boundary the same way: the task runs against a
    fresh worker-local registry (and tracer, when the parent traces —
    ``observe``), whose snapshot and span subtrees ship home on the
    result for :func:`repro.obs.absorb` in ``execute_plan``.  With a
    ``heartbeat_path`` (parent runs under ``--progress``) the worker
    additionally flushes throttled counter heartbeats to that file so
    the parent's meter can see in-flight work before absorption.
    """
    with obs.worker_capture(
        trace=observe, heartbeat=heartbeat_path, telemetry=telemetry
    ) as cap:
        result = execute_task(machine, task)
    payload = result.payload
    if getattr(payload, "program", None) is not None:
        result = dataclasses.replace(
            result, payload=dataclasses.replace(payload, program=None)
        )
    return dataclasses.replace(
        result,
        spans=cap.spans,
        metrics=cap.snapshot,
        resources=cap.resources,
        obs_epoch=cap.epoch,
    )


def restore_rules_payload(result: TaskResult) -> object:
    """Reattach the (rebuilt) program to a ``workload-rules`` payload."""
    payload = result.payload
    if getattr(payload, "program", True) is None:
        payload = dataclasses.replace(
            payload, program=build_workload(payload.spec)
        )
    return payload


# ----------------------------------------------------------------------
def execute_plan(
    plan: ExecutionPlan,
    *,
    shard_workers: int = 0,
    start_method: Optional[str] = None,
) -> PlanRun:
    """Run every task of ``plan``; sharded when ``shard_workers > 1``.

    Dependency edges (``task.depends_on``) gate submission: a task is
    submitted only once its prerequisites completed.  Results are
    returned in task-index order either way.
    """
    t0 = time.perf_counter()
    obs.log.info(
        "plan.execute",
        n_tasks=len(plan.tasks),
        shard_workers=shard_workers,
    )
    with obs.span(
        "plan.execute", n_tasks=len(plan.tasks), shard_workers=shard_workers
    ):
        if shard_workers > 1 and len(plan.tasks) > 1:
            results, method = _execute_sharded(
                plan, shard_workers, start_method
            )
        else:
            shard_workers = 0
            method = None
            results = []
            for task in plan.tasks:
                results.append(execute_task(plan.machine, task))
                obs.add("plan.tasks_completed")
        results.sort(key=lambda r: r.index)
        # Merge shipped worker telemetry in task-index order — the same
        # deterministic merge discipline the payloads themselves get.
        for result in results:
            obs.absorb(
                result.spans,
                result.metrics,
                resources=result.resources,
                epoch=result.obs_epoch,
            )
    return PlanRun(
        results=results,
        shard_workers=shard_workers,
        wall_s=time.perf_counter() - t0,
        start_method=method,
    )


def _execute_sharded(
    plan: ExecutionPlan,
    shard_workers: int,
    start_method: Optional[str],
) -> Tuple[List[TaskResult], str]:
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    n_workers = min(shard_workers, len(plan.tasks))
    pending = {t.index: t for t in plan.tasks}
    costs = {t.index: estimate_task_cost(t) for t in plan.tasks}
    done: set = set()
    results: List[TaskResult] = []
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=multiprocessing.get_context(start_method),
    ) as pool:
        in_flight: Dict[object, int] = {}

        def submit_ready() -> None:
            # Costliest-first: long-pole workloads hit the pool before
            # cheap ones, so no shard drains while a giant waits queued.
            for index in submission_order(pending.values(), costs):
                task = pending[index]
                if all(dep in done for dep in task.depends_on):
                    future = pool.submit(
                        _execute_task_shipped,
                        plan.machine,
                        task,
                        obs.tracing_active(),
                        obs.progress_heartbeat_path(task.index),
                        obs.telemetry_active(),
                    )
                    in_flight[future] = index
                    del pending[index]

        submit_ready()
        # Under --progress the wait times out at the heartbeat cadence so
        # worker counter updates surface between task completions.
        poll_timeout = obs.progress_poll_interval()
        while in_flight:
            completed, _ = wait(
                list(in_flight),
                timeout=poll_timeout,
                return_when=FIRST_COMPLETED,
            )
            obs.progress_poll()
            for future in completed:
                index = in_flight.pop(future)
                results.append(future.result())  # re-raises task errors
                done.add(index)
                # The result now carries this task's counters; drop its
                # heartbeat file so the meter never counts both once the
                # snapshot is absorbed (monotone max smooths the gap).
                beat = obs.progress_heartbeat_path(index)
                if beat is not None:
                    try:
                        os.unlink(beat)
                    except OSError:
                        pass
                obs.add("plan.tasks_completed")
            submit_ready()
    if pending:  # pragma: no cover - guarded by ExecutionPlan validation
        raise WorkloadError(
            f"plan deadlocked with tasks {sorted(pending)} unsubmitted"
        )
    return results, start_method
