"""repro.orchestrate — workload-level sharding for suites and transfer.

PR 1 parallelized *within* a (workload × strategy) cell; this subsystem
parallelizes *across* cells.  A suite or transfer run is compiled into an
:class:`ExecutionPlan` — a DAG of :class:`WorkloadTask` units, each one
whole workload's pipeline (build → search/enumerate → label →
extract-rules) — and :func:`execute_plan` runs the tasks in-process or
across a ``ProcessPoolExecutor`` of whole-workload shards.

Guarantees:

* **Determinism.**  Each task's output is a pure function of the task
  value (workload builds are seed-deterministic; measurements are pure
  in (schedule, context)), so sharded results are bit-identical to a
  serial sweep, modulo wall-clock timing fields.
* **Ordering.**  Results come back sorted by ``task.index`` regardless
  of completion order.
* **Shared cache.**  All shards may point at one persistent
  :class:`~repro.exec.MeasurementCache`; connections are per-process and
  SQLite WAL + busy-timeout make concurrent writers safe.

:class:`~repro.workloads.suite.SuiteRunner`,
:func:`~repro.workloads.generalization.rules_for_specs`, and
:func:`~repro.transfer.matrix.run_transfer_matrix` are all built on
plans; the CLI exposes the knobs as ``repro suite/transfer
--shard-workers N --block-size B``.
"""

from repro.orchestrate.plan import (
    TASK_SEARCH_RANGE,
    TASK_SUITE_CELLS,
    TASK_WORKLOAD_RULES,
    ExecutionPlan,
    WorkloadTask,
    plan_rules,
    plan_suite,
)
from repro.orchestrate.ranges import (
    RangeShardedSearch,
    ScheduleRange,
    partition_ranges,
    run_range_sharded_search,
)
from repro.orchestrate.runner import (
    PlanRun,
    TaskResult,
    estimate_task_cost,
    execute_plan,
    execute_task,
    make_strategy,
    restore_rules_payload,
    submission_order,
)

__all__ = [
    "TASK_SEARCH_RANGE",
    "TASK_SUITE_CELLS",
    "TASK_WORKLOAD_RULES",
    "ExecutionPlan",
    "PlanRun",
    "RangeShardedSearch",
    "ScheduleRange",
    "TaskResult",
    "WorkloadTask",
    "estimate_task_cost",
    "execute_plan",
    "execute_task",
    "make_strategy",
    "partition_ranges",
    "plan_rules",
    "plan_suite",
    "restore_rules_payload",
    "run_range_sharded_search",
    "submission_order",
]
