"""Adapters that feed external perf data into the run-diff gate.

``benchmarks/compare_bench.py`` (the nightly workflow's gate) used to
hand-roll its own mean-extraction and ratio check; it now converts each
pytest-benchmark JSON file into a synthetic
:class:`~repro.obs.trace_io.TraceData` — one root span per benchmark,
duration = mean wall — and gates through the exact
:func:`repro.obs.diff.diff_runs` thresholds ``repro trace --diff``
applies to real traces.  One gate implementation, every consumer.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from repro.obs.span import SpanRecord
from repro.obs.trace_io import TraceData, TraceSchemaError

__all__ = ["bench_json_to_trace"]


def bench_json_to_trace(
    path: str, pattern: Optional[str] = None
) -> TraceData:
    """Convert a pytest-benchmark JSON file to a synthetic trace.

    Every benchmark whose ``fullname`` matches ``pattern`` (all, when
    None) becomes one root span with the benchmark's mean wall time as
    its duration, so :func:`~repro.obs.diff.diff_runs` sees benchmark
    fullnames as span paths.  Rounds become a ``bench.rounds`` counter
    contribution per benchmark only in span attrs — counters are left
    empty because benchmark runs have no deterministic-event identity
    to gate on.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise TraceSchemaError(f"{path}: not a benchmark JSON file: {err}")
    benches = data.get("benchmarks")
    if not isinstance(benches, list):
        raise TraceSchemaError(f"{path}: no 'benchmarks' array")
    rx = re.compile(pattern) if pattern else None

    spans = []
    for bench in benches:
        fullname = bench.get("fullname")
        stats = bench.get("stats")
        if not isinstance(fullname, str) or not isinstance(stats, dict):
            continue
        if rx is not None and not rx.search(fullname):
            continue
        mean = stats.get("mean")
        if not isinstance(mean, (int, float)):
            continue
        spans.append(
            SpanRecord(
                name=fullname,
                start=0.0,
                duration=float(mean),
                pid=0,
                attrs={"rounds": stats.get("rounds", 0)},
            )
        )
    spans.sort(key=lambda s: s.name)
    return TraceData(
        meta={"source": "pytest-benchmark", "path": path},
        spans=tuple(spans),
    )
