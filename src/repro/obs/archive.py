"""RunArchive: persisted, self-describing bundles of instrumented runs.

Layout under an archive root::

    root/
      index.jsonl            # one line per run: id, command, created
      <run_id>/
        meta.json            # schema/trace versions, argv, git sha, ...
        trace.jsonl          # spans + metrics (repro.obs.trace_io)

Every bundle is self-describing — ``meta.json`` pins the archive schema
version, the trace schema version, the git revision, the CLI argv, and
the machine preset the run used — so a bundle downloaded from a CI
artifact months later still diffs cleanly against a fresh run.  The
index is append-only JSONL: concurrent runs appending to the same
archive interleave whole lines, and readers tolerate (skip) torn ones.

:func:`resolve_trace` is the CLI's one entry point for "give me a
trace": it accepts a bare trace file, a run-bundle directory, or an
archive root (which resolves to the archive's most recent run).
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsSnapshot
from repro.obs.span import SpanRecord
from repro.obs.telemetry import ResourceSample
from repro.obs.trace_io import (
    TRACE_VERSION,
    TraceData,
    TraceSchemaError,
    read_trace,
    write_trace,
)

__all__ = [
    "ARCHIVE_VERSION",
    "RunArchive",
    "RunRecord",
    "git_revision",
    "resolve_trace",
]

ARCHIVE_VERSION = 1

_INDEX = "index.jsonl"
_META = "meta.json"
_TRACE = "trace.jsonl"


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort ``git rev-parse HEAD``; None outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


@dataclass(frozen=True)
class RunRecord:
    """One archived run: its id, bundle directory, and metadata."""

    run_id: str
    path: str
    command: str
    created: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def trace_path(self) -> str:
        return os.path.join(self.path, _TRACE)

    @property
    def meta_path(self) -> str:
        return os.path.join(self.path, _META)

    def load(self) -> TraceData:
        """Parse the bundle's trace, folding ``meta.json`` into meta."""
        data = read_trace(self.trace_path)
        for key, value in self.meta.items():
            data.meta.setdefault(key, value)
        return data


class RunArchive:
    """An indexed directory of archived runs."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, _INDEX)

    # -- write path ----------------------------------------------------
    def _new_run_id(self, command: str, when: datetime) -> str:
        stamp = when.strftime("%Y%m%dT%H%M%SZ")
        base = f"{command}-{stamp}-p{os.getpid()}"
        run_id, n = base, 1
        while os.path.exists(os.path.join(self.root, run_id)):
            n += 1
            run_id = f"{base}-{n}"
        return run_id

    def record(
        self,
        spans: Sequence[SpanRecord],
        metrics: Optional[MetricsSnapshot] = None,
        *,
        command: str,
        meta: Optional[Dict[str, object]] = None,
        run_id: Optional[str] = None,
        samples: Sequence[ResourceSample] = (),
    ) -> RunRecord:
        """Persist one run as a new bundle and index it."""
        now = datetime.now(timezone.utc)
        created = now.isoformat(timespec="seconds")
        if run_id is None:
            run_id = self._new_run_id(command, now)
        bundle = os.path.join(self.root, run_id)
        os.makedirs(bundle, exist_ok=True)

        full_meta: Dict[str, object] = {
            "schema_version": ARCHIVE_VERSION,
            "trace_version": TRACE_VERSION,
            "run_id": run_id,
            "command": command,
            "created": created,
            "git_sha": git_revision(),
        }
        full_meta.update(meta or {})
        with open(
            os.path.join(bundle, _META), "w", encoding="utf-8"
        ) as fh:
            json.dump(full_meta, fh, indent=2, sort_keys=True)
            fh.write("\n")

        write_trace(
            os.path.join(bundle, _TRACE),
            spans,
            metrics,
            meta={"command": command, "run_id": run_id},
            samples=samples,
        )

        entry = {"run_id": run_id, "command": command, "created": created}
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")

        return RunRecord(
            run_id=run_id,
            path=bundle,
            command=command,
            created=created,
            meta=full_meta,
        )

    # -- read path -----------------------------------------------------
    def runs(self) -> List[RunRecord]:
        """All indexed runs, oldest first; torn/stale lines skipped."""
        out: List[RunRecord] = []
        if not os.path.exists(self.index_path):
            return out
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn concurrent append
                run_id = entry.get("run_id")
                if not isinstance(run_id, str):
                    continue
                bundle = os.path.join(self.root, run_id)
                if not os.path.isdir(bundle):
                    continue  # indexed but deleted on disk
                out.append(
                    RunRecord(
                        run_id=run_id,
                        path=bundle,
                        command=str(entry.get("command", "")),
                        created=str(entry.get("created", "")),
                        meta=self._read_meta(bundle),
                    )
                )
        return out

    @staticmethod
    def _read_meta(bundle: str) -> Dict[str, object]:
        try:
            with open(
                os.path.join(bundle, _META), "r", encoding="utf-8"
            ) as fh:
                meta = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        return meta if isinstance(meta, dict) else {}

    def get(self, run_id: str) -> RunRecord:
        for rec in self.runs():
            if rec.run_id == run_id:
                return rec
        raise KeyError(f"run {run_id!r} not in archive {self.root}")

    def latest(self, command: Optional[str] = None) -> Optional[RunRecord]:
        """Most recently *indexed* run (optionally for one command)."""
        candidates = [
            rec
            for rec in self.runs()
            if command is None or rec.command == command
        ]
        return candidates[-1] if candidates else None

    def load(self, run_id: str) -> TraceData:
        return self.get(run_id).load()


def resolve_trace(path: str) -> TraceData:
    """Load a trace from a file, a run bundle, or an archive root."""
    if os.path.isfile(path):
        return read_trace(path)
    if os.path.isdir(path):
        if os.path.isfile(os.path.join(path, _TRACE)):
            run_id = os.path.basename(os.path.normpath(path))
            rec = RunRecord(
                run_id=run_id,
                path=path,
                command="",
                created="",
                meta=RunArchive._read_meta(path),
            )
            return rec.load()
        if os.path.isfile(os.path.join(path, _INDEX)):
            latest = RunArchive(path).latest()
            if latest is None:
                raise TraceSchemaError(f"{path}: archive has no runs")
            return latest.load()
        raise TraceSchemaError(
            f"{path}: directory is neither a run bundle ({_TRACE}) "
            f"nor an archive root ({_INDEX})"
        )
    raise TraceSchemaError(f"{path}: no such trace file or archive")
