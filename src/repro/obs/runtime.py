"""Module-level observability state and the primitives built on it.

Three pieces of ambient state, all process-local:

* ``metrics`` — a :class:`MetricsRegistry` that is **always on**.  Hot
  paths emit at block/batch granularity (one dict add per enumeration
  block, not per schedule), so the always-on cost is unmeasurable while
  keeping cache hit/miss counts available without any opt-in.
* ``tracer`` — ``None`` by default.  :func:`span` is a shared no-op
  context manager until a :class:`~repro.obs.span.Tracer` is installed
  (via :class:`capture`), which is what makes tracing zero-cost when
  disabled.
* ``stage_log`` — a plain list the innermost :class:`task_scope`
  installs so :class:`stage` blocks can report ``(name, wall)`` pairs to
  whoever is running the task.  This replaces the hand-threaded stage
  float lists the orchestrator used to build, and doubles as a span when
  tracing is active.

Worker processes never share this state usefully (fork inherits a stale
copy): :class:`worker_capture` swaps in a fresh registry/tracer for the
duration of one task and the parent folds the shipped results back with
:func:`absorb` — the same merge discipline ``execute_plan`` applies to
task payloads.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.progress import (
    SEARCH_PROGRESS_COUNTERS,
    HeartbeatWriter,
    ProgressMeter,
    heartbeat_filename,
)
from repro.obs.span import SpanRecord, Tracer
from repro.obs.telemetry import (
    ResourceSample,
    TelemetrySampler,
    malloc_tracking_enabled,
)

__all__ = [
    "absorb",
    "add",
    "capture",
    "gauge",
    "metrics_snapshot",
    "progress_active",
    "progress_enabled",
    "progress_heartbeat_path",
    "progress_poll",
    "progress_poll_interval",
    "progress_scope",
    "reset",
    "span",
    "stage",
    "task_scope",
    "telemetry_active",
    "telemetry_sampler",
    "tracing_active",
    "worker_capture",
]


class _ObsState:
    __slots__ = (
        "tracer",
        "metrics",
        "stage_log",
        "ticker",
        "progress",
        "telemetry",
    )

    def __init__(self) -> None:
        self.tracer: Optional[Tracer] = None
        self.metrics: MetricsRegistry = MetricsRegistry()
        self.stage_log: Optional[List[Tuple[str, float]]] = None
        #: Counter-bump hook: a ProgressMeter (parent) or HeartbeatWriter
        #: (worker).  Called from :func:`add`, so it must be cheap.
        self.ticker: Optional[object] = None
        #: The active :class:`progress_scope`, parent process only.
        self.progress: Optional["progress_scope"] = None
        #: Resource sampler (``--telemetry``), installed by capture scopes.
        self.telemetry: Optional[TelemetrySampler] = None


_STATE = _ObsState()


def reset() -> None:
    """Drop all ambient state (fresh registry, no tracer). Test helper."""
    if _STATE.telemetry is not None:
        _STATE.telemetry.stop()
    _STATE.tracer = None
    _STATE.metrics = MetricsRegistry()
    _STATE.stage_log = None
    _STATE.ticker = None
    _STATE.progress = None
    _STATE.telemetry = None


# ---------------------------------------------------------------------------
# metrics facade


def add(name: str, value: float = 1) -> None:
    _STATE.metrics.add(name, value)
    ticker = _STATE.ticker
    if ticker is not None:
        ticker.tick(_STATE.metrics)
    sampler = _STATE.telemetry
    if sampler is not None and sampler.due():
        sampler.sample(_open_span_path())


def gauge(name: str, value: float) -> None:
    _STATE.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    _STATE.metrics.observe(name, value)


def metrics_snapshot() -> MetricsSnapshot:
    return _STATE.metrics.snapshot()


# ---------------------------------------------------------------------------
# spans


class _NullSpan:
    """Shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    __slots__ = ("_tracer", "_name", "_attrs", "record")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        self.record = self._tracer.open(self._name, self._attrs)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.close(self.record)

    def set(self, **attrs: object) -> None:
        self.record.attrs.update(attrs)


def span(name: str, **attrs: object):
    """Open a traced span, or a shared no-op when tracing is disabled."""
    tracer = _STATE.tracer
    if tracer is None:
        return _NULL_SPAN
    return _SpanHandle(tracer, name, attrs)


def tracing_active() -> bool:
    return _STATE.tracer is not None


# ---------------------------------------------------------------------------
# telemetry


def _open_span_path() -> str:
    """``/``-joined names of the currently open span stack ("" if none)."""
    tracer = _STATE.tracer
    if tracer is None or not tracer._stack:
        return ""
    return "/".join(rec.name for rec in tracer._stack)


def telemetry_active() -> bool:
    return _STATE.telemetry is not None


def telemetry_sampler() -> Optional[TelemetrySampler]:
    """The installed resource sampler, or None when telemetry is off."""
    return _STATE.telemetry


def _force_sample() -> None:
    """Boundary sample (task/stage open+close) so CPU deltas bracket."""
    sampler = _STATE.telemetry
    if sampler is not None:
        sampler.sample(_open_span_path())


# ---------------------------------------------------------------------------
# progress


class progress_scope:
    """Live progress for one long operation (``--progress``).

    Installs a :class:`~repro.obs.progress.ProgressMeter` as the ambient
    counter ticker so serial counter bumps update the stderr line, and
    owns a temporary heartbeat directory so sharded workers can report
    through :func:`progress_heartbeat_path` /
    :class:`~repro.obs.progress.HeartbeatWriter`.  On clean exit the
    meter prints its exact 100% line from the post-absorb registry;
    ``.done`` then holds the final numerator.  With ``enabled=False``
    the scope is inert — call sites keep one code path.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "progress",
        counters: Iterable[str] = SEARCH_PROGRESS_COUNTERS,
        stream: Optional[TextIO] = None,
        interval: float = 0.5,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.total = total
        self.label = label
        self.counters = tuple(counters)
        self.stream = stream
        self.interval = interval
        self.meter: Optional[ProgressMeter] = None
        self.heartbeat_dir: Optional[str] = None
        self.done = 0

    def __enter__(self) -> "progress_scope":
        if not self.enabled:
            return self
        self._prev_ticker = _STATE.ticker
        self._prev_progress = _STATE.progress
        self.heartbeat_dir = tempfile.mkdtemp(prefix="repro-progress-")
        self.meter = ProgressMeter(
            self.total,
            label=self.label,
            counters=self.counters,
            stream=self.stream,
            interval=self.interval,
            heartbeat_dir=self.heartbeat_dir,
            baseline=_STATE.metrics.snapshot(),
        )
        _STATE.ticker = self.meter
        _STATE.progress = self
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if not self.enabled:
            return
        _STATE.ticker = self._prev_ticker
        _STATE.progress = self._prev_progress
        if exc_type is None and self.meter is not None:
            self.done = self.meter.finish(_STATE.metrics)
        if self.heartbeat_dir is not None:
            shutil.rmtree(self.heartbeat_dir, ignore_errors=True)
            self.heartbeat_dir = None

    def heartbeat_path(self, index: int) -> Optional[str]:
        if self.heartbeat_dir is None:
            return None
        return os.path.join(self.heartbeat_dir, heartbeat_filename(index))


def progress_enabled() -> bool:
    """True when a ticker is installed (meter here, heartbeat in workers).

    Hot paths use this to turn on accounting that only progress needs
    (e.g. counting leaves under cut subtrees), so disabled runs pay
    nothing.
    """
    return _STATE.ticker is not None


def progress_active() -> Optional[progress_scope]:
    return _STATE.progress


def progress_heartbeat_path(index: int) -> Optional[str]:
    """Heartbeat file for shipped task ``index``, or None without progress."""
    scope = _STATE.progress
    if scope is None:
        return None
    return scope.heartbeat_path(index)


def progress_poll() -> None:
    """Refresh the progress line from worker heartbeats (wait loops)."""
    scope = _STATE.progress
    if scope is not None and scope.meter is not None:
        scope.meter.poll(_STATE.metrics)


def progress_poll_interval() -> Optional[float]:
    """Wait-loop timeout so heartbeats surface between task completions."""
    scope = _STATE.progress
    if scope is not None and scope.meter is not None:
        return scope.meter.interval
    return None


# ---------------------------------------------------------------------------
# stages: always-timed coarse phases reported to the enclosing task


class stage:
    """Time one coarse phase of a task.

    Always measures wall time (``.duration`` after exit) and appends
    ``(name, duration)`` to the innermost :class:`task_scope`'s stage
    log; additionally records a ``stage:<name>`` span when tracing is
    active.  This is the single primitive behind the per-stage walls in
    ``SuiteReport``/``TransferMatrixResult`` timing dicts.
    """

    __slots__ = ("name", "attrs", "duration", "_t0", "_rec")

    def __init__(self, name: str, **attrs: object) -> None:
        self.name = name
        self.attrs = attrs
        self.duration = 0.0

    def __enter__(self) -> "stage":
        tracer = _STATE.tracer
        self._rec = (
            tracer.open(f"stage:{self.name}", self.attrs)
            if tracer is not None
            else None
        )
        _force_sample()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration = time.perf_counter() - self._t0
        _force_sample()
        if self._rec is not None and _STATE.tracer is not None:
            _STATE.tracer.close(self._rec)
        if _STATE.stage_log is not None:
            _STATE.stage_log.append((self.name, self.duration))


class task_scope:
    """Scope for one orchestrated task: stage log + ``task:<label>`` span.

    Exposes ``.stages`` (ordered ``(name, wall)`` pairs from nested
    :class:`stage` blocks) and ``.duration`` after exit — exactly what
    ``TaskResult`` records.
    """

    __slots__ = ("label", "kind", "index", "stages", "duration", "_prev", "_rec", "_t0")

    def __init__(self, label: str, *, kind: str = "", index: int = 0) -> None:
        self.label = label
        self.kind = kind
        self.index = index
        self.stages: List[Tuple[str, float]] = []
        self.duration = 0.0

    def __enter__(self) -> "task_scope":
        self._prev = _STATE.stage_log
        _STATE.stage_log = self.stages
        tracer = _STATE.tracer
        self._rec = (
            tracer.open(
                f"task:{self.label}", {"kind": self.kind, "index": self.index}
            )
            if tracer is not None
            else None
        )
        _force_sample()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration = time.perf_counter() - self._t0
        _force_sample()
        _STATE.stage_log = self._prev
        if self._rec is not None and _STATE.tracer is not None:
            _STATE.tracer.close(self._rec)


# ---------------------------------------------------------------------------
# capture scopes


class capture:
    """Parent-side capture: optionally install a tracer, delta the metrics.

    After exit, ``.spans`` holds the finished root spans (empty when
    ``trace=False``) and ``.metrics`` the :class:`MetricsSnapshot` delta
    of everything recorded — or absorbed from workers — inside the
    block.  Nestable; the previous tracer is restored on exit.

    ``telemetry=True`` additionally installs a
    :class:`~repro.obs.telemetry.TelemetrySampler` sharing the tracer's
    epoch; after exit ``.resources`` holds every collected (and
    absorbed) :class:`ResourceSample` and the registry gains
    ``telemetry.*`` gauges (peak RSS, CPU seconds) that land in the
    metrics delta.
    """

    def __init__(self, trace: bool = False, telemetry: bool = False) -> None:
        self.trace = trace
        self.telemetry = telemetry
        self.spans: Tuple[SpanRecord, ...] = ()
        self.metrics = MetricsSnapshot()
        self.resources: Tuple[ResourceSample, ...] = ()
        self.epoch: Optional[float] = None

    def __enter__(self) -> "capture":
        self._before = _STATE.metrics.snapshot()
        self._prev_tracer = _STATE.tracer
        self._prev_telemetry = _STATE.telemetry
        if self.trace:
            _STATE.tracer = Tracer()
        if self.telemetry:
            sampler = TelemetrySampler(
                epoch=_STATE.tracer.epoch if self.trace else None,
                malloc=malloc_tracking_enabled(),
            )
            _STATE.telemetry = sampler
            sampler.sample("")  # baseline reading before any work
        return self

    def __exit__(self, *exc: object) -> None:
        sampler = _STATE.telemetry
        if self.telemetry and sampler is not None:
            sampler.sample(_open_span_path())
            sampler.stop()
            self.resources = tuple(sampler.samples)
            self.epoch = sampler.epoch
            for name, value in sampler.summary().items():
                # Gauges, never counters: counter digests must stay
                # bit-identical between serial and sharded runs.
                _STATE.metrics.gauge(f"telemetry.{name}", value)
        if self.trace and _STATE.tracer is not None:
            self.spans = _STATE.tracer.finished_roots()
        _STATE.tracer = self._prev_tracer
        _STATE.telemetry = self._prev_telemetry
        self.metrics = _STATE.metrics.snapshot().diff(self._before)

    @property
    def n_spans(self) -> int:
        return sum(rec.n_spans() for rec in self.spans)


class worker_capture:
    """Worker-side capture for one shipped task.

    Swaps in a *fresh* registry (and tracer, when the parent is tracing)
    so a pooled worker process — which may run many tasks back to back —
    never leaks metrics between tasks.  After exit, ``.spans`` and
    ``.snapshot`` are the picklable payloads to ship on the TaskResult.

    ``heartbeat`` (a file path from the parent's
    :func:`progress_heartbeat_path`) installs a
    :class:`~repro.obs.progress.HeartbeatWriter` as the ticker for the
    task's duration and force-flushes it on exit.  The ticker/progress
    slots are *always* overridden — a forked worker inherits the
    parent's ProgressMeter in its stale state copy, and ticking that
    from a worker would corrupt the parent-side accounting.  The
    telemetry slot is overridden for the same reason: with
    ``telemetry=True`` a fresh sampler is installed (and its live
    payload wired onto the heartbeat file), otherwise the inherited
    stale sampler is masked with None.

    After exit ``.resources`` holds the worker's samples and ``.epoch``
    the worker-side clock origin, which :func:`absorb` uses to rebase
    shipped timestamps (and span starts) onto the parent clock.
    """

    def __init__(
        self,
        trace: bool = False,
        heartbeat: Optional[str] = None,
        telemetry: bool = False,
    ) -> None:
        self.trace = trace
        self.heartbeat = heartbeat
        self.telemetry = telemetry
        self.spans: Tuple[SpanRecord, ...] = ()
        self.snapshot = MetricsSnapshot()
        self.resources: Tuple[ResourceSample, ...] = ()
        self.epoch: Optional[float] = None

    def __enter__(self) -> "worker_capture":
        self._prev_tracer = _STATE.tracer
        self._prev_metrics = _STATE.metrics
        self._prev_ticker = _STATE.ticker
        self._prev_progress = _STATE.progress
        self._prev_telemetry = _STATE.telemetry
        _STATE.tracer = Tracer() if self.trace else None
        _STATE.metrics = MetricsRegistry()
        sampler = (
            TelemetrySampler(
                epoch=_STATE.tracer.epoch if self.trace else None,
                malloc=malloc_tracking_enabled(),
            )
            if self.telemetry
            else None
        )
        _STATE.telemetry = sampler
        ticker = HeartbeatWriter(self.heartbeat) if self.heartbeat else None
        if ticker is not None and sampler is not None:
            ticker.resource_fn = sampler.heartbeat_payload
        _STATE.ticker = ticker
        _STATE.progress = None
        if sampler is not None:
            sampler.sample("")  # baseline reading before any work
        return self

    def __exit__(self, *exc: object) -> None:
        sampler = _STATE.telemetry
        if self.telemetry and sampler is not None:
            sampler.sample(_open_span_path())
            sampler.stop()
            self.resources = tuple(sampler.samples)
            self.epoch = sampler.epoch
        if self.trace and _STATE.tracer is not None:
            self.spans = _STATE.tracer.finished_roots()
            if self.epoch is None:
                # Ship the clock origin even without telemetry so the
                # parent can rebase span starts onto its own axis.
                self.epoch = _STATE.tracer.epoch
        ticker = _STATE.ticker
        if isinstance(ticker, HeartbeatWriter):
            ticker.flush(_STATE.metrics)
        self.snapshot = _STATE.metrics.snapshot()
        _STATE.tracer = self._prev_tracer
        _STATE.metrics = self._prev_metrics
        _STATE.ticker = self._prev_ticker
        _STATE.progress = self._prev_progress
        _STATE.telemetry = self._prev_telemetry


def _shift_span(rec: SpanRecord, shift: float) -> None:
    """Rebase one span subtree's start times by ``shift`` seconds."""
    rec.start += shift
    for child in rec.children:
        _shift_span(child, shift)


def absorb(
    spans: Sequence[SpanRecord] = (),
    snapshot: Optional[MetricsSnapshot] = None,
    resources: Sequence[ResourceSample] = (),
    epoch: Optional[float] = None,
) -> None:
    """Fold a worker's shipped telemetry into the ambient state.

    Metrics merge into the live registry; span subtrees graft under the
    current open span (``plan.execute`` during plan merging), giving one
    coherent trace tree per run.  When the worker ships its clock
    ``epoch``, span starts and sample timestamps are rebased by
    ``worker_epoch - parent_epoch`` first — ``perf_counter`` is the
    system-wide monotonic clock on the platforms we run on, so after
    rebasing one trace holds a single coherent cross-pid timeline.
    Resource sample paths are grafted under the open span path, the same
    discipline span subtrees get.
    """
    if snapshot is not None and not snapshot.is_empty():
        _STATE.metrics.merge_snapshot(snapshot)
    tracer = _STATE.tracer
    sampler = _STATE.telemetry
    shift = 0.0
    if epoch is not None:
        if tracer is not None:
            shift = epoch - tracer.epoch
        elif sampler is not None:
            shift = epoch - sampler.epoch
    if spans and tracer is not None:
        if shift:
            for root in spans:
                _shift_span(root, shift)
        tracer.attach(list(spans))
    if resources and sampler is not None:
        sampler.absorb(resources, shift=shift, prefix=_open_span_path())
