"""Per-process resource telemetry: CPU, RSS, GC, optional tracemalloc.

A :class:`TelemetrySampler` periodically reads this process's resource
state — cumulative CPU user/system time and resident set size from
``/proc/self`` (with a ``resource.getrusage`` fallback off Linux), GC
collection counts, and (behind a flag, because tracing allocations is
itself expensive) the ``tracemalloc`` peak — and records it as a
:class:`ResourceSample` tagged with the span path that was open at
sample time.  Samples ride the exact channels spans already use:

* the ambient hooks in :mod:`repro.obs.runtime` sample (throttled) on
  every counter bump and (forced) at task/stage boundaries, so every
  ``task:*`` span brackets at least two samples and per-path CPU deltas
  are well-defined;
* ``worker_capture`` ships a worker task's samples home on the
  ``TaskResult`` for :func:`repro.obs.absorb`, which rebases their
  timestamps onto the parent clock and grafts their paths under the
  open span — the same merge discipline span subtrees get;
* the worker heartbeat file carries a live resource payload, so the
  parent can see a shard's RSS while the task is still running.

Reading ``/proc`` costs a few microseconds and sampling is throttled
(default 50ms), so telemetry-on runs stay within the <5% overhead
budget ``benchmarks/bench_obs_telemetry.py`` pins.
"""

from __future__ import annotations

import gc
import os
import resource
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ResourceSample",
    "TelemetrySampler",
    "malloc_tracking_enabled",
    "read_resources",
    "sample_now",
]

#: Environment flag enabling tracemalloc peak tracking in samples.
MALLOC_ENV = "REPRO_TELEMETRY_MALLOC"

#: Default sampling throttle (seconds between ambient samples).
SAMPLE_INTERVAL_S = 0.05


def malloc_tracking_enabled() -> bool:
    """True when ``REPRO_TELEMETRY_MALLOC`` asks for tracemalloc peaks."""
    return os.environ.get(MALLOC_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
    )


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time resource reading of one process.

    ``cpu_utime_s``/``cpu_stime_s`` are *cumulative* since process start
    (the kernel's accounting), so per-span CPU is the delta between a
    path's first and last sample.  ``ts`` is seconds since the owning
    sampler's epoch; absorbed worker samples are rebased onto the parent
    epoch, so timestamps in one trace are comparable across pids.
    """

    ts: float
    pid: int
    #: ``/``-joined open-span path at sample time ("" outside any span).
    path: str
    rss_bytes: int
    cpu_utime_s: float
    cpu_stime_s: float
    gc_collections: int
    malloc_peak_bytes: Optional[int] = None

    @property
    def cpu_s(self) -> float:
        return self.cpu_utime_s + self.cpu_stime_s


def _read_proc_self() -> Optional[Tuple[int, float, float]]:
    """(rss_bytes, utime_s, stime_s) from /proc/self, or None off Linux."""
    try:
        with open("/proc/self/stat", "rb") as fh:
            stat = fh.read()
        with open("/proc/self/statm", "rb") as fh:
            statm = fh.read()
    except OSError:
        return None
    try:
        # comm may contain spaces/parens; everything after the *last*
        # ") " is the fixed field tail starting at field 3 (state).
        fields = stat.rsplit(b") ", 1)[1].split()
        tick = float(os.sysconf("SC_CLK_TCK"))
        utime = int(fields[11]) / tick  # field 14 (utime), 1-indexed
        stime = int(fields[12]) / tick  # field 15 (stime)
        rss = int(statm.split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (IndexError, ValueError, OSError):
        return None
    return rss, utime, stime


def _read_rusage() -> Tuple[int, float, float]:
    ru = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux, bytes on macOS; either way it is a
    # lifetime peak, not current residency — acceptable as a fallback.
    scale = 1 if sys.platform == "darwin" else 1024
    return int(ru.ru_maxrss) * scale, ru.ru_utime, ru.ru_stime


def read_resources() -> Tuple[int, float, float]:
    """Current (rss_bytes, cpu_utime_s, cpu_stime_s) of this process."""
    values = _read_proc_self()
    if values is None:
        values = _read_rusage()
    return values


def _gc_collections() -> int:
    return sum(int(s.get("collections", 0)) for s in gc.get_stats())


def _malloc_peak() -> Optional[int]:
    import tracemalloc

    if not tracemalloc.is_tracing():
        return None
    return tracemalloc.get_traced_memory()[1]


def sample_now(
    path: str = "",
    ts: float = 0.0,
    *,
    malloc: bool = False,
) -> ResourceSample:
    """One immediate :class:`ResourceSample` of the calling process."""
    rss, utime, stime = read_resources()
    return ResourceSample(
        ts=ts,
        pid=os.getpid(),
        path=path,
        rss_bytes=rss,
        cpu_utime_s=utime,
        cpu_stime_s=stime,
        gc_collections=_gc_collections(),
        malloc_peak_bytes=_malloc_peak() if malloc else None,
    )


class TelemetrySampler:
    """Collects throttled :class:`ResourceSample` series for one process.

    The sampler shares its epoch with the process's tracer (when both
    are active) so sample timestamps land on the same axis as span
    starts.  ``maybe_sample`` is the hot-path hook — one clock read when
    throttled — while ``sample`` forces a reading at span boundaries.
    """

    __slots__ = (
        "interval",
        "epoch",
        "malloc",
        "samples",
        "_clock",
        "_last",
        "_owns_tracemalloc",
    )

    def __init__(
        self,
        *,
        interval: float = SAMPLE_INTERVAL_S,
        epoch: Optional[float] = None,
        malloc: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.interval = interval
        self._clock = clock
        self.epoch = clock() if epoch is None else epoch
        self.malloc = malloc
        self.samples: List[ResourceSample] = []
        self._last = float("-inf")
        self._owns_tracemalloc = False
        if malloc:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True

    # ------------------------------------------------------------------
    def due(self) -> bool:
        """True when the throttle window has elapsed (hot-path check)."""
        return self._clock() - self._last >= self.interval

    def sample(self, path: str = "") -> ResourceSample:
        """Force one sample now, tagged with ``path``."""
        now = self._clock()
        self._last = now
        rec = sample_now(path, ts=now - self.epoch, malloc=self.malloc)
        self.samples.append(rec)
        return rec

    def maybe_sample(self, path: str = "") -> Optional[ResourceSample]:
        """Throttled sample; returns None inside the throttle window."""
        if not self.due():
            return None
        return self.sample(path)

    # ------------------------------------------------------------------
    def absorb(
        self,
        samples: Iterable[ResourceSample],
        *,
        shift: float = 0.0,
        prefix: str = "",
    ) -> None:
        """Fold shipped worker samples in: rebase ts, graft the path.

        ``shift`` is ``worker_epoch - parent_epoch`` (both are
        ``perf_counter`` readings, which share a clock across processes
        on the platforms we run on), so rebased timestamps line worker
        samples up with parent-side ones.  ``prefix`` is the open span
        path at absorb time — the same place the worker's span subtree
        is grafted — so sample paths stay congruent with span paths.
        """
        for rec in samples:
            path = rec.path
            if prefix:
                path = f"{prefix}/{path}" if path else prefix
            self.samples.append(replace(rec, ts=rec.ts + shift, path=path))

    def heartbeat_payload(self) -> Dict[str, object]:
        """Small live-resource dict for the worker heartbeat file."""
        rss, utime, stime = read_resources()
        return {
            "rss_bytes": rss,
            "cpu_utime_s": utime,
            "cpu_stime_s": stime,
            "gc_collections": _gc_collections(),
        }

    def summary(self) -> Dict[str, float]:
        """Run-level rollup: peak RSS and total CPU across own samples."""
        own = [s for s in self.samples if s.pid == os.getpid()]
        out: Dict[str, float] = {}
        if own:
            out["rss_max_bytes"] = float(max(s.rss_bytes for s in own))
            out["cpu_s"] = max(0.0, own[-1].cpu_s - own[0].cpu_s)
        for pid in {s.pid for s in self.samples}:
            series = [s for s in self.samples if s.pid == pid]
            peak = float(max(s.rss_bytes for s in series))
            out["rss_max_bytes"] = max(out.get("rss_max_bytes", 0.0), peak)
        return out

    def stop(self) -> None:
        """Release tracemalloc if this sampler started it."""
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False
