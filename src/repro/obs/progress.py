"""Live progress for long runs: worker heartbeats + a stderr meter.

Two halves, glued together by the ambient obs state
(:mod:`repro.obs.runtime`):

* **Workers** install a :class:`HeartbeatWriter` as their counter
  ticker.  Every counter bump may (throttled) rewrite one small JSON
  file — ``task-<index>.json`` in a directory the parent owns — with
  the worker's current counters.  Writes are atomic (tmp +
  ``os.replace``) and failure-tolerant: a progress heartbeat must never
  kill a worker.
* **The parent** installs a :class:`ProgressMeter`.  Its ``done`` count
  is the sum of the parent registry's own counter deltas (serial work)
  plus :func:`read_heartbeats` over the worker files (sharded work in
  flight).  Those two sources never overlap because worker snapshots
  are only absorbed into the parent registry *after* every task
  completes — at which point :meth:`ProgressMeter.finish` switches to
  the registry alone for the exact 100% line.

Progress totals come from ``DesignSpace.count()`` — the denominator is
exact, so the meter ends at precisely 100% and the final line's
numerator equals ``schedules evaluated + pruned + cut`` (the identity
the acceptance tests pin).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, Iterable, Optional, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

__all__ = [
    "PLAN_PROGRESS_COUNTERS",
    "SEARCH_PROGRESS_COUNTERS",
    "HeartbeatWriter",
    "ProgressMeter",
    "read_heartbeats",
    "read_heartbeats_full",
]

#: Progress numerator for schedule sweeps: every leaf the enumeration
#: retired, whether evaluated, skipped by a block filter, or cut with
#: its subtree (= evaluated + pruned + cut by the search accounting).
SEARCH_PROGRESS_COUNTERS: Tuple[str, ...] = (
    "space.schedules_enumerated",
    "space.leaves_cut",
)

#: Progress numerator for plan execution: completed tasks.
PLAN_PROGRESS_COUNTERS: Tuple[str, ...] = ("plan.tasks_completed",)

_HEARTBEAT_PREFIX = "task-"
_HEARTBEAT_SUFFIX = ".json"


def heartbeat_filename(index: int) -> str:
    return f"{_HEARTBEAT_PREFIX}{index}{_HEARTBEAT_SUFFIX}"


class HeartbeatWriter:
    """Worker-side: periodically dump counters to one atomic file."""

    def __init__(
        self,
        path: str,
        interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = path
        self.interval = interval
        self._clock = clock
        self._last_write = -1.0
        #: Optional zero-arg callable returning a live-resource dict
        #: (``TelemetrySampler.heartbeat_payload``); set by the capture
        #: scope when telemetry is on so heartbeats carry RSS/CPU.
        self.resource_fn: Optional[Callable[[], Dict[str, object]]] = None

    def tick(self, registry: MetricsRegistry) -> None:
        """Throttled write; called on every counter bump."""
        now = self._clock()
        if (
            self._last_write >= 0
            and now - self._last_write < self.interval
        ):
            return
        self._write(registry, now)

    def flush(self, registry: MetricsRegistry) -> None:
        """Unthrottled write; called once when the task finishes."""
        self._write(registry, self._clock())

    def _write(self, registry: MetricsRegistry, now: float) -> None:
        self._last_write = now
        payload = {
            "pid": os.getpid(),
            "counters": dict(registry.snapshot().counters),
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            if self.resource_fn is not None:
                payload["resources"] = self.resource_fn()
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            # The heartbeat channel is best-effort; never fail the task.
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown states count as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: exists but not ours
    return True


def read_heartbeats_full(
    directory: str,
) -> Tuple[Dict[str, float], Dict[int, Dict[str, object]]]:
    """Heartbeat counter totals plus per-pid live-resource payloads.

    Tolerant by construction: missing directory, vanished files, and
    half-written JSON all contribute nothing.  Heartbeat files whose
    recorded pid is dead are *reaped* (unlinked and skipped) — a crashed
    worker's last heartbeat must not count toward progress forever.
    Files without a usable pid are counted but never reaped.
    """
    totals: Dict[str, float] = {}
    resources: Dict[int, Dict[str, object]] = {}
    try:
        names = os.listdir(directory)
    except OSError:
        return totals, resources
    for name in names:
        if not (
            name.startswith(_HEARTBEAT_PREFIX)
            and name.endswith(_HEARTBEAT_SUFFIX)
        ):
            continue
        full = os.path.join(directory, name)
        try:
            with open(full, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        pid = payload.get("pid")
        if isinstance(pid, int) and not _pid_alive(pid):
            try:
                os.unlink(full)
            except OSError:
                pass
            continue
        counters = payload.get("counters")
        if isinstance(counters, dict):
            for key, value in counters.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        res = payload.get("resources")
        if isinstance(pid, int) and isinstance(res, dict):
            resources[pid] = res
    return totals, resources


def read_heartbeats(directory: str) -> Dict[str, float]:
    """Sum counters across every live heartbeat file in ``directory``."""
    return read_heartbeats_full(directory)[0]


def _fmt_eta(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{int(seconds) // 60}m{int(seconds) % 60:02d}s"
    return f"{seconds:.0f}s"


class ProgressMeter:
    """Parent-side throttled stderr progress line with ETA.

    ``done`` is monotone by construction (``max`` against the last
    report) so racy heartbeat reads can never walk the line backwards.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "progress",
        counters: Iterable[str] = SEARCH_PROGRESS_COUNTERS,
        stream: Optional[TextIO] = None,
        interval: float = 0.5,
        heartbeat_dir: Optional[str] = None,
        baseline: Optional[MetricsSnapshot] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.counters = tuple(counters)
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.heartbeat_dir = heartbeat_dir
        self.baseline = baseline or MetricsSnapshot()
        self._clock = clock
        self._started = clock()
        self._last_emit = -1.0
        self._last_done = 0
        self._last_rss = 0
        self.n_lines = 0

    # -- accounting ----------------------------------------------------
    def _registry_done(self, registry: MetricsRegistry) -> float:
        snap = registry.snapshot()
        return sum(
            snap.counter(name) - self.baseline.counter(name)
            for name in self.counters
        )

    def current_done(self, registry: MetricsRegistry) -> int:
        done = self._registry_done(registry)
        if self.heartbeat_dir is not None:
            beats, resources = read_heartbeats_full(self.heartbeat_dir)
            done += sum(beats.get(name, 0) for name in self.counters)
            rss = sum(
                int(r.get("rss_bytes", 0))
                for r in resources.values()
                if isinstance(r.get("rss_bytes"), (int, float))
            )
            if rss > 0:
                self._last_rss = rss
        done = int(done)
        self._last_done = max(self._last_done, done)
        return self._last_done

    # -- rendering -----------------------------------------------------
    def _line(self, done: int, final: bool) -> str:
        if self.total > 0:
            frac = min(1.0, done / self.total)
            pct = f"{100.0 * frac:5.1f}%"
        else:
            frac, pct = 1.0, "  ?  "
        elapsed = self._clock() - self._started
        if final or frac >= 1.0:
            eta = "done"
        elif done > 0:
            # Guard the denominator: an instant finish (or a coarse
            # clock) can report zero elapsed on the first render.
            rate = done / elapsed if elapsed > 0 else 0.0
            if rate > 0:
                eta = "eta " + _fmt_eta((self.total - done) / rate)
            else:
                eta = "eta --"
        else:
            eta = "eta --"
        line = f"{self.label}: {pct} ({done}/{self.total}) {eta}"
        if self._last_rss > 0:
            line += f" rss {self._last_rss / (1024 * 1024):.0f}MB"
        return line

    def _emit(self, done: int, final: bool) -> None:
        line = self._line(done, final)
        is_tty = getattr(self.stream, "isatty", lambda: False)()
        if is_tty:
            end = "\n" if final else "\r"
            self.stream.write(f"\x1b[2K{line}{end}")
        else:
            self.stream.write(line + "\n")
        try:
            self.stream.flush()
        except (OSError, ValueError):
            pass
        self.n_lines += 1

    # -- hooks ---------------------------------------------------------
    def tick(self, registry: MetricsRegistry) -> None:
        """Counter-bump hook (ambient ``obs.add``); throttled."""
        now = self._clock()
        if (
            self._last_emit >= 0
            and now - self._last_emit < self.interval
        ):
            return
        self._last_emit = now
        self._emit(self.current_done(registry), final=False)

    def poll(self, registry: MetricsRegistry) -> None:
        """Wait-loop hook: re-read heartbeats even with no local bump."""
        self.tick(registry)

    def finish(self, registry: MetricsRegistry) -> int:
        """Final 100% line from the registry alone (post-absorb)."""
        done = int(self._registry_done(registry))
        self._last_done = max(self._last_done, done)
        self._emit(self._last_done, final=True)
        return self._last_done
