"""Trace analytics: per-span-path aggregation, hotspots, critical path.

A *span path* is the ``/``-joined chain of span names from a root down
to a span (``plan.execute/task:spmv[scale=0.025]/stage:search:random``).
Paths are pure functions of the instrumented code and the workload
labels — never of pids, timestamps, or completion order — so the same
run configuration always produces the same path set.  That stability is
what makes traces *comparable*: :func:`repro.obs.diff.diff_runs` lines
two runs up path by path, and CI gates on the per-path deltas.

Three read-side primitives over a :class:`~repro.obs.span.SpanRecord`
forest:

* :func:`aggregate_spans` — count / total wall / self wall / max per
  path.  Self wall is the span's duration minus its children's (clamped
  at zero: a parent whose children ran *in parallel* on shard workers
  legitimately sums its children past its own wall).
* :func:`critical_path` — the root-to-leaf chain that bounds the run's
  wall time.  At every level the walk descends into the child with the
  largest duration: sibling spans under ``plan.execute`` are shard tasks
  that ran concurrently, so the longest child — not the sum — is the
  binding constraint.
* :func:`hotspots` — top-N paths by self wall, the table to read first
  when a run got slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.obs.span import SpanRecord
from repro.obs.trace_io import TraceData
from repro.textutil import format_table

__all__ = [
    "CriticalStep",
    "PathStats",
    "aggregate_spans",
    "critical_path",
    "hotspots",
    "render_analysis",
]


@dataclass
class PathStats:
    """Aggregated wall-time statistics for one span path."""

    path: str
    count: int = 0
    #: Sum of span durations at this path (parallel occurrences sum).
    total: float = 0.0
    #: Sum of (duration - children's durations), clamped at zero per span.
    self_total: float = 0.0
    max: float = 0.0

    def add(self, rec: SpanRecord) -> None:
        self.count += 1
        self.total += rec.duration
        self.max = max(self.max, rec.duration)
        child_wall = sum(c.duration for c in rec.children)
        self.self_total += max(0.0, rec.duration - child_wall)


def aggregate_spans(roots: Sequence[SpanRecord]) -> Dict[str, PathStats]:
    """Per-span-path statistics over a forest, keyed by path."""
    stats: Dict[str, PathStats] = {}

    def visit(rec: SpanRecord, prefix: str) -> None:
        path = f"{prefix}/{rec.name}" if prefix else rec.name
        entry = stats.get(path)
        if entry is None:
            entry = stats[path] = PathStats(path=path)
        entry.add(rec)
        for child in rec.children:
            visit(child, path)

    for root in roots:
        visit(root, "")
    return stats


def hotspots(
    roots: Sequence[SpanRecord], n: int = 10
) -> List[PathStats]:
    """The ``n`` span paths with the most *self* wall time."""
    ranked = sorted(
        aggregate_spans(roots).values(),
        key=lambda s: (-s.self_total, s.path),
    )
    return ranked[: max(0, n)]


@dataclass(frozen=True)
class CriticalStep:
    """One span on the critical path."""

    path: str
    name: str
    duration: float
    #: Fraction of the chain root's duration this span accounts for.
    fraction: float
    #: Siblings this span was chosen over (parallel shard tasks, etc.).
    n_siblings: int = 0


def critical_path(roots: Sequence[SpanRecord]) -> List[CriticalStep]:
    """Longest root-to-leaf chain, honoring shard parallelism.

    Starting from the longest root, descend at every level into the
    child with the largest duration.  Because sibling spans (the task
    spans grafted under ``plan.execute``) may have executed concurrently
    in worker processes, the max child — not the sum of children — is
    what bounds the parent's wall, so this chain is the sequence of
    spans a faster run must shorten.
    """
    if not roots:
        return []
    rec = max(roots, key=lambda r: (r.duration, r.name))
    total = rec.duration
    n_siblings = len(roots) - 1
    steps: List[CriticalStep] = []
    prefix = ""
    while True:
        path = f"{prefix}/{rec.name}" if prefix else rec.name
        steps.append(
            CriticalStep(
                path=path,
                name=rec.name,
                duration=rec.duration,
                fraction=(rec.duration / total) if total > 0 else 0.0,
                n_siblings=n_siblings,
            )
        )
        if not rec.children:
            return steps
        prefix = path
        n_siblings = len(rec.children) - 1
        rec = max(rec.children, key=lambda c: (c.duration, c.name))


# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_analysis(data: TraceData, top: int = 10) -> str:
    """``repro trace --analyze``: aggregation, hotspots, critical path."""
    stats = aggregate_spans(data.spans)
    lines = [
        f"trace analysis: {data.n_spans()} spans, "
        f"{len(stats)} distinct span paths"
    ]
    if not stats:
        return lines[0]

    by_total = sorted(stats.values(), key=lambda s: (-s.total, s.path))
    lines.append("")
    lines.append(f"span paths by total wall (top {top}):")
    lines += format_table(
        ("path", "count", "total", "self", "max"),
        [
            (
                s.path,
                str(s.count),
                _fmt_seconds(s.total),
                _fmt_seconds(s.self_total),
                _fmt_seconds(s.max),
            )
            for s in by_total[:top]
        ],
    )

    lines.append("")
    lines.append(f"hotspots by self wall (top {top}):")
    lines += format_table(
        ("path", "count", "self", "total"),
        [
            (
                s.path,
                str(s.count),
                _fmt_seconds(s.self_total),
                _fmt_seconds(s.total),
            )
            for s in hotspots(data.spans, n=top)
        ],
    )

    steps = critical_path(data.spans)
    lines.append("")
    lines.append("critical path (longest concurrent-aware chain):")
    lines += format_table(
        ("span", "wall", "of root", "over"),
        [
            (
                step.name,
                _fmt_seconds(step.duration),
                f"{100.0 * step.fraction:.0f}%",
                (
                    f"{step.n_siblings} sibling(s)"
                    if step.n_siblings
                    else "-"
                ),
            )
            for step in steps
        ],
    )
    return "\n".join(lines)
