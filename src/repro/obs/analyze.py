"""Trace analytics: per-span-path aggregation, hotspots, critical path.

A *span path* is the ``/``-joined chain of span names from a root down
to a span (``plan.execute/task:spmv[scale=0.025]/stage:search:random``).
Paths are pure functions of the instrumented code and the workload
labels — never of pids, timestamps, or completion order — so the same
run configuration always produces the same path set.  That stability is
what makes traces *comparable*: :func:`repro.obs.diff.diff_runs` lines
two runs up path by path, and CI gates on the per-path deltas.

Three read-side primitives over a :class:`~repro.obs.span.SpanRecord`
forest:

* :func:`aggregate_spans` — count / total wall / self wall / max per
  path.  Self wall is the span's duration minus its children's (clamped
  at zero: a parent whose children ran *in parallel* on shard workers
  legitimately sums its children past its own wall).
* :func:`critical_path` — the root-to-leaf chain that bounds the run's
  wall time.  At every level the walk descends into the child with the
  largest duration: sibling spans under ``plan.execute`` are shard tasks
  that ran concurrently, so the longest child — not the sum — is the
  binding constraint.
* :func:`hotspots` — top-N paths by self wall, the table to read first
  when a run got slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import summarize_histogram
from repro.obs.span import SpanRecord, walk_spans
from repro.obs.telemetry import ResourceSample
from repro.obs.trace_io import TraceData
from repro.textutil import format_table

__all__ = [
    "CriticalStep",
    "PathStats",
    "ResourceStats",
    "WorkerStats",
    "aggregate_spans",
    "analysis_to_dict",
    "critical_path",
    "hotspots",
    "render_analysis",
    "resource_stats",
    "worker_stats",
]


@dataclass
class PathStats:
    """Aggregated wall-time statistics for one span path."""

    path: str
    count: int = 0
    #: Sum of span durations at this path (parallel occurrences sum).
    total: float = 0.0
    #: Sum of (duration - children's durations), clamped at zero per span.
    self_total: float = 0.0
    max: float = 0.0

    def add(self, rec: SpanRecord) -> None:
        self.count += 1
        self.total += rec.duration
        self.max = max(self.max, rec.duration)
        child_wall = sum(c.duration for c in rec.children)
        self.self_total += max(0.0, rec.duration - child_wall)


def aggregate_spans(roots: Sequence[SpanRecord]) -> Dict[str, PathStats]:
    """Per-span-path statistics over a forest, keyed by path."""
    stats: Dict[str, PathStats] = {}

    def visit(rec: SpanRecord, prefix: str) -> None:
        path = f"{prefix}/{rec.name}" if prefix else rec.name
        entry = stats.get(path)
        if entry is None:
            entry = stats[path] = PathStats(path=path)
        entry.add(rec)
        for child in rec.children:
            visit(child, path)

    for root in roots:
        visit(root, "")
    return stats


def hotspots(
    roots: Sequence[SpanRecord], n: int = 10
) -> List[PathStats]:
    """The ``n`` span paths with the most *self* wall time."""
    ranked = sorted(
        aggregate_spans(roots).values(),
        key=lambda s: (-s.self_total, s.path),
    )
    return ranked[: max(0, n)]


@dataclass(frozen=True)
class CriticalStep:
    """One span on the critical path."""

    path: str
    name: str
    duration: float
    #: Fraction of the chain root's duration this span accounts for.
    fraction: float
    #: Siblings this span was chosen over (parallel shard tasks, etc.).
    n_siblings: int = 0


def critical_path(roots: Sequence[SpanRecord]) -> List[CriticalStep]:
    """Longest root-to-leaf chain, honoring shard parallelism.

    Starting from the longest root, descend at every level into the
    child with the largest duration.  Because sibling spans (the task
    spans grafted under ``plan.execute``) may have executed concurrently
    in worker processes, the max child — not the sum of children — is
    what bounds the parent's wall, so this chain is the sequence of
    spans a faster run must shorten.
    """
    if not roots:
        return []
    rec = max(roots, key=lambda r: (r.duration, r.name))
    total = rec.duration
    n_siblings = len(roots) - 1
    steps: List[CriticalStep] = []
    prefix = ""
    while True:
        path = f"{prefix}/{rec.name}" if prefix else rec.name
        steps.append(
            CriticalStep(
                path=path,
                name=rec.name,
                duration=rec.duration,
                fraction=(rec.duration / total) if total > 0 else 0.0,
                n_siblings=n_siblings,
            )
        )
        if not rec.children:
            return steps
        prefix = path
        n_siblings = len(rec.children) - 1
        rec = max(rec.children, key=lambda c: (c.duration, c.name))


# ----------------------------------------------------------------------
# resource attribution (telemetry samples)


@dataclass
class ResourceStats:
    """Resource usage attributed to one span path (and its subtree).

    CPU counters in a :class:`ResourceSample` are cumulative, so a
    path's CPU is the sum over each (pid, path-prefix) group of
    ``last.cpu_s - first.cpu_s``; wall is the matching timestamp delta,
    which makes ``cpu_pct`` a real utilization (can exceed 100 on a
    multi-threaded span).
    """

    path: str
    n_samples: int = 0
    rss_max_bytes: int = 0
    cpu_s: float = 0.0
    wall_s: float = 0.0

    @property
    def cpu_pct(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return 100.0 * self.cpu_s / self.wall_s


def _path_prefixes(path: str) -> List[str]:
    parts = path.split("/")
    return ["/".join(parts[: i + 1]) for i in range(len(parts))]


def resource_stats(
    samples: Sequence[ResourceSample],
) -> Dict[str, ResourceStats]:
    """Attribute telemetry samples to span paths, keyed by path.

    Every sample credits *all* prefixes of its span path (a sample taken
    inside ``a/b/c`` is evidence about ``a`` and ``a/b`` too), so parent
    rows aggregate their subtree the same way span wall totals do.
    """
    groups: Dict[Tuple[int, str], List[ResourceSample]] = {}
    for rec in samples:
        if not rec.path:
            continue
        for prefix in _path_prefixes(rec.path):
            groups.setdefault((rec.pid, prefix), []).append(rec)

    stats: Dict[str, ResourceStats] = {}
    for (_pid, prefix), series in groups.items():
        series.sort(key=lambda s: s.ts)
        entry = stats.get(prefix)
        if entry is None:
            entry = stats[prefix] = ResourceStats(path=prefix)
        entry.n_samples += len(series)
        entry.rss_max_bytes = max(
            entry.rss_max_bytes, max(s.rss_bytes for s in series)
        )
        entry.cpu_s += max(0.0, series[-1].cpu_s - series[0].cpu_s)
        entry.wall_s += max(0.0, series[-1].ts - series[0].ts)
    return stats


@dataclass
class WorkerStats:
    """One worker process's share of a sharded run."""

    pid: int
    n_tasks: int = 0
    busy_s: float = 0.0
    window_s: float = 0.0
    rss_max_bytes: int = 0
    cpu_s: float = 0.0
    #: (start, end) of each task span, on the rebased parent clock.
    intervals: Tuple[Tuple[float, float], ...] = ()

    @property
    def utilization(self) -> float:
        if self.window_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.window_s)


def _execute_window(
    roots: Sequence[SpanRecord],
) -> Optional[Tuple[float, float]]:
    """(start, end) of the outermost ``plan.execute`` span, if any."""
    best: Optional[SpanRecord] = None
    for rec in walk_spans(roots):
        if rec.name == "plan.execute" and (
            best is None or rec.duration > best.duration
        ):
            best = rec
    if best is None:
        return None
    return best.start, best.start + best.duration


def worker_stats(data: TraceData) -> List[WorkerStats]:
    """Per-pid utilization over the ``plan.execute`` window.

    Task spans absorbed from workers are rebased onto the parent clock,
    so their (start, end) intervals are directly comparable with the
    parent's ``plan.execute`` window; the gap between busy and window is
    pool idle time (startup skew, straggler tails).
    """
    own_pid = None
    if data.spans:
        own_pid = data.spans[0].pid
    window = _execute_window(data.spans)
    by_pid: Dict[int, List[SpanRecord]] = {}
    for rec in walk_spans(data.spans):
        if rec.name.startswith("task:") and rec.pid != own_pid:
            by_pid.setdefault(rec.pid, []).append(rec)

    rss_by_pid: Dict[int, int] = {}
    cpu_by_pid: Dict[int, float] = {}
    for pid in by_pid:
        series = sorted(
            (s for s in data.samples if s.pid == pid),
            key=lambda s: s.ts,
        )
        if series:
            rss_by_pid[pid] = max(s.rss_bytes for s in series)
            cpu_by_pid[pid] = max(
                0.0, series[-1].cpu_s - series[0].cpu_s
            )

    out: List[WorkerStats] = []
    for pid, recs in sorted(by_pid.items()):
        intervals = tuple(
            sorted((r.start, r.start + r.duration) for r in recs)
        )
        if window is not None:
            window_s = window[1] - window[0]
        else:
            window_s = max(e for _, e in intervals) - min(
                s for s, _ in intervals
            )
        out.append(
            WorkerStats(
                pid=pid,
                n_tasks=len(recs),
                busy_s=sum(r.duration for r in recs),
                window_s=window_s,
                rss_max_bytes=rss_by_pid.get(pid, 0),
                cpu_s=cpu_by_pid.get(pid, 0.0),
                intervals=intervals,
            )
        )
    return out


def _timeline(
    intervals: Sequence[Tuple[float, float]],
    window: Tuple[float, float],
    width: int = 40,
) -> str:
    """ASCII busy/idle bar: ``#`` where any task overlaps the bin."""
    start, end = window
    span = end - start
    if span <= 0 or width <= 0:
        return ""
    cells = []
    for i in range(width):
        lo = start + span * i / width
        hi = start + span * (i + 1) / width
        busy = any(s < hi and e > lo for s, e in intervals)
        cells.append("#" if busy else ".")
    return "".join(cells)


# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"


def render_analysis(data: TraceData, top: int = 10) -> str:
    """``repro trace --analyze``: aggregation, hotspots, critical path."""
    stats = aggregate_spans(data.spans)
    lines = [
        f"trace analysis: {data.n_spans()} spans, "
        f"{len(stats)} distinct span paths"
    ]
    if not stats:
        return lines[0]

    by_total = sorted(stats.values(), key=lambda s: (-s.total, s.path))
    lines.append("")
    lines.append(f"span paths by total wall (top {top}):")
    lines += format_table(
        ("path", "count", "total", "self", "max"),
        [
            (
                s.path,
                str(s.count),
                _fmt_seconds(s.total),
                _fmt_seconds(s.self_total),
                _fmt_seconds(s.max),
            )
            for s in by_total[:top]
        ],
    )

    lines.append("")
    lines.append(f"hotspots by self wall (top {top}):")
    lines += format_table(
        ("path", "count", "self", "total"),
        [
            (
                s.path,
                str(s.count),
                _fmt_seconds(s.self_total),
                _fmt_seconds(s.total),
            )
            for s in hotspots(data.spans, n=top)
        ],
    )

    steps = critical_path(data.spans)
    lines.append("")
    lines.append("critical path (longest concurrent-aware chain):")
    lines += format_table(
        ("span", "wall", "of root", "over"),
        [
            (
                step.name,
                _fmt_seconds(step.duration),
                f"{100.0 * step.fraction:.0f}%",
                (
                    f"{step.n_siblings} sibling(s)"
                    if step.n_siblings
                    else "-"
                ),
            )
            for step in steps
        ],
    )

    if data.samples:
        res = sorted(
            resource_stats(data.samples).values(),
            key=lambda r: (-r.rss_max_bytes, r.path),
        )
        lines.append("")
        lines.append(
            f"resources by span path ({len(data.samples)} samples, "
            f"top {top}):"
        )
        lines += format_table(
            ("path", "samples", "max rss", "cpu", "cpu%"),
            [
                (
                    r.path,
                    str(r.n_samples),
                    _fmt_bytes(r.rss_max_bytes),
                    _fmt_seconds(r.cpu_s),
                    f"{r.cpu_pct:.0f}%",
                )
                for r in res[:top]
            ],
        )

        workers = worker_stats(data)
        if workers:
            window = _execute_window(data.spans)
            lines.append("")
            lines.append("worker utilization (plan.execute window):")
            lines += format_table(
                ("pid", "tasks", "busy", "util", "max rss", "timeline"),
                [
                    (
                        str(w.pid),
                        str(w.n_tasks),
                        _fmt_seconds(w.busy_s),
                        f"{100.0 * w.utilization:.0f}%",
                        _fmt_bytes(w.rss_max_bytes),
                        (
                            _timeline(w.intervals, window)
                            if window is not None
                            else ""
                        ),
                    )
                    for w in workers
                ],
            )
    return "\n".join(lines)


def analysis_to_dict(data: TraceData, top: int = 0) -> Dict[str, object]:
    """``repro trace --analyze --json``: the tables as one JSON object.

    The same aggregates :func:`render_analysis` prints, machine-readable
    — this is the payload :meth:`repro.obs.history.HistoryStore.\
ingest_analysis` indexes, so key names here are a compatibility
    surface.  ``top=0`` (default) emits every path.
    """
    stats = sorted(
        aggregate_spans(data.spans).values(),
        key=lambda s: (-s.total, s.path),
    )
    if top > 0:
        stats = stats[:top]
    res = sorted(
        resource_stats(data.samples).values(),
        key=lambda r: (-r.rss_max_bytes, r.path),
    )
    return {
        "n_spans": data.n_spans(),
        "n_samples": len(data.samples),
        "meta": dict(data.meta),
        "paths": [
            {
                "path": s.path,
                "count": s.count,
                "total_s": s.total,
                "self_s": s.self_total,
                "max_s": s.max,
            }
            for s in stats
        ],
        "critical_path": [
            {
                "path": step.path,
                "name": step.name,
                "duration_s": step.duration,
                "fraction": step.fraction,
                "n_siblings": step.n_siblings,
            }
            for step in critical_path(data.spans)
        ],
        "counters": dict(data.metrics.counters),
        "gauges": dict(data.metrics.gauges),
        "histograms": {
            name: summarize_histogram(values)
            for name, values in data.metrics.histograms.items()
        },
        "resources": [
            {
                "path": r.path,
                "n_samples": r.n_samples,
                "rss_max_bytes": r.rss_max_bytes,
                "cpu_s": r.cpu_s,
                "wall_s": r.wall_s,
                "cpu_pct": r.cpu_pct,
            }
            for r in res
        ],
        "workers": [
            {
                "pid": w.pid,
                "n_tasks": w.n_tasks,
                "busy_s": w.busy_s,
                "window_s": w.window_s,
                "utilization": w.utilization,
                "rss_max_bytes": w.rss_max_bytes,
                "cpu_s": w.cpu_s,
            }
            for w in worker_stats(data)
        ],
    }
