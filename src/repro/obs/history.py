"""Cross-run history: per-metric time series + trend regression gate.

:class:`HistoryStore` is an append-only JSONL file of
:class:`HistoryPoint` rows — one scalar per (series, run) — fed from
two sources:

* archived run bundles (:meth:`ingest_archive` /
  :meth:`ingest_analysis`), whose per-span-path wall totals become
  ``span:<path>`` series, counters ``counter:<name>`` series, and
  histogram quantiles ``hist:<name>:<q>`` series;
* pytest-benchmark JSON artifacts (:meth:`ingest_bench`, via
  :func:`repro.obs.gate.bench_json_to_trace`), whose per-benchmark
  means become ``bench:<fullname>`` series.

Runs are deduplicated by ``run_id``, so re-ingesting the same archive
is idempotent and CI can cache the store across nightly jobs.

:func:`detect_regressions` is the trend gate pairwise
:func:`repro.obs.diff.diff_runs` cannot be: for each series it compares
the newest point against the rolling median of the preceding window and
flags values beyond ``median + max(k * 1.4826 * MAD, rel_floor,
abs_floor)`` — robust to outliers in the baseline window, and silent
(warn-only by construction) until ``min_points`` runs have accumulated.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.gate import bench_json_to_trace

__all__ = [
    "HistoryPoint",
    "HistoryStore",
    "Regression",
    "detect_regressions",
]

_HISTORY_FILE = "history.jsonl"

#: Scale factor making the median absolute deviation a consistent
#: estimator of the standard deviation under normality.
MAD_SCALE = 1.4826


@dataclass(frozen=True)
class HistoryPoint:
    """One scalar observation of one series in one run."""

    series: str
    value: float
    sha: str = ""
    ts: float = 0.0
    run_id: str = ""
    source: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "series": self.series,
            "value": self.value,
            "sha": self.sha,
            "ts": self.ts,
            "run_id": self.run_id,
            "source": self.source,
        }


class HistoryStore:
    """Append-only on-disk store of :class:`HistoryPoint` rows."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.root, _HISTORY_FILE)

    # -- raw read/write ------------------------------------------------
    def append(self, points: Iterable[HistoryPoint]) -> int:
        n = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for point in points:
                fh.write(json.dumps(point.to_json(), sort_keys=True) + "\n")
                n += 1
        return n

    def load(self) -> List[HistoryPoint]:
        """All points, file order (= ingestion order); torn lines skipped."""
        out: List[HistoryPoint] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn concurrent append
            if not isinstance(obj, dict):
                continue
            series = obj.get("series")
            value = obj.get("value")
            if not isinstance(series, str) or not isinstance(
                value, (int, float)
            ):
                continue
            out.append(
                HistoryPoint(
                    series=series,
                    value=float(value),
                    sha=str(obj.get("sha", "") or ""),
                    ts=float(obj.get("ts", 0.0) or 0.0),
                    run_id=str(obj.get("run_id", "") or ""),
                    source=str(obj.get("source", "") or ""),
                )
            )
        return out

    def run_ids(self) -> List[str]:
        seen: List[str] = []
        for point in self.load():
            if point.run_id and point.run_id not in seen:
                seen.append(point.run_id)
        return seen

    def series(self) -> Dict[str, List[HistoryPoint]]:
        """Points grouped by series name, each sorted by (ts, file order)."""
        groups: Dict[str, List[HistoryPoint]] = {}
        for point in self.load():
            groups.setdefault(point.series, []).append(point)
        for points in groups.values():
            points.sort(key=lambda p: p.ts)
        return groups

    # -- ingestion -----------------------------------------------------
    def ingest_analysis(
        self,
        payload: Dict[str, object],
        *,
        sha: str = "",
        ts: float = 0.0,
        run_id: str = "",
        source: str = "",
    ) -> int:
        """Index one ``analysis_to_dict`` payload; 0 if run_id is known."""
        if run_id and run_id in self.run_ids():
            return 0
        points: List[HistoryPoint] = []

        def point(series: str, value: float) -> None:
            points.append(
                HistoryPoint(
                    series=series,
                    value=float(value),
                    sha=sha,
                    ts=ts,
                    run_id=run_id,
                    source=source,
                )
            )

        paths = payload.get("paths")
        if isinstance(paths, list):
            for row in paths:
                if isinstance(row, dict) and isinstance(
                    row.get("total_s"), (int, float)
                ):
                    point(f"span:{row.get('path', '')}", row["total_s"])
        counters = payload.get("counters")
        if isinstance(counters, dict):
            for name, value in counters.items():
                if isinstance(value, (int, float)):
                    point(f"counter:{name}", value)
        histograms = payload.get("histograms")
        if isinstance(histograms, dict):
            for name, summary in histograms.items():
                if not isinstance(summary, dict):
                    continue
                for q in ("p50", "p95", "p99"):
                    if isinstance(summary.get(q), (int, float)):
                        point(f"hist:{name}:{q}", summary[q])
        return self.append(points)

    def ingest_archive(self, root: str) -> int:
        """Ingest every run bundle of an archive; returns points added."""
        from repro.obs.analyze import analysis_to_dict
        from repro.obs.archive import RunArchive

        added = 0
        for rec in RunArchive(root).runs():
            data = rec.load()
            meta = rec.meta
            ts = _parse_created(str(meta.get("created", "") or ""))
            added += self.ingest_analysis(
                analysis_to_dict(data),
                sha=str(meta.get("git_sha", "") or ""),
                ts=ts,
                run_id=rec.run_id,
                source=rec.path,
            )
        return added

    def ingest_bench(
        self,
        path: str,
        *,
        sha: str = "",
        pattern: Optional[str] = None,
    ) -> int:
        """Ingest one pytest-benchmark JSON artifact; points added."""
        data = bench_json_to_trace(path, pattern)
        run_id = os.path.basename(path)
        if run_id in self.run_ids():
            return 0
        try:
            ts = os.path.getmtime(path)
        except OSError:
            ts = 0.0
        points = [
            HistoryPoint(
                series=f"bench:{rec.name}",
                value=rec.duration,
                sha=sha,
                ts=ts,
                run_id=run_id,
                source=path,
            )
            for rec in data.spans
        ]
        return self.append(points)


def _parse_created(created: str) -> float:
    """ISO-8601 ``created`` stamp → epoch seconds (0.0 when unparsable)."""
    from datetime import datetime

    try:
        return datetime.fromisoformat(created).timestamp()
    except ValueError:
        return 0.0


# ----------------------------------------------------------------------
# trend gate


@dataclass(frozen=True)
class Regression:
    """One series whose newest point broke its rolling trend."""

    series: str
    value: float
    median: float
    threshold: float
    n_points: int
    sha: str = ""
    run_id: str = ""

    @property
    def ratio(self) -> float:
        if self.median <= 0:
            return float("inf")
        return self.value / self.median

    def describe(self) -> str:
        return (
            f"{self.series}: {self.value:.6g} vs rolling median "
            f"{self.median:.6g} ({self.ratio:.2f}x, threshold "
            f"{self.threshold:.6g}, n={self.n_points})"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def detect_regressions(
    store: HistoryStore,
    *,
    window: int = 8,
    mad_k: float = 4.0,
    min_rel: float = 0.10,
    min_abs: float = 1e-6,
    min_points: int = 5,
    prefixes: Tuple[str, ...] = ("span:", "bench:", "hist:"),
) -> List[Regression]:
    """Flag series whose newest point exceeds the rolling-trend band.

    For each series with at least ``min_points`` observations, the
    newest value is compared against the median of the preceding
    ``window`` points; it regresses when it exceeds ``median +
    max(mad_k * 1.4826 * MAD, min_rel * median, min_abs)``.  The MAD
    term adapts the band to each series' noise; the relative and
    absolute floors keep near-constant series (MAD ~ 0) from flagging
    on measurement jitter.  Series below ``min_points`` are skipped —
    the gate is warn-only until a real baseline accumulates.
    """
    out: List[Regression] = []
    for name, points in sorted(store.series().items()):
        if prefixes and not name.startswith(prefixes):
            continue
        if len(points) < min_points:
            continue
        newest = points[-1]
        baseline = [p.value for p in points[:-1]][-window:]
        med = _median(baseline)
        mad = _median([abs(v - med) for v in baseline])
        threshold = med + max(
            mad_k * MAD_SCALE * mad, min_rel * med, min_abs
        )
        if newest.value > threshold:
            out.append(
                Regression(
                    series=name,
                    value=newest.value,
                    median=med,
                    threshold=threshold,
                    n_points=len(points),
                    sha=newest.sha,
                    run_id=newest.run_id,
                )
            )
    return out
