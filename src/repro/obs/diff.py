"""Trace/metrics diffing between two runs (``repro trace --diff``).

:func:`diff_runs` lines two :class:`~repro.obs.trace_io.TraceData`
bundles up by span path and metric name and classifies every delta:

* **wall deltas** per span path — a shared path regresses when the
  current total exceeds the baseline by more than
  ``max_wall_delta`` (relative) *and* the baseline wall clears
  ``min_wall_s`` (noise floor: a 3x jump on a 40us span is scheduler
  jitter, not a regression);
* **counter deltas** — counters count deterministic events, so the
  default tolerance is *zero*: any drift in e.g.
  ``search.schedules_evaluated`` between two runs of the same workload
  is a correctness bug, not noise.  A relative ``counter_tolerance``
  loosens this for counters that legitimately vary (cache hits across
  reused stores);
* **histogram quantile deltas** — informational by default (quantiles
  carry wall clock); setting ``max_quantile_delta`` turns them into
  gate inputs, which is how the serving-latency benchmark (ROADMAP
  item 1) will pin ``advisor.recommend_s`` tails.

The same :class:`RunDiff` object backs the CLI gate, the CI smoke-run
identity check, and ``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.analyze import aggregate_spans
from repro.obs.trace_io import TraceData
from repro.textutil import format_table

__all__ = [
    "CounterDelta",
    "DiffThresholds",
    "PathDelta",
    "QuantileDelta",
    "RunDiff",
    "diff_runs",
    "render_diff",
]


@dataclass(frozen=True)
class DiffThresholds:
    """Relative gating thresholds for :func:`diff_runs`."""

    #: Max allowed relative wall growth per shared span path (0.25 = +25%).
    max_wall_delta: float = 0.25
    #: Ignore wall deltas on paths whose baseline total is below this.
    min_wall_s: float = 0.005
    #: Relative counter drift allowed; 0.0 means bit-exact counters.
    counter_tolerance: float = 0.0
    #: When set, histogram quantile growth beyond this gates too.
    max_quantile_delta: Optional[float] = None
    quantiles: Tuple[str, ...] = ("p50", "p95", "p99")


@dataclass(frozen=True)
class PathDelta:
    """Wall-time delta for one span path."""

    path: str
    baseline: Optional[float]  # None: path only exists in current
    current: Optional[float]  # None: path only exists in baseline
    regressed: bool = False

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline and self.current is not None:
            return self.current / self.baseline
        return None


@dataclass(frozen=True)
class CounterDelta:
    name: str
    baseline: Optional[float]
    current: Optional[float]
    regressed: bool = False

    @property
    def delta(self) -> float:
        return (self.current or 0) - (self.baseline or 0)


@dataclass(frozen=True)
class QuantileDelta:
    name: str
    quantile: str
    baseline: float
    current: float
    regressed: bool = False


@dataclass
class RunDiff:
    """Everything that differs between a baseline and a current run."""

    thresholds: DiffThresholds
    paths: List[PathDelta] = field(default_factory=list)
    counters: List[CounterDelta] = field(default_factory=list)
    quantiles: List[QuantileDelta] = field(default_factory=list)

    def regressions(self) -> List[str]:
        """Human-readable line per gating violation (empty = pass)."""
        out: List[str] = []
        for p in self.paths:
            if p.regressed:
                out.append(
                    f"span path {p.path!r}: wall {p.baseline:.4f}s -> "
                    f"{p.current:.4f}s ({p.ratio:.2f}x > "
                    f"{1 + self.thresholds.max_wall_delta:.2f}x allowed)"
                )
        for c in self.counters:
            if c.regressed:
                out.append(
                    f"counter {c.name!r}: {c.baseline!r} -> {c.current!r} "
                    f"(tolerance {self.thresholds.counter_tolerance:g})"
                )
        for q in self.quantiles:
            if q.regressed:
                out.append(
                    f"histogram {q.name!r} {q.quantile}: "
                    f"{q.baseline:.6f} -> {q.current:.6f} "
                    f"(> {self.thresholds.max_quantile_delta:+.0%} allowed)"
                )
        return out

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def n_shared_paths(self) -> int:
        return sum(
            1
            for p in self.paths
            if p.baseline is not None and p.current is not None
        )


def _counter_regressed(
    baseline: Optional[float],
    current: Optional[float],
    tolerance: float,
) -> bool:
    if baseline is None or current is None:
        # Appearing/disappearing counters are structural drift — always
        # flagged under zero tolerance, never under a loose one.
        return tolerance == 0.0
    if baseline == current:
        return False
    if tolerance <= 0.0:
        return True
    scale = max(abs(baseline), abs(current))
    return abs(current - baseline) > tolerance * scale


def diff_runs(
    baseline: TraceData,
    current: TraceData,
    thresholds: Optional[DiffThresholds] = None,
) -> RunDiff:
    """Compare two parsed runs path-by-path and metric-by-metric."""
    thr = thresholds or DiffThresholds()
    out = RunDiff(thresholds=thr)

    stats_a = aggregate_spans(baseline.spans)
    stats_b = aggregate_spans(current.spans)
    for path in sorted(stats_a.keys() | stats_b.keys()):
        a = stats_a.get(path)
        b = stats_b.get(path)
        regressed = False
        if a is not None and b is not None:
            regressed = (
                a.total >= thr.min_wall_s
                and b.total > a.total * (1.0 + thr.max_wall_delta)
            )
        out.paths.append(
            PathDelta(
                path=path,
                baseline=None if a is None else a.total,
                current=None if b is None else b.total,
                regressed=regressed,
            )
        )

    counters_a = dict(baseline.metrics.counters)
    counters_b = dict(current.metrics.counters)
    for name in sorted(counters_a.keys() | counters_b.keys()):
        a_val = counters_a.get(name)
        b_val = counters_b.get(name)
        if a_val == b_val:
            continue
        out.counters.append(
            CounterDelta(
                name=name,
                baseline=a_val,
                current=b_val,
                regressed=_counter_regressed(
                    a_val, b_val, thr.counter_tolerance
                ),
            )
        )

    hists_a = baseline.metrics.histograms
    hists_b = current.metrics.histograms
    for name in sorted(hists_a.keys() & hists_b.keys()):
        summary_a = baseline.metrics.histogram_summary(name)
        summary_b = current.metrics.histogram_summary(name)
        for q in thr.quantiles:
            if q not in summary_a or q not in summary_b:
                continue
            a_val, b_val = summary_a[q], summary_b[q]
            if a_val == b_val:
                continue
            regressed = bool(
                thr.max_quantile_delta is not None
                and a_val > 0
                and b_val > a_val * (1.0 + thr.max_quantile_delta)
            )
            out.quantiles.append(
                QuantileDelta(
                    name=name,
                    quantile=q,
                    baseline=a_val,
                    current=b_val,
                    regressed=regressed,
                )
            )

    return out


# ----------------------------------------------------------------------
def _fmt_wall(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4f}s"


def render_diff(diff: RunDiff, top: int = 15) -> str:
    """ASCII report: changed paths, counter drift, quantile drift."""
    lines: List[str] = []

    changed = [
        p
        for p in diff.paths
        if p.baseline is None
        or p.current is None
        or p.baseline != p.current
    ]
    shared = [p for p in changed if p.ratio is not None]
    shared.sort(key=lambda p: -abs(p.ratio - 1.0))
    structural = [p for p in changed if p.ratio is None]
    lines.append(
        f"run diff: {diff.n_shared_paths()} shared span paths, "
        f"{len(structural)} only in one run, "
        f"{len(diff.counters)} counter deltas"
    )
    if shared:
        lines.append("")
        lines.append(f"span-path wall deltas (top {top} by |ratio-1|):")
        lines += format_table(
            ("path", "baseline", "current", "ratio", "gate"),
            [
                (
                    p.path,
                    _fmt_wall(p.baseline),
                    _fmt_wall(p.current),
                    f"{p.ratio:.2f}x",
                    "REGRESSED" if p.regressed else "ok",
                )
                for p in shared[:top]
            ],
        )
    if structural:
        lines.append("")
        lines.append("span paths present in only one run:")
        lines += format_table(
            ("path", "baseline", "current"),
            [
                (p.path, _fmt_wall(p.baseline), _fmt_wall(p.current))
                for p in structural[:top]
            ],
        )
    if diff.counters:
        lines.append("")
        lines.append("counter deltas:")
        lines += format_table(
            ("name", "baseline", "current", "gate"),
            [
                (
                    c.name,
                    "-" if c.baseline is None else f"{c.baseline:g}",
                    "-" if c.current is None else f"{c.current:g}",
                    "REGRESSED" if c.regressed else "ok",
                )
                for c in diff.counters
            ],
        )
    else:
        lines.append("counters: identical")
    if diff.quantiles:
        lines.append("")
        lines.append("histogram quantile deltas:")
        lines += format_table(
            ("name", "q", "baseline", "current", "gate"),
            [
                (
                    q.name,
                    q.quantile,
                    f"{q.baseline:.6f}",
                    f"{q.current:.6f}",
                    "REGRESSED" if q.regressed else "ok",
                )
                for q in diff.quantiles
            ],
        )

    problems = diff.regressions()
    lines.append("")
    if problems:
        lines.append(f"RESULT: {len(problems)} regression(s)")
        lines += [f"  - {msg}" for msg in problems]
    else:
        lines.append("RESULT: ok")
    return "\n".join(lines)
