"""Structured logging facade over stdlib ``logging``.

All of ``repro`` logs through the single ``"repro"`` logger via
``obs.log``, which renders ``event key=value`` lines — library code
never prints to stdout.  Unconfigured, only WARNING and above reach
stderr (stdlib last-resort handler); the CLI calls
:func:`configure_logging` from its global ``-v``/``-q`` flags.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging", "log"]

_LOGGER = logging.getLogger("repro")
_HANDLER: Optional[logging.Handler] = None


def _format_fields(fields: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in fields.items())


class StructuredLogger:
    """``log.info("suite started", suite="smoke", n_tasks=7)`` style API."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _emit(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            msg = event if not fields else f"{event} {_format_fields(fields)}"
            self._logger.log(level, msg)

    def debug(self, event: str, **fields: object) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit(logging.ERROR, event, fields)


log = StructuredLogger(_LOGGER)


def configure_logging(
    verbose: int = 0, quiet: int = 0, stream: Optional[TextIO] = None
) -> None:
    """Install the stderr handler; -v => INFO, -vv => DEBUG, -q => ERROR."""
    global _HANDLER
    level = logging.WARNING + 10 * (quiet - verbose)
    level = max(logging.DEBUG, min(logging.ERROR, level))
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname).1s %(name)s: %(message)s")
    )
    if _HANDLER is not None:
        _LOGGER.removeHandler(_HANDLER)
    _LOGGER.addHandler(handler)
    _HANDLER = handler
    _LOGGER.setLevel(level)
