"""repro.obs — span tracing, metrics, and cross-process run telemetry.

The shared observability substrate for the whole search/serve stack:

* ``obs.span("search.exhaustive", batch_size=64)`` — nested spans,
  no-op (a shared null handle) unless a tracer is installed.
* ``obs.stage("label+train")`` — always-timed coarse task phases; the
  orchestrator's per-stage walls in ``SuiteReport``/
  ``TransferMatrixResult`` are views over these.
* ``obs.add / gauge / observe`` — always-on counters, gauges, and
  histograms (reservoir-bounded); snapshots merge across processes
  exactly like ``execute_plan`` merges task results, and their counter
  digests are bit-stable between serial and sharded runs.
* ``obs.capture(trace=True)`` / ``write_trace`` / ``read_trace`` /
  ``render_trace`` — JSONL export and the ``repro trace`` ASCII view.
* ``RunArchive`` / ``resolve_trace`` — persisted, self-describing run
  bundles (``--archive DIR``) behind an append-only index.
* ``aggregate_spans`` / ``critical_path`` / ``hotspots`` /
  ``diff_runs`` — the read side: per-span-path analytics and the
  threshold-gated run diff CI and ``repro trace --diff`` gate on.
* ``progress_scope`` + worker heartbeats — throttled stderr progress
  lines with ETA for long serial and sharded runs (``--progress``).
* ``TelemetrySampler`` / ``resource_stats`` / ``worker_stats`` —
  ``--telemetry`` resource sampling (CPU, RSS, GC) attributed to span
  paths and worker pids, riding heartbeats and ``TaskResult`` payloads.
* ``to_perfetto`` / ``export_perfetto`` — lower any archived trace to
  Chrome/Perfetto trace-event JSON (``--export-perfetto``).
* ``HistoryStore`` / ``detect_regressions`` — cross-run per-metric time
  series with a rolling median + MAD trend gate
  (``repro obs history ingest|show|gate``).
* ``obs.log`` — the structured stdlib logger all library code uses
  instead of printing.
"""

from repro.obs.analyze import (
    CriticalStep,
    PathStats,
    ResourceStats,
    WorkerStats,
    aggregate_spans,
    analysis_to_dict,
    critical_path,
    hotspots,
    render_analysis,
    resource_stats,
    worker_stats,
)
from repro.obs.archive import (
    ARCHIVE_VERSION,
    RunArchive,
    RunRecord,
    git_revision,
    resolve_trace,
)
from repro.obs.diff import (
    CounterDelta,
    DiffThresholds,
    PathDelta,
    QuantileDelta,
    RunDiff,
    diff_runs,
    render_diff,
)
from repro.obs.export import check_perfetto, export_perfetto, to_perfetto
from repro.obs.gate import bench_json_to_trace
from repro.obs.history import (
    HistoryPoint,
    HistoryStore,
    Regression,
    detect_regressions,
)
from repro.obs.logs import configure_logging, log
from repro.obs.metrics import (
    RESERVOIR_CAP,
    MetricsRegistry,
    MetricsSnapshot,
    summarize_histogram,
)
from repro.obs.progress import (
    PLAN_PROGRESS_COUNTERS,
    SEARCH_PROGRESS_COUNTERS,
    HeartbeatWriter,
    ProgressMeter,
    read_heartbeats,
    read_heartbeats_full,
)
from repro.obs.render import render_metrics, render_span_tree, render_trace
from repro.obs.runtime import (
    absorb,
    add,
    capture,
    gauge,
    metrics_snapshot,
    observe,
    progress_active,
    progress_enabled,
    progress_heartbeat_path,
    progress_poll,
    progress_poll_interval,
    progress_scope,
    reset,
    span,
    stage,
    task_scope,
    telemetry_active,
    telemetry_sampler,
    tracing_active,
    worker_capture,
)
from repro.obs.span import SpanRecord, Tracer, walk_spans
from repro.obs.telemetry import (
    ResourceSample,
    TelemetrySampler,
    malloc_tracking_enabled,
    read_resources,
    sample_now,
)
from repro.obs.trace_io import (
    SUPPORTED_VERSIONS,
    TraceData,
    TraceSchemaError,
    read_trace,
    validate_trace,
    write_trace,
)

__all__ = [
    "ARCHIVE_VERSION",
    "PLAN_PROGRESS_COUNTERS",
    "RESERVOIR_CAP",
    "SEARCH_PROGRESS_COUNTERS",
    "SUPPORTED_VERSIONS",
    "CounterDelta",
    "CriticalStep",
    "DiffThresholds",
    "HeartbeatWriter",
    "HistoryPoint",
    "HistoryStore",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PathDelta",
    "PathStats",
    "ProgressMeter",
    "QuantileDelta",
    "Regression",
    "ResourceSample",
    "ResourceStats",
    "RunArchive",
    "RunDiff",
    "RunRecord",
    "SpanRecord",
    "TelemetrySampler",
    "TraceData",
    "TraceSchemaError",
    "Tracer",
    "WorkerStats",
    "absorb",
    "add",
    "aggregate_spans",
    "analysis_to_dict",
    "bench_json_to_trace",
    "capture",
    "check_perfetto",
    "configure_logging",
    "critical_path",
    "detect_regressions",
    "diff_runs",
    "export_perfetto",
    "gauge",
    "git_revision",
    "hotspots",
    "log",
    "malloc_tracking_enabled",
    "metrics_snapshot",
    "observe",
    "progress_active",
    "progress_enabled",
    "progress_heartbeat_path",
    "progress_poll",
    "progress_poll_interval",
    "progress_scope",
    "read_heartbeats",
    "read_heartbeats_full",
    "read_resources",
    "read_trace",
    "render_analysis",
    "render_diff",
    "render_metrics",
    "render_span_tree",
    "render_trace",
    "reset",
    "resolve_trace",
    "resource_stats",
    "sample_now",
    "span",
    "stage",
    "summarize_histogram",
    "task_scope",
    "telemetry_active",
    "telemetry_sampler",
    "to_perfetto",
    "tracing_active",
    "validate_trace",
    "walk_spans",
    "worker_capture",
    "worker_stats",
    "write_trace",
]
