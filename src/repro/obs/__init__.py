"""repro.obs — span tracing, metrics, and cross-process run telemetry.

The shared observability substrate for the whole search/serve stack:

* ``obs.span("search.exhaustive", batch_size=64)`` — nested spans,
  no-op (a shared null handle) unless a tracer is installed.
* ``obs.stage("label+train")`` — always-timed coarse task phases; the
  orchestrator's per-stage walls in ``SuiteReport``/
  ``TransferMatrixResult`` are views over these.
* ``obs.add / gauge / observe`` — always-on counters, gauges, and
  histograms; snapshots merge across processes exactly like
  ``execute_plan`` merges task results, and their counter digests are
  bit-stable between serial and sharded runs.
* ``obs.capture(trace=True)`` / ``write_trace`` / ``read_trace`` /
  ``render_trace`` — JSONL export and the ``repro trace`` ASCII view.
* ``obs.log`` — the structured stdlib logger all library code uses
  instead of printing.
"""

from repro.obs.logs import configure_logging, log
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    summarize_histogram,
)
from repro.obs.render import render_metrics, render_span_tree, render_trace
from repro.obs.runtime import (
    absorb,
    add,
    capture,
    gauge,
    metrics_snapshot,
    observe,
    reset,
    span,
    stage,
    task_scope,
    tracing_active,
    worker_capture,
)
from repro.obs.span import SpanRecord, Tracer, walk_spans
from repro.obs.trace_io import (
    TraceData,
    TraceSchemaError,
    read_trace,
    validate_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "SpanRecord",
    "TraceData",
    "TraceSchemaError",
    "Tracer",
    "absorb",
    "add",
    "capture",
    "configure_logging",
    "gauge",
    "log",
    "metrics_snapshot",
    "observe",
    "read_trace",
    "render_metrics",
    "render_span_tree",
    "render_trace",
    "reset",
    "span",
    "stage",
    "summarize_histogram",
    "task_scope",
    "tracing_active",
    "validate_trace",
    "walk_spans",
    "worker_capture",
    "write_trace",
]
