"""ASCII rendering of traces and metrics (``repro trace``, ``--metrics``).

Follows the :class:`repro.sim.trace.Gantt` monospace idioms: fixed-width
label column, pipe-delimited bars, a scale line up top.  Worker span
starts are rebased onto the parent clock at absorb time, but the tree
still renders nesting + duration — each span's bar is scaled against
its root's duration — because nesting, not absolute position, is what
an ASCII tree can show; for a real timeline use ``--export-perfetto``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.obs.metrics import MetricsSnapshot
from repro.obs.span import SpanRecord
from repro.obs.trace_io import TraceData
from repro.textutil import format_table

__all__ = ["render_metrics", "render_span_tree", "render_trace"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_attrs(rec: SpanRecord) -> str:
    shown = {k: v for k, v in rec.attrs.items() if v not in ("", None)}
    if not shown:
        return ""
    body = " ".join(f"{k}={v}" for k, v in shown.items())
    return f"  [{body}]"


def _sibling_order(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    # Siblings arrive in absorb order (task completion is racy under a
    # shard pool); start time is what actually happened.  Pid then name
    # break ties stably when two spans started the same instant.
    return sorted(spans, key=lambda s: (s.start, s.pid, s.name))


def render_span_tree(
    roots: Sequence[SpanRecord], width: int = 24
) -> List[str]:
    """One line per span: tree prefix, name, duration, bar vs. root."""
    lines: List[str] = []

    entries: List[tuple] = []

    def visit(rec: SpanRecord, prefix: str, child_prefix: str, total: float):
        bar_n = 0
        if total > 0:
            bar_n = max(1, min(width, round(width * rec.duration / total)))
        bar = "#" * bar_n + " " * (width - bar_n)
        entries.append((prefix + rec.name, rec, bar))
        kids = _sibling_order(rec.children)
        for i, child in enumerate(kids):
            last = i == len(kids) - 1
            visit(
                child,
                child_prefix + ("`- " if last else "|- "),
                child_prefix + ("   " if last else "|  "),
                total,
            )

    for root in _sibling_order(roots):
        visit(root, "", "", root.duration)

    if not entries:
        return ["(no spans)"]
    label_w = max(len(label) for label, _, _ in entries)
    for label, rec, bar in entries:
        lines.append(
            f"{label.ljust(label_w)}  {_fmt_seconds(rec.duration):>8}"
            f"  |{bar}|{_fmt_attrs(rec)}"
        )
    return lines


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Counters, gauges, and histogram quantile tables."""
    sections: List[str] = []
    if snapshot.counters:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(snapshot.counters.items())
        ]
        sections.append("counters:")
        sections += format_table(("name", "value"), rows)
    if snapshot.gauges:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(snapshot.gauges.items())
        ]
        sections.append("gauges:")
        sections += format_table(("name", "value"), rows)
    if snapshot.histograms:
        rows = []
        for name in sorted(snapshot.histograms):
            s = snapshot.histogram_summary(name)
            rows.append(
                (
                    name,
                    str(s["count"]),
                    _fmt_seconds(s["p50"]),
                    _fmt_seconds(s["p95"]),
                    _fmt_seconds(s["p99"]),
                    _fmt_seconds(s["max"]),
                )
            )
        sections.append("histograms:")
        sections += format_table(
            ("name", "count", "p50", "p95", "p99", "max"), rows
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n".join(sections)


def render_trace(data: TraceData, width: int = 24) -> str:
    """Full ``repro trace`` output: header, span tree, metrics."""
    meta = " ".join(f"{k}={v}" for k, v in sorted(data.meta.items()))
    header = (
        f"trace v{data.version}"
        + (f"  {meta}" if meta else "")
        + f"  ({data.n_spans()} spans"
    )
    if data.samples:
        header += f", {len(data.samples)} resource samples"
    lines = [header + ")"]
    if data.spans:
        lines.append(
            "span tree (bars scaled to each root's wall):"
        )
        lines += render_span_tree(data.spans, width=width)
    else:
        lines.append("(no spans)")
    if not data.metrics.is_empty():
        lines.append("")
        lines.append(render_metrics(data.metrics))
    return "\n".join(lines)
