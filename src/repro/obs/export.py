"""Lower a parsed trace to Chrome/Perfetto trace-event JSON.

The trace-event format (the JSON flavour ``ui.perfetto.dev`` and
``chrome://tracing`` both open) is a flat ``traceEvents`` list:

* every span becomes one complete event (``ph: "X"``) with
  microsecond ``ts``/``dur`` on its process's track (``pid``; ``tid``
  mirrors ``pid`` because our workers are single-threaded processes);
* every :class:`~repro.obs.telemetry.ResourceSample` becomes counter
  events (``ph: "C"``) — an RSS track in MB and a cumulative-CPU track
  split into user/system — on the sampled process's row;
* final run counters from the metrics snapshot become one counter
  event each at the end of the trace;
* per-pid ``process_name`` metadata events (``ph: "M"``) label tracks.

Span starts and sample timestamps were already rebased onto one clock
at absorb time, so multi-pid archives render as aligned tracks with no
further work here.  :func:`check_perfetto` is the schema check CI runs
on exported files: every event must carry a valid ``ph``, numeric
``ts``, and integer ``pid``/``tid``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.trace_io import TraceData

__all__ = ["check_perfetto", "export_perfetto", "to_perfetto"]

_ALLOWED_PH = {"X", "C", "M"}


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def to_perfetto(data: TraceData) -> Dict[str, object]:
    """Build the trace-event JSON object for one parsed trace."""
    events: List[Dict[str, object]] = []
    pids = set()

    def visit(rec) -> None:
        pids.add(rec.pid)
        events.append(
            {
                "name": rec.name,
                "cat": "span",
                "ph": "X",
                "ts": rec.start * 1e6,
                "dur": rec.duration * 1e6,
                "pid": rec.pid,
                "tid": rec.pid,
                "args": {k: _jsonable(v) for k, v in rec.attrs.items()},
            }
        )
        for child in rec.children:
            visit(child)

    for root in data.spans:
        visit(root)

    for sample in data.samples:
        pids.add(sample.pid)
        ts = sample.ts * 1e6
        events.append(
            {
                "name": "rss_mb",
                "cat": "telemetry",
                "ph": "C",
                "ts": ts,
                "pid": sample.pid,
                "tid": sample.pid,
                "args": {"rss_mb": sample.rss_bytes / (1024 * 1024)},
            }
        )
        events.append(
            {
                "name": "cpu_s",
                "cat": "telemetry",
                "ph": "C",
                "ts": ts,
                "pid": sample.pid,
                "tid": sample.pid,
                "args": {
                    "user": sample.cpu_utime_s,
                    "system": sample.cpu_stime_s,
                },
            }
        )

    # Final run counters as one terminal counter event each, placed at
    # the end of the span timeline so they read as run totals.
    if data.metrics.counters:
        end_ts = max(
            [e["ts"] + e.get("dur", 0.0) for e in events], default=0.0
        )
        own_pid = data.spans[0].pid if data.spans else 0
        pids.add(own_pid)
        for name, value in sorted(data.metrics.counters.items()):
            events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": own_pid,
                    "tid": own_pid,
                    "args": {"value": value},
                }
            )

    command = str(data.meta.get("command", "") or "repro")
    meta_events: List[Dict[str, object]] = []
    main_pid = data.spans[0].pid if data.spans else None
    for pid in sorted(pids):
        label = command if pid == main_pid else f"worker-{pid}"
        meta_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            }
        )

    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
    }


def check_perfetto(obj: Dict[str, object]) -> List[str]:
    """Validate a trace-event object; returns a list of problems."""
    problems: List[str] = []
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _ALLOWED_PH:
            problems.append(f"{where}: bad ph {ph!r}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: non-numeric ts")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: non-integer {key}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: C event needs args")
            elif not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: C args must be numeric")
    return problems


def export_perfetto(
    data: TraceData, path: str, *, validate: bool = True
) -> int:
    """Write ``data`` as trace-event JSON; returns the event count."""
    obj = to_perfetto(data)
    if validate:
        problems = check_perfetto(obj)
        if problems:
            raise ValueError(
                "perfetto export failed validation: "
                + "; ".join(problems[:5])
            )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh)
    events = obj["traceEvents"]
    assert isinstance(events, list)
    return len(events)
