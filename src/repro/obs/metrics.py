"""Counters, gauges, and histograms with a process-safe merge protocol.

The registry is deliberately dumb and fast: counters are plain dict adds,
histograms feed a bounded reservoir.  Cross-process safety comes from the
same protocol ``execute_plan`` uses for task results — each worker runs
against its *own* fresh registry, ships an immutable
:class:`MetricsSnapshot` back on the task result, and the parent merges
snapshots in task order.  Nothing is shared, so nothing needs locks.

Histogram memory is bounded: each series keeps at most
:data:`RESERVOIR_CAP` samples via Algorithm-R reservoir sampling, seeded
per series name (``crc32``), so long-lived processes (a serving loop
observing ``advisor.recommend_s`` millions of times) stay flat while two
runs of the same deterministic observation sequence still produce the
same retained sample set and therefore the same quantiles.  Below the
cap the reservoir is a plain append-ordered list, which is the regime
every short-lived CLI run lives in — snapshots, diffs, and JSONL
round-trips are unchanged there.

``MetricsSnapshot.digest()`` hashes the *counters only*, sorted by name.
Counters count deterministic events (schedules enumerated, subtrees cut,
cache hits); gauges and histograms may carry wall-clock values and are
excluded.  Two runs of the same deterministic work — serial or sharded —
therefore produce the same digest, which is what the bit-stability tests
assert.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

__all__ = [
    "RESERVOIR_CAP",
    "MetricsRegistry",
    "MetricsSnapshot",
    "summarize_histogram",
]

#: Maximum raw samples retained per histogram series.
RESERVOIR_CAP = 4096


class _Reservoir:
    """Algorithm-R reservoir, seeded by series name for determinism."""

    __slots__ = ("cap", "seen", "values", "_rng")

    def __init__(self, name: str, cap: int = RESERVOIR_CAP) -> None:
        self.cap = cap
        self.seen = 0
        self.values: list = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        self.seen += 1
        if len(self.values) < self.cap:
            self.values.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.cap:
            self.values[slot] = value


def summarize_histogram(values: Sequence[float]) -> Dict[str, float]:
    """count/sum/min/max plus nearest-rank p50/p95/p99 of raw samples."""
    if not values:
        return {"count": 0, "sum": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: float) -> float:
        return ordered[min(n - 1, max(0, int(q * n + 0.5) - 1))]

    return {
        "count": n,
        "sum": float(sum(ordered)),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, picklable view of a registry at one point in time.

    Histograms keep their raw observations (not pre-binned summaries) so
    merged snapshots yield exact quantiles and the JSONL round-trip is
    lossless.
    """

    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def diff(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``before`` and this snapshot.

        Both snapshots must come from the same registry: counters
        subtract, histograms drop the prefix already present in
        ``before``.  Below :data:`RESERVOIR_CAP` a series is append-only
        and earlier observations are a strict prefix of later ones; once
        the reservoir starts replacing samples the prefix property no
        longer holds, so the full current series is kept instead of a
        (meaningless) positional tail.
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - before.counters.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, values in self.histograms.items():
            prior = tuple(before.histograms.get(name, ()))
            if tuple(values[: len(prior)]) == prior:
                tail = values[len(prior) :]
            else:
                tail = values
            if tail:
                histograms[name] = tail
        return MetricsSnapshot(
            counters=counters,
            gauges=dict(self.gauges),
            histograms=histograms,
        )

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two independent snapshots (e.g. from two workers)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, values in other.histograms.items():
            histograms[name] = histograms.get(name, ()) + tuple(values)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def digest(self) -> str:
        """SHA-256 over sorted counters; timing-carrying series excluded."""
        payload = json.dumps(
            sorted(self.counters.items()), separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def histogram_summary(self, name: str) -> Dict[str, float]:
        return summarize_histogram(self.histograms.get(name, ()))


class MetricsRegistry:
    """Mutable single-process registry behind the module-level obs API."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Reservoir] = {}

    # -- write path ----------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        reservoir = self._histograms.get(name)
        if reservoir is None:
            reservoir = self._histograms[name] = _Reservoir(name)
        reservoir.observe(value)

    # -- read / merge path ---------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                k: tuple(r.values) for k, r in self._histograms.items()
            },
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a shipped worker snapshot into this registry."""
        for name, value in snap.counters.items():
            self.add(name, value)
        for name, value in snap.gauges.items():
            self.gauge(name, value)
        for name, values in snap.histograms.items():
            for value in values:
                self.observe(name, value)
