"""Counters, gauges, and histograms with a process-safe merge protocol.

The registry is deliberately dumb and fast: counters are plain dict adds,
histograms append raw observations.  Cross-process safety comes from the
same protocol ``execute_plan`` uses for task results — each worker runs
against its *own* fresh registry, ships an immutable
:class:`MetricsSnapshot` back on the task result, and the parent merges
snapshots in task order.  Nothing is shared, so nothing needs locks.

``MetricsSnapshot.digest()`` hashes the *counters only*, sorted by name.
Counters count deterministic events (schedules enumerated, subtrees cut,
cache hits); gauges and histograms may carry wall-clock values and are
excluded.  Two runs of the same deterministic work — serial or sharded —
therefore produce the same digest, which is what the bit-stability tests
assert.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["MetricsRegistry", "MetricsSnapshot", "summarize_histogram"]


def summarize_histogram(values: Sequence[float]) -> Dict[str, float]:
    """count/sum/min/max plus nearest-rank p50/p95/p99 of raw samples."""
    if not values:
        return {"count": 0, "sum": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: float) -> float:
        return ordered[min(n - 1, max(0, int(q * n + 0.5) - 1))]

    return {
        "count": n,
        "sum": float(sum(ordered)),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, picklable view of a registry at one point in time.

    Histograms keep their raw observations (not pre-binned summaries) so
    merged snapshots yield exact quantiles and the JSONL round-trip is
    lossless.
    """

    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, Tuple[float, ...]] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def diff(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``before`` and this snapshot.

        Both snapshots must come from the same registry: counters
        subtract, histograms drop the prefix already present in
        ``before`` (registries are append-only, so earlier observations
        are a strict prefix of later ones).
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - before.counters.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, values in self.histograms.items():
            seen = len(before.histograms.get(name, ()))
            tail = values[seen:]
            if tail:
                histograms[name] = tail
        return MetricsSnapshot(
            counters=counters,
            gauges=dict(self.gauges),
            histograms=histograms,
        )

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two independent snapshots (e.g. from two workers)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, values in other.histograms.items():
            histograms[name] = histograms.get(name, ()) + tuple(values)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def digest(self) -> str:
        """SHA-256 over sorted counters; timing-carrying series excluded."""
        payload = json.dumps(
            sorted(self.counters.items()), separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def histogram_summary(self, name: str) -> Dict[str, float]:
        return summarize_histogram(self.histograms.get(name, ()))


class MetricsRegistry:
    """Mutable single-process registry behind the module-level obs API."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- write path ----------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self._histograms.setdefault(name, []).append(value)

    # -- read / merge path ---------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: tuple(v) for k, v in self._histograms.items()},
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a shipped worker snapshot into this registry."""
        for name, value in snap.counters.items():
            self.add(name, value)
        for name, value in snap.gauges.items():
            self.gauge(name, value)
        for name, values in snap.histograms.items():
            self._histograms.setdefault(name, []).extend(values)
