"""JSONL export/import for traces (spans + metrics + resource samples).

Schema (one JSON object per line):

* line 1 — header: ``{"type": "trace", "version": 2, "meta": {...}}``
* span lines — ``{"type": "span", "id": N, "parent": N|null, "name": ...,
  "start": ..., "dur": ..., "pid": ..., "attrs": {...}}``; ids are
  depth-first preorder, so every parent id precedes its children.
* sample lines (v2) — ``{"type": "sample", "ts": ..., "pid": ...,
  "path": ..., "rss": ..., "utime": ..., "stime": ..., "gc": ...,
  "malloc": N|null}``: one :class:`~repro.obs.telemetry.ResourceSample`
  recorded under ``--telemetry``.
* metric lines — ``{"type": "counter"|"gauge", "name": ..., "value": ...}``
  and ``{"type": "hist", "name": ..., "values": [...]}`` (raw samples,
  so quantiles survive the round-trip exactly).

``read_trace(write_trace(...))`` reconstructs the span forest, samples,
and snapshot bit-for-bit; :func:`validate_trace` is the strict reader CI
runs against ``repro suite --trace`` output.  The reader accepts every
version in :data:`SUPPORTED_VERSIONS` — v1 files (pre-telemetry) simply
have no sample lines — and always writes :data:`TRACE_VERSION`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsSnapshot
from repro.obs.span import SpanRecord, walk_spans
from repro.obs.telemetry import ResourceSample

__all__ = [
    "SUPPORTED_VERSIONS",
    "TraceData",
    "TraceSchemaError",
    "read_trace",
    "validate_trace",
    "write_trace",
]

TRACE_VERSION = 2

#: Versions :func:`read_trace` accepts (v1 = spans+metrics only).
SUPPORTED_VERSIONS = (1, 2)


class TraceSchemaError(ValueError):
    """A trace file does not conform to the JSONL trace schema."""


@dataclass
class TraceData:
    """A fully parsed trace file."""

    meta: Dict[str, object] = field(default_factory=dict)
    spans: Tuple[SpanRecord, ...] = ()
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    samples: Tuple[ResourceSample, ...] = ()
    version: int = TRACE_VERSION

    def walk(self) -> Iterator[SpanRecord]:
        return walk_spans(self.spans)

    def n_spans(self) -> int:
        return sum(1 for _ in self.walk())


def write_trace(
    path: str,
    spans: Sequence[SpanRecord],
    metrics: Optional[MetricsSnapshot] = None,
    meta: Optional[Dict[str, object]] = None,
    samples: Sequence[ResourceSample] = (),
) -> int:
    """Write a trace file; returns the number of span lines written."""
    n_spans = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {"type": "trace", "version": TRACE_VERSION, "meta": meta or {}}
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        next_id = 0

        def emit(rec: SpanRecord, parent: Optional[int]) -> None:
            nonlocal next_id, n_spans
            span_id = next_id
            next_id += 1
            n_spans += 1
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "id": span_id,
                        "parent": parent,
                        "name": rec.name,
                        "start": rec.start,
                        "dur": rec.duration,
                        "pid": rec.pid,
                        "attrs": rec.attrs,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            for child in rec.children:
                emit(child, span_id)

        for root in spans:
            emit(root, None)

        for rec in samples:
            fh.write(
                json.dumps(
                    {
                        "type": "sample",
                        "ts": rec.ts,
                        "pid": rec.pid,
                        "path": rec.path,
                        "rss": rec.rss_bytes,
                        "utime": rec.cpu_utime_s,
                        "stime": rec.cpu_stime_s,
                        "gc": rec.gc_collections,
                        "malloc": rec.malloc_peak_bytes,
                    },
                    sort_keys=True,
                )
                + "\n"
            )

        if metrics is not None:
            for name in sorted(metrics.counters):
                fh.write(
                    json.dumps(
                        {
                            "type": "counter",
                            "name": name,
                            "value": metrics.counters[name],
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            for name in sorted(metrics.gauges):
                fh.write(
                    json.dumps(
                        {
                            "type": "gauge",
                            "name": name,
                            "value": metrics.gauges[name],
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            for name in sorted(metrics.histograms):
                fh.write(
                    json.dumps(
                        {
                            "type": "hist",
                            "name": name,
                            "values": list(metrics.histograms[name]),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
    return n_spans


_SPAN_KEYS = {"type", "id", "parent", "name", "start", "dur", "pid", "attrs"}
_SAMPLE_KEYS = {"type", "ts", "pid", "path", "rss", "utime", "stime", "gc"}


def read_trace(path: str) -> TraceData:
    """Parse a trace file, raising :class:`TraceSchemaError` on any defect."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise TraceSchemaError(f"{path}: empty trace file")

    def load(i: int, line: str) -> Dict[str, object]:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            raise TraceSchemaError(f"{path}:{i + 1}: not JSON: {err}") from err
        if not isinstance(obj, dict) or "type" not in obj:
            raise TraceSchemaError(f"{path}:{i + 1}: expected an object with 'type'")
        return obj

    header = load(0, lines[0])
    if header["type"] != "trace":
        raise TraceSchemaError(f"{path}:1: first line must be the trace header")
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise TraceSchemaError(f"{path}:1: unsupported trace version {version!r}")
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise TraceSchemaError(f"{path}:1: meta must be an object")

    roots: list = []
    by_id: Dict[int, SpanRecord] = {}
    samples: list = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Tuple[float, ...]] = {}

    for i, line in enumerate(lines[1:], start=1):
        obj = load(i, line)
        kind = obj["type"]
        if kind == "span":
            missing = _SPAN_KEYS - obj.keys()
            if missing:
                raise TraceSchemaError(
                    f"{path}:{i + 1}: span missing keys {sorted(missing)}"
                )
            span_id = obj["id"]
            if not isinstance(span_id, int) or span_id in by_id:
                raise TraceSchemaError(
                    f"{path}:{i + 1}: bad or duplicate span id {span_id!r}"
                )
            if not isinstance(obj["attrs"], dict):
                raise TraceSchemaError(f"{path}:{i + 1}: span attrs must be an object")
            rec = SpanRecord(
                name=str(obj["name"]),
                start=float(obj["start"]),
                duration=float(obj["dur"]),
                pid=int(obj["pid"]),
                attrs=dict(obj["attrs"]),
            )
            parent = obj["parent"]
            if parent is None:
                roots.append(rec)
            elif isinstance(parent, int) and parent in by_id:
                by_id[parent].children.append(rec)
            else:
                raise TraceSchemaError(
                    f"{path}:{i + 1}: span {span_id} references "
                    f"unknown parent {parent!r}"
                )
            by_id[span_id] = rec
        elif kind == "sample":
            missing = _SAMPLE_KEYS - obj.keys()
            if missing:
                raise TraceSchemaError(
                    f"{path}:{i + 1}: sample missing keys {sorted(missing)}"
                )
            malloc = obj.get("malloc")
            try:
                samples.append(
                    ResourceSample(
                        ts=float(obj["ts"]),
                        pid=int(obj["pid"]),
                        path=str(obj["path"]),
                        rss_bytes=int(obj["rss"]),
                        cpu_utime_s=float(obj["utime"]),
                        cpu_stime_s=float(obj["stime"]),
                        gc_collections=int(obj["gc"]),
                        malloc_peak_bytes=(
                            None if malloc is None else int(malloc)
                        ),
                    )
                )
            except (TypeError, ValueError) as err:
                raise TraceSchemaError(
                    f"{path}:{i + 1}: bad sample line: {err}"
                ) from err
        elif kind in ("counter", "gauge"):
            name, value = obj.get("name"), obj.get("value")
            if not isinstance(name, str) or not isinstance(value, (int, float)):
                raise TraceSchemaError(f"{path}:{i + 1}: bad {kind} line")
            (counters if kind == "counter" else gauges)[name] = value
        elif kind == "hist":
            name, values = obj.get("name"), obj.get("values")
            if not isinstance(name, str) or not isinstance(values, list):
                raise TraceSchemaError(f"{path}:{i + 1}: bad hist line")
            histograms[name] = tuple(float(v) for v in values)
        else:
            raise TraceSchemaError(f"{path}:{i + 1}: unknown line type {kind!r}")

    return TraceData(
        meta=dict(meta),
        spans=tuple(roots),
        metrics=MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        ),
        samples=tuple(samples),
        version=int(version),
    )


def validate_trace(path: str) -> TraceData:
    """Strict parse; alias of :func:`read_trace` kept for intent at call sites."""
    return read_trace(path)
