"""Span records and the tracer that collects them.

A :class:`SpanRecord` is one timed region of work — a search, a plan
task, an evaluation batch — with a name, key/value attributes, and child
spans nested inside it.  Records are plain picklable dataclasses so a
worker process can run with its own :class:`Tracer`, ship its finished
span tree back through the task result, and have the parent graft it
into the run's single coherent trace (see
:func:`repro.obs.runtime.absorb`).

Timing uses ``time.perf_counter`` throughout: every tracer pins its own
monotonic epoch at construction, and span ``start`` offsets are relative
to that epoch.  Durations are therefore exact in every process; start
offsets are only comparable *within* one process, which is why the
ASCII renderer (:mod:`repro.obs.render`) lays spans out by nesting and
duration, not by absolute timeline position.

Spans must be strictly nested (closed in reverse open order) — the
``with obs.span(...)`` form guarantees this.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class SpanRecord:
    """One completed (or in-flight) span of a trace tree."""

    name: str
    #: Seconds since the owning tracer's epoch (process-local).
    start: float
    duration: float
    #: PID of the process that recorded the span.
    pid: int
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """Depth-first traversal: self, then children in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["SpanRecord"]:
        """First span named ``name`` in depth-first order, or None."""
        for rec in self.walk():
            if rec.name == name:
                return rec
        return None

    def n_spans(self) -> int:
        return sum(1 for _ in self.walk())


def walk_spans(roots: Sequence[SpanRecord]) -> Iterator[SpanRecord]:
    """Depth-first traversal over a forest of root spans."""
    for root in roots:
        yield from root.walk()


class Tracer:
    """Collects a tree of :class:`SpanRecord` for one process.

    The tracer keeps an explicit open-span stack: :meth:`open` nests the
    new record under the innermost open span (or into :attr:`roots`) and
    :meth:`close` pops it, stamping the duration.  :meth:`attach` grafts
    already-finished subtrees — span forests shipped back from worker
    processes — under the current open span, which is how a sharded plan
    execution merges into one trace.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []

    # ------------------------------------------------------------------
    def open(self, name: str, attrs: Dict[str, object]) -> SpanRecord:
        rec = SpanRecord(
            name=name,
            start=time.perf_counter() - self.epoch,
            duration=0.0,
            pid=os.getpid(),
            attrs=dict(attrs),
        )
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(rec)
        self._stack.append(rec)
        return rec

    def close(self, rec: SpanRecord) -> None:
        rec.duration = time.perf_counter() - self.epoch - rec.start
        # Strict nesting makes rec the top of the stack; pop defensively
        # past any span a caller failed to close (exception unwinding).
        while self._stack:
            if self._stack.pop() is rec:
                break

    def attach(self, spans: Sequence[SpanRecord]) -> None:
        """Graft finished subtrees under the current open span."""
        if not spans:
            return
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).extend(spans)

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[SpanRecord]:
        return self._stack[-1] if self._stack else None

    def n_spans(self) -> int:
        return sum(1 for _ in walk_spans(self.roots))

    def finished_roots(self) -> Tuple[SpanRecord, ...]:
        return tuple(self.roots)
