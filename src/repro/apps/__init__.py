"""Application programs whose design spaces the system explores.

* :mod:`repro.apps.spmv` — the paper's demonstration workload: distributed
  sparse-matrix vector multiplication on a band-diagonal matrix (Fig. 3).
* :mod:`repro.apps.halo` — 3-D halo exchange, the paper's stated
  work-in-progress extension (§VI).
"""

from repro.apps.spmv import SpmvCase, build_spmv_program, spmv_paper_case

__all__ = ["SpmvCase", "build_spmv_program", "spmv_paper_case"]
