"""Reference distributed SpMV written against the simulated MPI layer.

This is the "hand-written MPI program" counterpart of the schedule-driven
executor: each rank packs its halo entries, exchanges them with
Isend/Irecv/Waitall, and computes y = y_L + y_R.  Tests compare both its
numeric result (against scipy) and its timing behaviour (same order of
magnitude as good schedules) to the schedule executor.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.apps.spmv.dag import SpmvInstance
from repro.mpi.comm import SimComm, SimMpiWorld
from repro.platform.costs import CostModel
from repro.platform.machine import MachineConfig


def reference_spmv(
    instance: SpmvInstance, machine: MachineConfig
) -> Tuple[np.ndarray, float]:
    """Run the reference MPI SpMV; returns (assembled y, simulated time)."""
    partition = instance.partition
    program = instance.program
    cost = CostModel(machine)

    def rank_program(comm: SimComm):
        part = partition.parts[comm.rank]
        x_local = instance.x[part.row_lo : part.row_hi]

        # Pack (modeled as GPU-time compute).
        yield from comm.compute(
            cost.base_duration(program, program.graph.vertex("Pack"), comm.rank)
        )
        send_reqs = []
        for dst, idx in sorted(part.send_idx.items()):
            send_reqs.append(comm.isend(x_local[idx], dest=dst, tag=5))
        recv_reqs = {
            owner: comm.irecv(source=owner, tag=5, nbytes=8.0 * len(cols))
            for owner, cols in sorted(part.needed_from.items())
        }

        # Local multiply overlaps communication in the reference program.
        yield from comm.compute(
            cost.base_duration(program, program.graph.vertex("yL"), comm.rank)
        )
        y = part.a_local @ x_local

        # Complete receives, assemble x_remote, remote multiply.
        col_pos = {c: i for i, c in enumerate(part.remote_cols)}
        x_remote = np.zeros(len(part.remote_cols))
        for owner, req in recv_reqs.items():
            data = yield from comm.wait(req)
            for c, val in zip(part.needed_from[owner], data):
                x_remote[col_pos[c]] = val
        yield from comm.compute(
            cost.base_duration(program, program.graph.vertex("yR"), comm.rank)
        )
        y = y + part.a_remote @ x_remote
        yield from comm.waitall(send_reqs)
        return y

    world = SimMpiWorld(machine)
    results: List[np.ndarray] = world.run(rank_program)
    return np.concatenate(results), world.elapsed
