"""Row-wise partitioning and local/remote split of the SpMV (paper §III-A).

"A common distributed memory implementation evenly divides contiguous rows
of A, x, and y across MPI ranks.  A rank's y entries can then be computed
as the sum of a 'local' and 'remote' matrix-vector multiplication
y_L = A_L x_L and y_R = A_R x_R. ... A_R's x_R must wait for x_R to be
assembled from the remote x entries that correspond to non-zero columns in
A_R."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp


def row_ranges(n_rows: int, n_ranks: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced [lo, hi) row ranges per rank."""
    base = n_rows // n_ranks
    extra = n_rows % n_ranks
    ranges = []
    lo = 0
    for r in range(n_ranks):
        hi = lo + base + (1 if r < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass
class RankPart:
    """One rank's share of the distributed SpMV."""

    rank: int
    row_lo: int
    row_hi: int
    #: Local block: columns owned by this rank, over this rank's rows.
    a_local: sp.csr_matrix
    #: Remote block, column-compressed: only columns this rank must fetch.
    a_remote: sp.csr_matrix
    #: Global column index of each compressed remote column.
    remote_cols: np.ndarray
    #: remote_cols grouped by owning rank: owner -> global col indices.
    needed_from: Dict[int, np.ndarray]
    #: For each peer that needs our entries: peer -> local indices to pack.
    send_idx: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def nnz_local(self) -> int:
        return int(self.a_local.nnz)

    @property
    def nnz_remote(self) -> int:
        return int(self.a_remote.nnz)

    def send_bytes(self, dtype_size: int = 8) -> int:
        return dtype_size * sum(len(v) for v in self.send_idx.values())

    def recv_bytes(self, dtype_size: int = 8) -> int:
        return dtype_size * sum(len(v) for v in self.needed_from.values())


@dataclass
class SpmvPartition:
    """Complete partitioning of A across ranks."""

    n_rows: int
    n_ranks: int
    ranges: List[Tuple[int, int]]
    parts: List[RankPart]

    def owner_of(self, col: int) -> int:
        for r, (lo, hi) in enumerate(self.ranges):
            if lo <= col < hi:
                return r
        raise ValueError(f"column {col} out of range")

    def message_pairs(self) -> List[Tuple[int, int, int]]:
        """(src, dst, n_entries) for every required point-to-point message."""
        out = []
        for part in self.parts:
            for owner, cols in sorted(part.needed_from.items()):
                out.append((owner, part.rank, len(cols)))
        return out


def partition_spmv(a: sp.csr_matrix, n_ranks: int) -> SpmvPartition:
    """Partition ``a`` row-wise and split each block into local/remote."""
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    ranges = row_ranges(n, n_ranks)
    owners = np.empty(n, dtype=np.int64)
    for r, (lo, hi) in enumerate(ranges):
        owners[lo:hi] = r

    parts: List[RankPart] = []
    for rank, (lo, hi) in enumerate(ranges):
        block = a[lo:hi, :].tocsc()
        col_owner = owners
        local_mask = (col_owner == rank)
        # Local block, restricted to owned columns (kept at local width).
        a_local_full = block[:, np.flatnonzero(local_mask)].tocsr()
        # Remote block: compress to referenced columns only.
        remote_candidates = np.flatnonzero(~local_mask)
        sub = block[:, remote_candidates]
        col_nnz = np.diff(sub.indptr)
        used = np.flatnonzero(col_nnz > 0)
        remote_cols = remote_candidates[used]
        a_remote = sub[:, used].tocsr()
        needed_from: Dict[int, np.ndarray] = {}
        for owner in np.unique(col_owner[remote_cols]):
            needed_from[int(owner)] = remote_cols[
                col_owner[remote_cols] == owner
            ]
        parts.append(
            RankPart(
                rank=rank,
                row_lo=lo,
                row_hi=hi,
                a_local=a_local_full,
                a_remote=a_remote.tocsr(),
                remote_cols=remote_cols,
                needed_from=needed_from,
            )
        )

    # Fill send-side index lists: if rank r needs cols C from owner q, then
    # q packs its local entries C - q.row_lo for r.
    for part in parts:
        for owner, cols in part.needed_from.items():
            parts[owner].send_idx[part.rank] = cols - ranges[owner][0]
    return SpmvPartition(n_rows=n, n_ranks=n_ranks, ranges=ranges, parts=parts)
