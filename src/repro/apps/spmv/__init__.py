"""Distributed sparse-matrix vector multiplication (the paper's workload)."""

from repro.apps.spmv.dag import (
    SpmvCase,
    SpmvInstance,
    build_spmv_program,
    spmv_paper_case,
)
from repro.apps.spmv.matrix import band_matrix, matrix_stats
from repro.apps.spmv.partition import (
    RankPart,
    SpmvPartition,
    partition_spmv,
    row_ranges,
)

__all__ = [
    "RankPart",
    "SpmvCase",
    "SpmvInstance",
    "SpmvPartition",
    "band_matrix",
    "build_spmv_program",
    "matrix_stats",
    "partition_spmv",
    "row_ranges",
    "spmv_paper_case",
]
