"""Build the distributed SpMV program DAG (paper Fig. 3).

Operations (per rank, SPMD):

* ``Pack`` (GPU) — copy the local x entries each peer needs into per-peer
  send buffers.
* ``PostSends`` / ``PostRecvs`` (CPU) — post the non-blocking MPI
  operations for the halo of x entries.
* ``WaitSend`` / ``WaitRecv`` (CPU) — complete them; ``WaitRecv``
  additionally assembles the compressed remote vector x_R.
* ``yL`` (GPU) — local multiply y_L = A_L x_L.
* ``yR`` (GPU) — remote multiply y_R = A_R x_R, dependent on ``WaitRecv``.

Dependencies: start -> {Pack, PostRecvs, yL}; Pack -> PostSends ->
WaitSend -> end; PostRecvs -> WaitRecv -> yR -> end; yL -> end.  The
``Pack -> PostSends`` edge is GPU -> CPU, so scheduling inserts
``CER-after-Pack`` and ``CES-b4-PostSends`` exactly as in the paper.

By default both post operations additionally precede both wait operations
(``PostSends -> WaitRecv`` and ``PostRecvs -> WaitSend``).  Without these
edges the space contains SPMD orders in which *every* rank blocks in a
wait before posting the operations that would satisfy its peers — a real
deadlock on real hardware (our simulator's deadlock detector catches it;
see ``tests/sim/test_deadlock.py``).  The paper's Fig. 3c DAG is not fully
recoverable from the text (its vertex glyphs are mangled in the source),
and no reconstruction we tried reproduces the reported 2036
implementations exactly; the safe DAG yields 540 implementations on two
streams, the unsafe one 2016.  Pass ``safe_waits=False`` to get the
unsafe space (used by deadlock tests and documented in EXPERIMENTS.md).

Cost characterization: kernels are memory-bound; sparse kernels see a
fraction of peak bandwidth (random x gathers), captured by the
``sparse_efficiency`` derate.  The result, on the perlmutter-like platform,
is a local multiply comparable to the halo communication time — the same
balance the paper engineered via the matrix bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.apps.spmv.matrix import band_matrix
from repro.apps.spmv.partition import SpmvPartition, partition_spmv
from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, Work, cpu_op, gpu_op
from repro.sim.semantics import PayloadContext, RankContext

#: Bytes per CSR non-zero visited (value + column index + amortized row ptr).
_CSR_BYTES_PER_NNZ = 12.0
#: Bytes per row (y write + row pointer reads).
_CSR_BYTES_PER_ROW = 16.0
#: Bytes per packed element (read + write).
_PACK_BYTES_PER_ELEM = 16.0


@dataclass(frozen=True)
class SpmvCase:
    """Parameters of one SpMV experiment instance."""

    n_rows: int = 150_000
    nnz: int = 1_500_000
    bandwidth: float = 150_000 / 4
    n_ranks: int = 4
    seed: int = 0
    #: Fraction of peak memory bandwidth sparse kernels achieve.
    sparse_efficiency: float = 0.10
    #: Fraction of peak memory bandwidth the pack gather achieves.
    pack_efficiency: float = 0.30
    comm_group: str = "halo"

    def scaled(self, factor: float) -> "SpmvCase":
        """Proportionally smaller/larger instance (tests use ~1/40 scale)."""
        return SpmvCase(
            n_rows=max(self.n_ranks * 4, int(self.n_rows * factor)),
            nnz=max(self.n_ranks * 8, int(self.nnz * factor)),
            bandwidth=max(2.0, self.bandwidth * factor),
            n_ranks=self.n_ranks,
            seed=self.seed,
            sparse_efficiency=self.sparse_efficiency,
            pack_efficiency=self.pack_efficiency,
            comm_group=self.comm_group,
        )


def spmv_paper_case() -> SpmvCase:
    """The paper's exact instance: 150k rows, 1.5M nnz, bandwidth n/4."""
    return SpmvCase()


@dataclass
class SpmvInstance:
    """Everything needed to explore and verify one SpMV case."""

    case: SpmvCase
    matrix: sp.csr_matrix
    x: np.ndarray
    partition: SpmvPartition
    program: Program

    def payload_init(self, ctx: PayloadContext) -> None:
        """Initialize per-rank numeric buffers (x_local, matrix blocks)."""
        for part in self.partition.parts:
            rc = ctx[part.rank]
            rc.buffers["x_local"] = self.x[part.row_lo : part.row_hi].copy()
            rc.scratch["part"] = part
            ctx.hazards.mark_ready(part.rank, "x_local", 0.0)

    def reference_result(self) -> np.ndarray:
        """Ground truth y = A x via scipy."""
        return self.matrix @ self.x

    def gather_result(self, ctx: PayloadContext) -> np.ndarray:
        """Assemble the distributed result from per-rank buffers."""
        pieces = []
        for part in self.partition.parts:
            rc = ctx[part.rank]
            y = rc.buffers["yL"] + rc.buffers["yR"]
            pieces.append(y)
        return np.concatenate(pieces)


def _spmv_work(nnz: int, n_rows: int, efficiency: float) -> Work:
    """Effective memory traffic of a sparse multiply at derated bandwidth."""
    raw = _CSR_BYTES_PER_NNZ * nnz + _CSR_BYTES_PER_ROW * n_rows
    return Work(flops=2.0 * nnz, bytes_read=raw / max(efficiency, 1e-6))


def _make_payloads(partition: SpmvPartition) -> Dict[str, Callable]:
    """Numeric callbacks keyed by name; each receives a RankContext."""

    def pack(rc: RankContext) -> None:
        part = rc.scratch["part"]
        x_local = rc.buffers["x_local"]
        for dst, idx in part.send_idx.items():
            rc.buffers[f"send_to_{dst}"] = x_local[idx]

    def assemble_xr(rc: RankContext) -> None:
        part = rc.scratch["part"]
        xr = np.empty(len(part.remote_cols), dtype=float)
        col_pos = {c: i for i, c in enumerate(part.remote_cols)}
        for owner, cols in part.needed_from.items():
            data = rc.buffers.get(f"recv_from_{owner}")
            if data is None:
                data = np.zeros(len(cols))
            for c, val in zip(cols, data):
                xr[col_pos[c]] = val
        rc.buffers["x_remote"] = xr

    def y_local(rc: RankContext) -> None:
        part = rc.scratch["part"]
        rc.buffers["yL"] = part.a_local @ rc.buffers["x_local"]

    def y_remote(rc: RankContext) -> None:
        part = rc.scratch["part"]
        xr = rc.buffers.get("x_remote")
        if xr is None:
            xr = np.zeros(len(part.remote_cols))
        rc.buffers["yR"] = part.a_remote @ xr

    return {
        "pack": pack,
        "assemble_xr": assemble_xr,
        "yl": y_local,
        "yr": y_remote,
    }


def build_spmv_program(case: SpmvCase, *, safe_waits: bool = True) -> SpmvInstance:
    """Generate the matrix, partition it, and build the SpMV Program.

    ``safe_waits=True`` (default) adds the posts-before-waits edges that
    exclude SPMD-deadlocking schedules (see module docstring).
    """
    a = band_matrix(case.n_rows, case.nnz, case.bandwidth, seed=case.seed)
    rng = np.random.default_rng(case.seed + 1)
    x = rng.standard_normal(case.n_rows)
    partition = partition_spmv(a, case.n_ranks)
    group = case.comm_group

    pack = gpu_op("Pack", payload="pack", writes=("send_bufs",))
    post_sends = cpu_op(
        "PostSends", action=Action(ActionKind.POST_SENDS, group)
    )
    post_recvs = cpu_op(
        "PostRecvs", action=Action(ActionKind.POST_RECVS, group)
    )
    wait_send = cpu_op(
        "WaitSend", action=Action(ActionKind.WAIT_SENDS, group)
    )
    wait_recv = cpu_op(
        "WaitRecv",
        action=Action(ActionKind.WAIT_RECVS, group),
        payload="assemble_xr",
        writes=("x_remote",),
    )
    y_l = gpu_op("yL", payload="yl", reads=("x_local",), writes=("yL",))
    y_r = gpu_op("yR", payload="yr", reads=("x_remote",), writes=("yR",))

    edges = [
        ("Pack", "PostSends"),
        ("PostSends", "WaitSend"),
        ("PostRecvs", "WaitRecv"),
        ("WaitRecv", "yR"),
    ]
    if safe_waits:
        edges += [("PostSends", "WaitRecv"), ("PostRecvs", "WaitSend")]
    g = Graph.from_edges(
        vertices=[pack, post_sends, post_recvs, wait_send, wait_recv, y_l, y_r],
        edges=edges,
    ).with_start_end()

    messages = []
    for src, dst, count in partition.message_pairs():
        messages.append(
            Message(
                src=src,
                dst=dst,
                nbytes=8.0 * count,
                tag=0,
                src_buf=f"send_to_{dst}",
                dst_buf=f"recv_from_{src}",
                hazard_buf="send_bufs",
            )
        )
    plan = CommPlan(group=group, messages=tuple(messages))

    work_overrides: Dict[Tuple[str, int], Work] = {}
    for part in partition.parts:
        work_overrides[("yL", part.rank)] = _spmv_work(
            part.nnz_local, part.n_rows, case.sparse_efficiency
        )
        work_overrides[("yR", part.rank)] = _spmv_work(
            part.nnz_remote, part.n_rows, case.sparse_efficiency
        )
        pack_elems = sum(len(v) for v in part.send_idx.values())
        work_overrides[("Pack", part.rank)] = Work(
            bytes_read=_PACK_BYTES_PER_ELEM
            * pack_elems
            / max(case.pack_efficiency, 1e-6)
        )

    program = Program(
        graph=g,
        n_ranks=case.n_ranks,
        comm={group: plan},
        payloads=_make_payloads(partition),
        work_overrides=work_overrides,
        name=f"spmv(n={case.n_rows},nnz={case.nnz},bw={case.bandwidth:g})",
    )
    return SpmvInstance(
        case=case, matrix=a, x=x, partition=partition, program=program
    )
