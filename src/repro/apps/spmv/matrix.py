"""Band-diagonal sparse matrix generation (paper §III).

"The matrix A is a band-diagonal matrix with 150 000 rows/columns,
1 500 000 non-zeros and a bandwidth of 150000/4.  This bandwidth
approximately balances the size of local and remote matrix
multiplications.  The non-zeros are uniformly randomly distributed within
the band."
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def band_matrix(
    n_rows: int,
    nnz: int,
    bandwidth: float,
    seed: int = 0,
) -> sp.csr_matrix:
    """Generate a band-diagonal CSR matrix.

    ``bandwidth`` is the band *half*-width: non-zero (i, j) satisfy
    ``|i - j| <= bandwidth``.  This interpretation makes the paper's
    statement hold — with bandwidth n/4 on 4 ranks (block width n/4), the
    expected local and remote non-zero counts are approximately equal,
    "approximately balanc[ing] the size of local and remote matrix
    multiplications".  ``nnz // n_rows`` entries are drawn per row,
    uniformly within the row's band window.
    """
    if n_rows <= 0:
        raise ValueError("n_rows must be positive")
    per_row = max(1, int(round(nnz / n_rows)))
    half = max(1.0, float(bandwidth))
    rng = np.random.default_rng(seed)

    rows = np.repeat(np.arange(n_rows, dtype=np.int64), per_row)
    lo = np.maximum(0, (np.arange(n_rows) - half).astype(np.int64))
    hi = np.minimum(n_rows - 1, (np.arange(n_rows) + half).astype(np.int64))
    width = hi - lo + 1
    # Draw per-row columns uniformly in the row's band window.
    u = rng.random((n_rows, per_row))
    cols = (lo[:, None] + (u * width[:, None])).astype(np.int64)
    cols = np.minimum(cols, hi[:, None]).ravel()
    vals = rng.standard_normal(rows.shape[0])

    a = sp.coo_matrix(
        (vals, (rows, cols)), shape=(n_rows, n_rows)
    ).tocsr()
    a.sum_duplicates()
    return a


def matrix_stats(a: sp.csr_matrix) -> dict:
    """Summary statistics used in reports."""
    n = a.shape[0]
    coo = a.tocoo()
    band = np.abs(coo.row - coo.col)
    return {
        "n_rows": n,
        "nnz": int(a.nnz),
        "nnz_per_row": a.nnz / n,
        "max_band": int(band.max()) if a.nnz else 0,
    }
