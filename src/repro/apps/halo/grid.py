"""3-D structured-grid domain decomposition.

Ranks tile a global ``nx × ny × nz`` cell grid as a ``px × py × pz``
process grid; each rank owns a box of cells and exchanges one-cell-deep
face halos with up to six neighbours each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: The six face directions: (axis, sign).
FACES: Tuple[Tuple[int, int], ...] = (
    (0, -1),
    (0, +1),
    (1, -1),
    (1, +1),
    (2, -1),
    (2, +1),
)

FACE_NAMES: Dict[Tuple[int, int], str] = {
    (0, -1): "xlo",
    (0, +1): "xhi",
    (1, -1): "ylo",
    (1, +1): "yhi",
    (2, -1): "zlo",
    (2, +1): "zhi",
}


@dataclass(frozen=True)
class GridCase:
    """One halo-exchange problem instance."""

    nx: int = 256
    ny: int = 256
    nz: int = 256
    px: int = 2
    py: int = 2
    pz: int = 1
    #: Bytes per cell value (e.g. one double).
    bytes_per_cell: float = 8.0
    #: Flops per cell for the interior stencil update.
    flops_per_cell: float = 8.0

    @property
    def n_ranks(self) -> int:
        return self.px * self.py * self.pz

    def local_shape(self) -> Tuple[int, int, int]:
        if self.nx % self.px or self.ny % self.py or self.nz % self.pz:
            raise ValueError("process grid must divide the cell grid")
        return (self.nx // self.px, self.ny // self.py, self.nz // self.pz)


@dataclass(frozen=True)
class RankBox:
    """One rank's coordinates and neighbours."""

    rank: int
    coords: Tuple[int, int, int]
    #: face -> neighbour rank (absent if on the domain boundary).
    neighbours: Dict[Tuple[int, int], int]


@dataclass
class GridDecomposition:
    case: GridCase
    boxes: List[RankBox]

    def face_bytes(self, axis: int) -> float:
        lx, ly, lz = self.case.local_shape()
        areas = {0: ly * lz, 1: lx * lz, 2: lx * ly}
        return areas[axis] * self.case.bytes_per_cell

    def interior_cells(self) -> int:
        lx, ly, lz = self.case.local_shape()
        return lx * ly * lz


def decompose(case: GridCase) -> GridDecomposition:
    """Build the process-grid decomposition (non-periodic boundaries)."""

    def rank_of(cx: int, cy: int, cz: int) -> int:
        return (cz * case.py + cy) * case.px + cx

    boxes: List[RankBox] = []
    for cz in range(case.pz):
        for cy in range(case.py):
            for cx in range(case.px):
                coords = (cx, cy, cz)
                neigh: Dict[Tuple[int, int], int] = {}
                for axis, sign in FACES:
                    nc = list(coords)
                    nc[axis] += sign
                    dims = (case.px, case.py, case.pz)
                    if 0 <= nc[axis] < dims[axis]:
                        neigh[(axis, sign)] = rank_of(*nc)
                boxes.append(
                    RankBox(
                        rank=rank_of(cx, cy, cz),
                        coords=coords,
                        neighbours=neigh,
                    )
                )
    return GridDecomposition(case=case, boxes=boxes)
