"""3-D halo exchange — the paper's work-in-progress extension (§VI).

"The work is currently being extended to 3D halo-exchange communication
modeling fine-grained communication operations in each dimension."
"""

from repro.apps.halo.dag import build_halo_program
from repro.apps.halo.grid import GridCase, GridDecomposition, decompose

__all__ = ["GridCase", "GridDecomposition", "build_halo_program", "decompose"]
