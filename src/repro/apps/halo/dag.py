"""Program DAG for the 3-D halo exchange (paper §VI extension).

Fine-grained per-dimension operations: for each axis ``a`` in the active
set, the program has ``Pack_a`` (GPU) → ``PostSends_a`` →
``WaitSend_a`` and ``PostRecvs_a`` → ``WaitRecv_a`` → ``Unpack_a`` (GPU);
an ``Interior`` stencil kernel is independent of all communication, and a
``Boundary`` kernel depends on every unpack (a GPU→GPU dependency, which
exercises the scheduler's cross-stream ``cudaStreamWaitEvent``
insertion).  Posts precede waits for the same SPMD-deadlock reason as the
SpMV program.

The design space grows combinatorially with the number of axes — with all
three axes it is far beyond enumeration, which is exactly the regime the
paper's MCTS is for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.apps.halo.grid import GridCase, decompose
from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, Work, cpu_op, gpu_op

_AXIS_NAMES = ("x", "y", "z")


def build_halo_program(
    case: GridCase,
    axes: Sequence[int] = (0, 1, 2),
    *,
    pack_efficiency: float = 0.3,
    stencil_efficiency: float = 0.5,
) -> Program:
    """Build the halo-exchange Program for the chosen axes."""
    decomp = decompose(case)
    axes = tuple(sorted(set(axes)))
    if not axes:
        raise ValueError("need at least one active axis")
    for a in axes:
        if a not in (0, 1, 2):
            raise ValueError(f"invalid axis {a}")

    vertices = []
    edges: List[Tuple[str, str]] = []
    comm: Dict[str, CommPlan] = {}
    work: Dict[Tuple[str, int], Work] = {}

    interior = gpu_op(
        "Interior",
        work=Work(
            flops=case.flops_per_cell * decomp.interior_cells(),
            bytes_read=2
            * case.bytes_per_cell
            * decomp.interior_cells()
            / stencil_efficiency,
        ),
    )
    boundary_cells = sum(
        decomp.face_bytes(a) / case.bytes_per_cell for a in axes
    )
    boundary = gpu_op(
        "Boundary",
        work=Work(
            flops=case.flops_per_cell * boundary_cells,
            bytes_read=2 * case.bytes_per_cell * boundary_cells / stencil_efficiency,
        ),
    )
    vertices += [interior, boundary]

    for a in axes:
        ax = _AXIS_NAMES[a]
        group = f"halo_{ax}"
        face_bytes = decomp.face_bytes(a)
        pack = gpu_op(
            f"Pack_{ax}",
            work=Work(bytes_read=2 * 2 * face_bytes / pack_efficiency),
        )
        unpack = gpu_op(
            f"Unpack_{ax}",
            work=Work(bytes_read=2 * 2 * face_bytes / pack_efficiency),
        )
        ps = cpu_op(f"PostSends_{ax}", action=Action(ActionKind.POST_SENDS, group))
        pr = cpu_op(f"PostRecvs_{ax}", action=Action(ActionKind.POST_RECVS, group))
        ws = cpu_op(f"WaitSend_{ax}", action=Action(ActionKind.WAIT_SENDS, group))
        wr = cpu_op(f"WaitRecv_{ax}", action=Action(ActionKind.WAIT_RECVS, group))
        vertices += [pack, unpack, ps, pr, ws, wr]
        edges += [
            (pack.name, ps.name),
            (ps.name, ws.name),
            (pr.name, wr.name),
            (wr.name, unpack.name),
            # posts-before-waits (SPMD deadlock exclusion)
            (ps.name, wr.name),
            (pr.name, ws.name),
            # the boundary stencil needs every halo unpacked
            (unpack.name, boundary.name),
        ]
        messages = []
        for box in decomp.boxes:
            for (axis, sign), neighbour in sorted(box.neighbours.items()):
                if axis != a:
                    continue
                messages.append(
                    Message(
                        src=box.rank,
                        dst=neighbour,
                        nbytes=face_bytes,
                        tag=100 + 10 * axis + (1 if sign > 0 else 0),
                    )
                )
        comm[group] = CommPlan(group=group, messages=tuple(messages))

    graph = Graph.from_edges(vertices, edges).with_start_end()
    return Program(
        graph=graph,
        n_ranks=case.n_ranks,
        comm=comm,
        name=f"halo3d({case.nx}x{case.ny}x{case.nz} on "
        f"{case.px}x{case.py}x{case.pz}, axes={''.join(_AXIS_NAMES[a] for a in axes)})",
    )
