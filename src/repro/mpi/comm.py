"""mpi4py-flavoured communicator over the discrete-event engine.

Rank programs are generators; communication calls *yield* the values the
engine hands back, in the style::

    def program(comm):
        req = comm.isend(np.arange(4), dest=1, tag=7)
        data = yield from comm.recv(source=0, tag=7)
        yield from comm.wait(req)
        return data

Data is passed by value (deep-copied at send time for arrays): the wire has
no reference semantics, mirroring real MPI.  Transfer timing uses the same
α-β + NIC-serialization model as the schedule executor's network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Tuple

import numpy as np

from repro.dag.program import Message
from repro.errors import MpiError
from repro.platform.machine import MachineConfig
from repro.sim.engine import Environment, Event
from repro.sim.network import MpiRequest, Network


def _payload_size(value: Any) -> float:
    if isinstance(value, np.ndarray):
        return float(value.nbytes)
    try:
        return float(len(bytes(str(value), "utf-8")))
    except Exception:  # pragma: no cover - defensive
        return 64.0


def _copy(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


@dataclass
class Request:
    """Handle for a non-blocking operation."""

    inner: MpiRequest
    kind: str
    #: Set when a receive completes.
    data: Any = None

    @property
    def is_complete(self) -> bool:
        return self.inner.is_complete


class SimComm:
    """Per-rank communicator handle."""

    def __init__(self, world: "SimMpiWorld", rank: int) -> None:
        self.world = world
        self.rank = rank

    # -- introspection --------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.n_ranks

    def get_rank(self) -> int:
        return self.rank

    def get_size(self) -> int:
        return self.world.n_ranks

    @property
    def env(self) -> Environment:
        return self.world.env

    # -- point to point ---------------------------------------------------
    def isend(self, value: Any, dest: int, tag: int = 0) -> Request:
        self._check_peer(dest)
        size = _payload_size(value)
        msg = Message(src=self.rank, dst=dest, nbytes=size, tag=tag)
        self.world.stage(self.rank, dest, tag, _copy(value))
        req = self.world.network.post_send(msg)
        return Request(inner=req, kind="send")

    def irecv(self, source: int, tag: int = 0, nbytes: float = 0.0) -> Request:
        self._check_peer(source)
        msg = Message(src=source, dst=self.rank, nbytes=nbytes, tag=tag)
        req = self.world.network.post_recv(msg)
        request = Request(inner=req, kind="recv")
        self.world.register_recv(self.rank, source, tag, request)
        return request

    def wait(self, request: Request) -> Generator[Event, Any, Any]:
        if not request.is_complete:
            yield request.inner.done
        if request.kind == "recv":
            request.data = self.world.deliver(
                self.rank, request.inner.message.src, request.inner.message.tag
            )
        return request.data

    def waitall(self, requests: List[Request]) -> Generator[Event, Any, List[Any]]:
        out = []
        for r in requests:
            out.append((yield from self.wait(r)))
        return out

    def send(self, value: Any, dest: int, tag: int = 0):
        req = self.isend(value, dest, tag)
        yield from self.wait(req)

    def recv(self, source: int, tag: int = 0, nbytes: float = 0.0):
        req = self.irecv(source, tag, nbytes=nbytes)
        return (yield from self.wait(req))

    # -- collectives (implemented over point-to-point) --------------------
    def barrier(self):
        """Dissemination barrier."""
        n = self.size
        if n == 1:
            return
        step = 1
        round_no = 0
        while step < n:
            dst = (self.rank + step) % n
            src = (self.rank - step) % n
            tag = self.world.collective_tag("barrier", round_no)
            sreq = self.isend(np.zeros(1), dest=dst, tag=tag)
            yield from self.recv(source=src, tag=tag)
            yield from self.wait(sreq)
            step *= 2
            round_no += 1

    def bcast(self, value: Any, root: int = 0):
        """Binomial-tree broadcast; returns the value on every rank.

        In the virtual ranking (root = 0), rank v receives from
        ``v - lowbit(v)`` and then forwards to ``v + k`` for every
        ``k = lowbit(v)/2, lowbit(v)/4, ... , 1`` — the classic MST
        broadcast pattern in O(log n) rounds.
        """
        n = self.size
        if n == 1:
            return value
        vrank = (self.rank - root) % n
        tag = self.world.collective_tag("bcast", 0)
        # Highest power of two not exceeding n.
        top = 1
        while top * 2 <= n:
            top *= 2
        if vrank != 0:
            lowbit = vrank & -vrank
            src = ((vrank - lowbit) + root) % n
            value = yield from self.recv(source=src, tag=tag)
            k = lowbit // 2
        else:
            k = top
        while k >= 1:
            if vrank + k < n:
                dst = ((vrank + k) + root) % n
                yield from self.send(value, dest=dst, tag=tag)
            k //= 2
        return value

    def allreduce_sum(self, value: np.ndarray):
        """Ring allreduce (sum) for NumPy arrays / scalars."""
        n = self.size
        acc = np.asarray(value, dtype=float).copy()
        if n == 1:
            return acc
        tagbase = self.world.collective_tag("allreduce", 0)
        current = acc
        for step in range(n - 1):
            dst = (self.rank + 1) % n
            src = (self.rank - 1) % n
            tag = tagbase + step
            sreq = self.isend(current, dest=dst, tag=tag)
            incoming = yield from self.recv(source=src, tag=tag)
            yield from self.wait(sreq)
            acc = acc + incoming
            current = incoming
        return acc

    def gather(self, value: Any, root: int = 0):
        """Gather to root; returns list on root, None elsewhere."""
        tag = self.world.collective_tag("gather", 0)
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = value
            for src in range(self.size):
                if src == root:
                    continue
                out[src] = yield from self.recv(source=src, tag=tag + src)
            return out
        yield from self.send(value, dest=root, tag=tag + self.rank)
        return None

    # ------------------------------------------------------------------
    def compute(self, seconds: float):
        """Model local computation taking simulated time."""
        if seconds > 0:
            yield self.env.timeout(seconds)

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self.size):
            raise MpiError(f"peer rank {peer} out of range [0,{self.size})")
        if peer == self.rank:
            raise MpiError("self-messages are not modeled")


#: A rank program: generator taking its communicator.
RankProgram = Callable[[SimComm], Generator[Event, Any, Any]]


class SimMpiWorld:
    """All ranks + the shared network; runs SPMD generator programs."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.n_ranks = machine.n_ranks
        self.env = Environment()
        self.network = Network(
            self.env, machine.net, machine.noise, sample=0
        )
        self._staged: Dict[Tuple[int, int, int], List[Any]] = {}
        self._recv_reqs: Dict[Tuple[int, int, int], List[Request]] = {}
        self._collective_tags: Dict[str, int] = {}

    # -- data plane -------------------------------------------------------
    def stage(self, src: int, dst: int, tag: int, value: Any) -> None:
        self._staged.setdefault((src, dst, tag), []).append(value)

    def register_recv(self, rank: int, src: int, tag: int, req: Request) -> None:
        self._recv_reqs.setdefault((src, rank, tag), []).append(req)

    def deliver(self, rank: int, src: int, tag: int) -> Any:
        queue = self._staged.get((src, rank, tag))
        if not queue:
            raise MpiError(
                f"no staged message {src}->{rank} tag {tag}; receive "
                f"completed without data"
            )
        return queue.pop(0)

    def collective_tag(self, name: str, round_no: int) -> int:
        base = self._collective_tags.setdefault(name, 1_000_000 + 10_000 * len(self._collective_tags))
        return base + round_no

    # ------------------------------------------------------------------
    def run(self, program: RankProgram) -> List[Any]:
        """Run ``program`` on every rank; returns per-rank return values."""
        procs = []
        for rank in range(self.n_ranks):
            comm = SimComm(self, rank)
            procs.append(
                self.env.process(program(comm), name=f"mpi.rank{rank}")
            )
        self.env.run()
        return [p.done.value for p in procs]

    @property
    def elapsed(self) -> float:
        return self.env.now


def run_spmd(
    machine: MachineConfig, program: RankProgram
) -> Tuple[List[Any], float]:
    """Convenience: run an SPMD generator program, return (results, time)."""
    world = SimMpiWorld(machine)
    results = world.run(program)
    return results, world.elapsed
