"""Simulated MPI programming layer (mpi4py-style) on top of the DES.

The paper's system benchmarks real MPI programs; this package provides the
semantic substrate for writing such programs *against the simulator*: each
rank is a generator process, and :class:`SimComm` offers the familiar
``isend/irecv/send/recv/wait/barrier/bcast/allreduce`` surface with MPI
matching semantics (source/tag, non-overtaking).  It is used by the
reference SpMV implementation and by tests that cross-check the schedule
executor's communication behaviour against a hand-written MPI program.
"""

from repro.mpi.comm import Request, SimComm, SimMpiWorld, run_spmd

__all__ = ["Request", "SimComm", "SimMpiWorld", "run_spmd"]
