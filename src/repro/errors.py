"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structural problems in an operation graph."""


class CycleError(GraphError):
    """Raised when a graph that must be acyclic contains a cycle."""


class ScheduleError(ReproError):
    """Raised when a schedule is malformed or violates its program DAG."""


class SimulationError(ReproError):
    """Raised for errors during discrete-event simulation."""


class DeadlockError(SimulationError):
    """Raised when the simulation event queue drains with live processes.

    This typically indicates an unmatched MPI receive, a CUDA event that is
    waited on but never recorded, or a schedule whose synchronization
    structure is inconsistent.
    """


class HazardError(SimulationError):
    """Raised when the data-hazard tracker observes a read of a buffer that
    was never marked ready (i.e. a schedule allowed a consumer to run before
    its producer completed)."""


class MpiError(SimulationError):
    """Raised for misuse of the simulated MPI layer."""


class SearchError(ReproError):
    """Raised for errors in design-space search strategies."""


class TrainingError(ReproError):
    """Raised when decision-tree training cannot proceed."""


class LabelingError(ReproError):
    """Raised when performance-class labeling fails."""


class WorkloadError(ReproError):
    """Raised for unknown workload families, invalid workload parameters,
    or registration conflicts in the workload registry."""


class ArtifactError(ReproError):
    """Raised for malformed, stale, or version-incompatible persisted
    advisor artifacts (rules, trees, signature tables)."""
