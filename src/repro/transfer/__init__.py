"""repro.transfer — cross-program rule and model transfer.

The paper's §VI extension trains one tree across several inputs of the
*same* program; this subsystem takes the next step and moves learned
design knowledge across *different programs*:

* :mod:`repro.transfer.signature` — structural :class:`OpSignature`
  identities for operations (action kind, device, comm-group topology
  and arity, position in the dependence chain), replacing fragile
  name-stripping as the cross-workload identity, plus the
  :class:`SignatureMatcher` that threads them through
  :mod:`repro.rules.score`.
* :mod:`repro.transfer.scoring` — discrimination-aware transfer scores:
  a rule is judged by the *gap* between its satisfaction on the target's
  fast and slow schedule classes (plus coverage), so an always-true rule
  scores ~0 instead of transferring perfectly.
* :mod:`repro.transfer.union` — union-feature training: several
  workloads' labeled schedules projected into one signature-canonical
  feature space and a single tree trained on the union, evaluated on a
  held-out workload.
* :mod:`repro.transfer.matrix` — the leave-one-workload-out transfer
  matrix experiment (source × target discrimination grid, per-target
  vacuous-rule controls, and the union-tree accuracy row).
"""

from repro.transfer.matrix import (
    DO_NOT_TRANSFER_THRESHOLD,
    TransferCell,
    TransferMatrixResult,
    UnionRow,
    run_transfer_matrix,
    transfer_matrix_from,
)
from repro.transfer.scoring import (
    DiscriminationScore,
    GroupedClasses,
    discrimination_summary,
    group_classes,
    score_grouped,
    score_transfer,
)
from repro.transfer.signature import (
    OpSignature,
    SignatureMatcher,
    program_signatures,
    signature_fingerprint,
)
from repro.transfer.union import UnionTrainingResult, train_union

__all__ = [
    "DO_NOT_TRANSFER_THRESHOLD",
    "DiscriminationScore",
    "GroupedClasses",
    "OpSignature",
    "SignatureMatcher",
    "TransferCell",
    "TransferMatrixResult",
    "UnionRow",
    "UnionTrainingResult",
    "discrimination_summary",
    "group_classes",
    "program_signatures",
    "run_transfer_matrix",
    "score_grouped",
    "score_transfer",
    "signature_fingerprint",
    "train_union",
    "transfer_matrix_from",
]
