"""The leave-one-workload-out transfer-matrix experiment.

For a set of workloads this runs the full design-rule pipeline on each
(via :mod:`repro.workloads.generalization`), then measures how knowledge
moves between every ordered pair:

* **discrimination grid** — every source workload's fastest-class rules
  scored on every target's fast/slow schedule classes through structural
  :class:`~repro.transfer.signature.SignatureMatcher` matching
  (:mod:`repro.transfer.scoring`);
* **vacuous controls** — per target, an always-true rule constructed
  from the target's own dependence structure is injected and scored; its
  discrimination is 0 by construction, demonstrating that the metric
  (unlike raw satisfaction) cannot be gamed by vacuity;
* **union row** — per target, one tree trained on the union of every
  *other* workload's schedules in the signature-canonical feature space
  (:mod:`repro.transfer.union`), evaluated on the held-out target.

Everything is deterministic given the specs, machine, and measurement
configuration; rows are sorted, so JSON and ASCII output are stable
across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.vertex import OpKind
from repro.errors import TrainingError
from repro.ml.features import OrderFeature
from repro.platform.machine import MachineConfig
from repro.rules.ruleset import Rule
from repro.schedule.schedule import Schedule
from repro.textutil import format_table
from repro.transfer.scoring import (
    DiscriminationScore,
    GroupedClasses,
    discrimination_summary,
    group_classes,
    score_grouped,
)
from repro.transfer.signature import (
    OpSignature,
    SignatureMatcher,
    identity_matcher,
    program_signatures,
)
from repro.transfer.union import (
    UnionTrainingResult,
    UnionWorkload,
    binary_labels,
    train_union,
)
from repro.workloads.generalization import WorkloadRules, run_rules_plan
from repro.workloads.spec import WorkloadSpec

#: Minimum number of workloads for leave-one-out union training (the
#: training side itself needs at least two).
MIN_UNION_WORKLOADS = 3

#: Mean discrimination at or below which a (source → target) cell earns
#: a "do-not-transfer" advisory: the target's *fast* schedules
#: systematically violate the source's guidance, so transferring those
#: rules is actively misleading — worse than not transferring at all.
DO_NOT_TRANSFER_THRESHOLD = -0.10


@dataclass(frozen=True)
class TransferCell:
    """Discrimination summary of one (source → target) pair."""

    source: str
    target: str
    n_rules: int
    n_transferable: int
    mean_discrimination: float
    mean_coverage: float
    #: The best-separating transferred rule (empty when none transfer).
    best_rule: str
    best_discrimination: float

    @property
    def do_not_transfer(self) -> bool:
        """Advisory: rules transferred, and on average they *anti*-predict
        the target's fast class (mean discrimination at or below
        :data:`DO_NOT_TRANSFER_THRESHOLD`)."""
        return (
            self.n_transferable > 0
            and self.mean_discrimination <= DO_NOT_TRANSFER_THRESHOLD
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "target": self.target,
            "n_rules": self.n_rules,
            "n_transferable": self.n_transferable,
            "mean_discrimination": self.mean_discrimination,
            "mean_coverage": self.mean_coverage,
            "best_rule": self.best_rule,
            "best_discrimination": self.best_discrimination,
            "do_not_transfer": self.do_not_transfer,
        }


@dataclass(frozen=True)
class ControlRow:
    """Per-target injected always-true rule and its (zero) discrimination."""

    target: str
    rule: str
    fast_satisfaction: float
    slow_satisfaction: float
    discrimination: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "rule": self.rule,
            "fast_satisfaction": self.fast_satisfaction,
            "slow_satisfaction": self.slow_satisfaction,
            "discrimination": self.discrimination,
        }


@dataclass(frozen=True)
class UnionRow:
    """Held-out-workload evaluation of the union-trained tree."""

    target: str
    trained_on: Tuple[str, ...]
    n_features: int
    n_leaves: int
    train_accuracy: float
    holdout_accuracy: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "trained_on": list(self.trained_on),
            "n_features": self.n_features,
            "n_leaves": self.n_leaves,
            "train_accuracy": self.train_accuracy,
            "holdout_accuracy": self.holdout_accuracy,
        }


@dataclass
class TransferMatrixResult:
    """Everything the transfer-matrix experiment produced."""

    workloads: List[str]
    cells: Dict[Tuple[str, str], TransferCell]
    controls: List[ControlRow]
    union_rows: List[UnionRow]
    #: Populated when the union side was skipped (too few workloads).
    union_note: str = ""
    #: Per-target detailed scores, for drill-down (not serialized).
    scores: Dict[Tuple[str, str], List[DiscriminationScore]] = field(
        default_factory=dict, repr=False
    )
    #: Execution-plan timing (shard count, per-task wall/stages); empty
    #: when the matrix was built from precomputed pipeline outputs.
    timing: Dict[str, object] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """JSON-ready discrimination rows, sorted (source, target)."""
        return [
            self.cells[key].to_dict() for key in sorted(self.cells)
        ]

    def advisories(self) -> List[TransferCell]:
        """Strongly negative cells: do *not* move rules along these edges."""
        return [
            self.cells[key]
            for key in sorted(self.cells)
            if self.cells[key].do_not_transfer
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "workloads": self.workloads,
            "matrix": self.rows(),
            "controls": [c.to_dict() for c in self.controls],
            "union": [u.to_dict() for u in self.union_rows],
            "union_note": self.union_note,
            "advisories": [
                {"source": c.source, "target": c.target,
                 "mean_discrimination": c.mean_discrimination}
                for c in self.advisories()
            ],
            "timing": self.timing,
        }

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Fixed-width ASCII rendering (the CLI's stdout form)."""
        lines = [
            f"Cross-program transfer matrix over {len(self.workloads)} "
            f"workloads (signature-matched, discrimination-scored):"
        ]
        rows = [
            (
                c["source"],
                c["target"],
                f"{c['n_transferable']}/{c['n_rules']}",
                f"{float(c['mean_discrimination']):+.2f}",
                f"{100.0 * float(c['mean_coverage']):.0f}%",
                f"{float(c['best_discrimination']):+.2f}",
                "avoid" if c["do_not_transfer"] else "",
            )
            for c in self.rows()
        ]
        lines += format_table(
            ("rules from", "scored on", "transfer", "disc", "cover", "best",
             "advice"),
            rows,
        )
        lines.append("")
        advisories = self.advisories()
        if advisories:
            lines.append(
                "Do-not-transfer advisories (mean discrimination <= "
                f"{DO_NOT_TRANSFER_THRESHOLD:+.2f}: the target's fast "
                "schedules violate these sources' rules):"
            )
            for c in advisories:
                lines.append(
                    f"  {c.source} -> {c.target}: "
                    f"{c.mean_discrimination:+.2f} over "
                    f"{c.n_transferable} transferred rules"
                )
            lines.append("")
        lines.append(
            "Injected always-true controls (discrimination must be 0):"
        )
        lines += format_table(
            ("target", "control rule", "fast", "slow", "disc"),
            [
                (
                    c.target,
                    c.rule,
                    f"{100.0 * c.fast_satisfaction:.0f}%",
                    f"{100.0 * c.slow_satisfaction:.0f}%",
                    f"{c.discrimination:+.2f}",
                )
                for c in self.controls
            ],
        )
        lines.append("")
        if self.union_rows:
            lines.append(
                "Union-trained tree, leave-one-workload-out accuracy:"
            )
            lines += format_table(
                ("held-out target", "train sources", "feat", "leaves",
                 "train acc", "held-out acc"),
                [
                    (
                        u.target,
                        str(len(u.trained_on)),
                        str(u.n_features),
                        str(u.n_leaves),
                        f"{100.0 * u.train_accuracy:.0f}%",
                        f"{100.0 * u.holdout_accuracy:.0f}%",
                    )
                    for u in self.union_rows
                ],
            )
        if self.union_note:
            lines.append(self.union_note)
        return "\n".join(lines)


# ----------------------------------------------------------------------
def vacuous_control_rule(
    wl: WorkloadRules, signatures: Dict[str, OpSignature]
) -> Optional[Rule]:
    """An always-true ordering rule for ``wl``, built from its own DAG.

    Every schedule is a topological order of the program DAG, so for any
    dependence edge ``u -> v`` the launch sequence puts ``u`` before
    ``v``.  Signature evaluation quantifies universally over the
    endpoints' signature *groups*, so the edge qualifies when every
    member of ``u``'s group is a DAG ancestor of every member of ``v``'s
    group — then the rule is satisfied by *every* schedule, fast and
    slow alike, and must score zero discrimination.  Returns ``None``
    when the program has no such edge.
    """
    graph = wl.program.graph
    groups: Dict[str, List[str]] = {}
    for v in wl.program.schedulable_vertices():
        sig = signatures.get(v.name)
        if sig is not None:
            groups.setdefault(sig.key, []).append(v.name)
    closure = graph.transitive_closure()
    for u, v in graph.edges():
        if u.kind in (OpKind.START, OpKind.END):
            continue
        if v.kind in (OpKind.START, OpKind.END):
            continue
        su, sv = signatures.get(u.name), signatures.get(v.name)
        if su is None or sv is None or su.key == sv.key:
            continue
        if all(
            b in closure[a]
            for a in groups[su.key]
            for b in groups[sv.key]
        ):
            return Rule(OrderFeature(u.name, v.name), True)
    return None


def _control_row(
    wl: WorkloadRules,
    signatures: Dict[str, OpSignature],
    grouped: GroupedClasses,
) -> Optional[ControlRow]:
    rule = vacuous_control_rule(wl, signatures)
    if rule is None:
        return None
    matcher = identity_matcher(signatures)
    [score] = score_grouped([rule], grouped, matcher=matcher)
    return ControlRow(
        target=wl.spec.label,
        rule=rule.text,
        fast_satisfaction=score.fast_satisfaction,
        slow_satisfaction=score.slow_satisfaction,
        discrimination=score.discrimination,
    )


def _union_workload(
    wl: WorkloadRules, signatures: Dict[str, OpSignature]
) -> UnionWorkload:
    schedules: List[Schedule] = list(wl.result.search.schedules())
    return UnionWorkload(
        label=wl.spec.label,
        schedules=schedules,
        labels=binary_labels(wl.result.labeling.labels),
        signatures=signatures,
    )


# ----------------------------------------------------------------------
def transfer_matrix_from(
    per_workload: Sequence[WorkloadRules],
) -> TransferMatrixResult:
    """Build the full transfer matrix from precomputed pipeline outputs."""
    if len(per_workload) < 2:
        raise ValueError("need at least two workloads for a transfer matrix")
    signatures = {
        wl.spec.label: program_signatures(wl.program) for wl in per_workload
    }
    # Target-side grouping depends only on the target's signature map, so
    # compute it once per workload rather than once per (source, target).
    grouped = {
        wl.spec.label: group_classes(
            wl.fast_schedules,
            wl.slow_schedules,
            matcher=identity_matcher(signatures[wl.spec.label]),
        )
        for wl in per_workload
    }

    cells: Dict[Tuple[str, str], TransferCell] = {}
    scores: Dict[Tuple[str, str], List[DiscriminationScore]] = {}
    for src in per_workload:
        for dst in per_workload:
            if src.spec.label == dst.spec.label:
                continue
            matcher = SignatureMatcher(
                signatures[src.spec.label], signatures[dst.spec.label]
            )
            cell_scores = score_grouped(
                src.rules, grouped[dst.spec.label], matcher=matcher
            )
            n_rules, n_trans, mean_disc, mean_cov = discrimination_summary(
                cell_scores
            )
            transferable = [s for s in cell_scores if s.transfers]
            best = max(
                transferable,
                key=lambda s: (s.discrimination, s.rule.text),
                default=None,
            )
            key = (src.spec.label, dst.spec.label)
            scores[key] = cell_scores
            cells[key] = TransferCell(
                source=src.spec.label,
                target=dst.spec.label,
                n_rules=n_rules,
                n_transferable=n_trans,
                mean_discrimination=mean_disc,
                mean_coverage=mean_cov,
                best_rule=best.rule.text if best is not None else "",
                best_discrimination=(
                    best.discrimination if best is not None else 0.0
                ),
            )

    controls = [
        row
        for wl in per_workload
        if (
            row := _control_row(
                wl, signatures[wl.spec.label], grouped[wl.spec.label]
            )
        )
        is not None
    ]

    union_rows: List[UnionRow] = []
    skipped: List[str] = []
    union_note = ""
    if len(per_workload) >= MIN_UNION_WORKLOADS:
        union_workloads = [
            _union_workload(wl, signatures[wl.spec.label])
            for wl in per_workload
        ]
        for held in union_workloads:
            try:
                result: UnionTrainingResult = train_union(
                    union_workloads, holdout=held.label
                )
            except TrainingError:
                # The remaining training workloads share no non-constant
                # signature features — possible for tiny, structurally
                # disjoint sets; report rather than abort the matrix.
                skipped.append(held.label)
                continue
            union_rows.append(
                UnionRow(
                    target=held.label,
                    trained_on=result.trained_on,
                    n_features=result.n_features,
                    n_leaves=result.tree.n_leaves,
                    train_accuracy=result.train_accuracy,
                    holdout_accuracy=float(result.holdout_accuracy or 0.0),
                )
            )
        if skipped:
            union_note = (
                "union tree skipped for "
                + ", ".join(skipped)
                + ": training workloads share no non-constant signature "
                "features"
            )
    else:
        union_note = (
            "union tree skipped: leave-one-out training needs at least "
            f"{MIN_UNION_WORKLOADS} workloads"
        )

    return TransferMatrixResult(
        workloads=[wl.spec.label for wl in per_workload],
        cells=cells,
        controls=controls,
        union_rows=union_rows,
        union_note=union_note,
        scores=scores,
    )


def run_transfer_matrix(
    specs: Sequence[WorkloadSpec],
    *,
    machine: Optional[MachineConfig] = None,
    n_streams: int = 2,
    measurement=None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    shard_workers: int = 0,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> TransferMatrixResult:
    """End-to-end: exhaustive pipelines on every spec, then the matrix.

    The per-workload pipelines are an orchestrate plan: with
    ``shard_workers > 1`` whole workloads run concurrently, and the
    result carries the plan's per-task timing — everything else is
    bit-identical to the serial run.
    """
    if len(specs) < 2:
        raise ValueError("need at least two workloads for a transfer matrix")
    per_workload, plan_run = run_rules_plan(
        specs,
        machine=machine,
        n_streams=n_streams,
        measurement=measurement,
        workers=workers,
        cache_path=cache_path,
        shard_workers=shard_workers,
        block_size=block_size,
        sim_backend=sim_backend,
    )
    result = transfer_matrix_from(per_workload)
    result.timing = plan_run.timing()
    return result
