"""Structural operation signatures — a principled cross-program identity.

Role matching (:func:`repro.rules.score.op_role`) equates operations by
stripping positional qualifiers from their names (``Pack_x`` → ``Pack``),
which only works when two generators happen to agree on naming.  A
*signature* instead identifies an operation by what it structurally *is*:

* the device it executes on (CPU / GPU),
* the semantic action it performs (kernel, plain CPU op, or one of the
  four MPI actions),
* the topology and arity of the communication group the action operates
  on (pairwise exchange, multi-neighbor exchange, fan-in/out, …), and
* its position in the dependence chain — whether it feeds a
  communication post, consumes a completed wait, and whether it sits at
  the start (all predecessors are ``start``) or end (all successors are
  ``end``) of the program.

Two operations from unrelated programs with equal signatures occupy the
same structural position, so a rule learned about one is meaningful for
the other even when the families share no naming convention — SpMV's
``Pack``, the halo exchange's ``Pack_x``, and the allreduce's ``Pack_0``
all sign as a GPU kernel feeding a send post.

Scheduling-inserted synchronization operations (``CER-after-…``,
``CES-b4-…``, ``CSWE-…-waits-…``) receive *derived* signatures built
from the signatures of the program operations they synchronize, so rules
mentioning sync ops transfer structurally too.

Determinism contract: signatures are pure functions of program structure;
:func:`signature_fingerprint` is a SHA-256 of the canonical key, bit-stable
across processes (the same guarantee
:func:`repro.exec.cache.program_fingerprint` gives whole programs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dag.program import CommPlan, Program
from repro.dag.vertex import ActionKind, OpKind, Vertex
from repro.schedule.sync import build_sync_plan, cer_name, cswe_name

#: Name of the artificial entry/exit vertices (paper §III-A).
_START = "start"
_END = "end"


@dataclass(frozen=True)
class OpSignature:
    """Canonical structural identity of one schedulable operation.

    Attributes
    ----------
    device:
        ``"gpu"`` or ``"cpu"`` (sync ops carry ``"sync"``).
    action:
        ``"kernel"`` for GPU ops, ``"compute"`` for plain CPU ops, the
        :class:`~repro.dag.vertex.ActionKind` value for MPI actions, and
        ``"cer"`` / ``"ces"`` / ``"cswe"`` for derived sync signatures.
    topology / arity:
        Communication-group classification for MPI actions: topology is
        one of ``"none"``, ``"pairwise"`` (symmetric, one partner per
        rank), ``"exchange"`` (symmetric, several partners), ``"fan_in"``,
        ``"fan_out"``, or ``"irregular"``; arity is the maximum number of
        messages any single rank sends (or receives, for recv-side
        actions) in the group.
    feeds_post:
        Some successor posts MPI operations — the op produces data that
        is about to be communicated (a *packer*).
    after_wait:
        Some predecessor completes MPI receives — the op consumes freshly
        communicated data (an *unpacker* / combiner).
    source_like / sink_like:
        Every predecessor is ``start`` / every successor is ``end``: the
        op sits at the boundary of the dependence chain.
    refs:
        For derived sync signatures only: canonical keys of the base
        operations' signatures.
    """

    device: str
    action: str
    topology: str = "none"
    arity: int = 0
    feeds_post: bool = False
    after_wait: bool = False
    source_like: bool = False
    sink_like: bool = False
    refs: Tuple[str, ...] = ()

    @property
    def key(self) -> str:
        """Canonical, human-readable identity string.

        Equal signatures ⇔ equal keys; the key doubles as the feature
        "op name" in the signature-canonical union feature space, so it
        is kept compact enough to appear in rendered rules.
        """
        if self.refs:
            inner = "|".join(self.refs)
            return f"{self.action.upper()}<{inner}>"
        flags = [
            name
            for name, on in (
                ("feeds_post", self.feeds_post),
                ("after_wait", self.after_wait),
                ("src", self.source_like),
                ("sink", self.sink_like),
            )
            if on
        ]
        tag = "+".join(flags) if flags else "mid"
        if self.topology == "none":
            return f"{self.action}[{tag}]"
        return f"{self.action}({self.topology}/{self.arity})[{tag}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.key


def signature_fingerprint(sig: OpSignature) -> str:
    """Process-stable SHA-256 of the signature's canonical key."""
    return hashlib.sha256(sig.key.encode("utf-8")).hexdigest()


def signature_to_dict(sig: OpSignature) -> Dict[str, object]:
    """JSON-ready dict of one signature (all dataclass fields)."""
    return {
        "device": sig.device,
        "action": sig.action,
        "topology": sig.topology,
        "arity": sig.arity,
        "feeds_post": sig.feeds_post,
        "after_wait": sig.after_wait,
        "source_like": sig.source_like,
        "sink_like": sig.sink_like,
        "refs": list(sig.refs),
    }


def signature_from_dict(data: Dict[str, object]) -> OpSignature:
    """Inverse of :func:`signature_to_dict`."""
    return OpSignature(
        device=str(data["device"]),
        action=str(data["action"]),
        topology=str(data.get("topology", "none")),
        arity=int(data.get("arity", 0)),  # type: ignore[arg-type]
        feeds_post=bool(data.get("feeds_post", False)),
        after_wait=bool(data.get("after_wait", False)),
        source_like=bool(data.get("source_like", False)),
        sink_like=bool(data.get("sink_like", False)),
        refs=tuple(data.get("refs", ())),  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# communication-group classification
# ----------------------------------------------------------------------
def classify_topology(plan: CommPlan) -> Tuple[str, int, int]:
    """``(topology, send_arity, recv_arity)`` of one communication group.

    Topology is judged on the directed partner multigraph: *symmetric*
    (every src→dst matched by dst→src) groups are ``"pairwise"`` when no
    rank has more than one partner and ``"exchange"`` otherwise;
    asymmetric groups are ``"fan_in"`` (several senders, one receiver),
    ``"fan_out"`` (one sender, several receivers), or ``"irregular"``.
    """
    if not plan.messages:
        return ("empty", 0, 0)
    pairs = {(m.src, m.dst) for m in plan.messages}
    sends: Dict[int, int] = {}
    recvs: Dict[int, int] = {}
    for m in plan.messages:
        sends[m.src] = sends.get(m.src, 0) + 1
        recvs[m.dst] = recvs.get(m.dst, 0) + 1
    send_arity = max(sends.values())
    recv_arity = max(recvs.values())
    symmetric = all((d, s) in pairs for (s, d) in pairs)
    if symmetric:
        topology = "pairwise" if send_arity == 1 else "exchange"
    elif len(sends) == 1:
        topology = "fan_out"
    elif len(recvs) == 1:
        topology = "fan_in"
    else:
        topology = "irregular"
    return (topology, send_arity, recv_arity)


_POST_KINDS = (ActionKind.POST_SENDS, ActionKind.POST_RECVS)
_WAIT_KINDS = (ActionKind.WAIT_SENDS, ActionKind.WAIT_RECVS)
_RECV_SIDE = (ActionKind.POST_RECVS, ActionKind.WAIT_RECVS)


def _action_of(v: Vertex) -> str:
    if v.kind is OpKind.GPU:
        return "kernel"
    if v.action is None or v.action.kind is ActionKind.NOOP:
        return "compute"
    return v.action.kind.value


def _vertex_signature(program: Program, v: Vertex) -> OpSignature:
    graph = program.graph
    preds = graph.predecessors(v)
    succs = graph.successors(v)
    topology, arity = "none", 0
    if v.action is not None and v.action.kind is not ActionKind.NOOP:
        topo, send_arity, recv_arity = classify_topology(
            program.comm_plan(v.action.group)
        )
        topology = topo
        arity = recv_arity if v.action.kind in _RECV_SIDE else send_arity
    return OpSignature(
        device="gpu" if v.kind is OpKind.GPU else "cpu",
        action=_action_of(v),
        topology=topology,
        arity=arity,
        feeds_post=any(
            s.action is not None and s.action.kind in _POST_KINDS
            for s in succs
        ),
        after_wait=any(
            p.action is not None and p.action.kind in _WAIT_KINDS
            for p in preds
        ),
        source_like=bool(preds) and all(p.name == _START for p in preds),
        sink_like=bool(succs) and all(s.name == _END for s in succs),
    )


def program_signatures(program: Program) -> Dict[str, OpSignature]:
    """Signature of every operation that can appear in a schedule.

    Covers the program's schedulable vertices *and* every synchronization
    operation the scheduler may insert (from the program's
    :func:`~repro.schedule.sync.build_sync_plan`), with derived
    signatures referencing the base ops' keys.  Deterministic: iteration
    follows the graph's insertion order, and signatures depend only on
    program structure.
    """
    sigs: Dict[str, OpSignature] = {}
    for v in program.schedulable_vertices():
        sigs[v.name] = _vertex_signature(program, v)

    plan = build_sync_plan(program.graph)
    for u in sorted(plan.cer_sources):
        sigs[cer_name(u)] = OpSignature(
            device="sync", action="cer", refs=(sigs[u].key,)
        )
    for (u, v), name in sorted(plan.ces_name_of.items()):
        # The CES identity is the (GPU producer, CPU consumer) pair it
        # synchronizes, regardless of whether naming needed the long
        # disambiguated form in this particular program.
        sigs[name] = OpSignature(
            device="sync", action="ces", refs=(sigs[v].key, sigs[u].key)
        )
    for (u, v) in sorted(plan.gpu_gpu_edges):
        sigs[cswe_name(u, v)] = OpSignature(
            device="sync", action="cswe", refs=(sigs[v].key, sigs[u].key)
        )
        # A cross-stream wait is always paired with an event record on
        # the producing stream; register it too (no-op if u also has a
        # CPU successor and was already a cer_source).
        sigs.setdefault(
            cer_name(u),
            OpSignature(device="sync", action="cer", refs=(sigs[u].key,)),
        )
    return sigs


# ----------------------------------------------------------------------
# rule matching by signature
# ----------------------------------------------------------------------
class SignatureMatcher:
    """Match rule operands to schedule ops through structural signatures.

    A rule extracted on the *source* program mentions source op names;
    a *target* schedule contains target op names.  The matcher maps both
    to signature keys, so :mod:`repro.rules.score` can group and compare
    them: a rule transfers exactly when both of its operations have a
    structural counterpart in the target.

    Implements the matching interface ``rule_key`` / ``op_key`` that
    :func:`repro.rules.score.rule_satisfied` accepts; names unknown to
    the respective program (never generated by its sync plan either) map
    to ``None`` and simply do not participate.
    """

    __slots__ = ("_source", "_target")

    def __init__(
        self,
        source: Dict[str, OpSignature],
        target: Dict[str, OpSignature],
    ) -> None:
        self._source = {n: s.key for n, s in source.items()}
        self._target = {n: s.key for n, s in target.items()}

    def rule_key(self, name: str) -> Optional[str]:
        """Signature key of a rule operand (a source-program op name)."""
        return self._source.get(name)

    def op_key(self, name: str) -> Optional[str]:
        """Signature key of a target-schedule op name."""
        return self._target.get(name)


def identity_matcher(signatures: Dict[str, OpSignature]) -> SignatureMatcher:
    """Matcher scoring a program's rules on its own schedules."""
    return SignatureMatcher(signatures, signatures)
