"""Discrimination-aware transfer scoring.

The original cross-workload table scores a rule by its *satisfaction* on
the target's fastest class alone — under which a vacuous rule ("start is
launched first") transfers perfectly everywhere.  A design rule is only
worth transferring if following it is associated with being *fast*, so
each rule is scored on both sides of the target's labeling:

* ``fast_satisfaction`` — fraction of the target's fast-class schedules
  (among those the rule transfers to) that follow the rule;
* ``slow_satisfaction`` — the same over the slow classes;
* ``discrimination`` — the gap ``fast − slow``: +1 means the rule
  perfectly separates fast from slow on the target, 0 means it is
  uninformative there (always true, always false, or satisfied equally
  often by both classes), negative means the target's fast schedules
  systematically *violate* the source's guidance;
* ``coverage`` — the fraction of all target schedules the rule could be
  evaluated on at all; a rule that transfers to three schedules out of a
  thousand is weak evidence however well it separates them.

``weight = discrimination × coverage`` is the headline number reported in
the transfer matrix: an always-true rule has discrimination 0 and hence
weight 0, regardless of coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.rules.ruleset import Rule
from repro.rules.score import _eval_rule, _key_fns, _order_groups, _stream_groups
from repro.schedule.schedule import Schedule

#: Per-schedule (order groups, stream groups) pair.
_Groups = Tuple[Dict[str, List[int]], Dict[str, List[int]]]


@dataclass(frozen=True)
class DiscriminationScore:
    """How one rule separates a target's fast and slow schedule classes."""

    rule: Rule
    #: Fast-class schedules the rule transfers to / satisfies.
    n_fast_transferred: int
    n_fast_satisfied: int
    #: Slow-class schedules the rule transfers to / satisfies.
    n_slow_transferred: int
    n_slow_satisfied: int
    #: Total target schedules offered (fast + slow), for coverage.
    n_total: int

    @property
    def transfers(self) -> bool:
        """The rule was evaluable on at least one fast and one slow
        schedule — a discrimination gap needs both sides."""
        return self.n_fast_transferred > 0 and self.n_slow_transferred > 0

    @property
    def fast_satisfaction(self) -> float:
        if self.n_fast_transferred == 0:
            return 0.0
        return self.n_fast_satisfied / self.n_fast_transferred

    @property
    def slow_satisfaction(self) -> float:
        if self.n_slow_transferred == 0:
            return 0.0
        return self.n_slow_satisfied / self.n_slow_transferred

    @property
    def discrimination(self) -> float:
        """Fast/slow satisfaction gap in [-1, 1]; 0 when not transferable."""
        if not self.transfers:
            return 0.0
        return self.fast_satisfaction - self.slow_satisfaction

    @property
    def coverage(self) -> float:
        """Fraction of all offered schedules the rule was evaluable on."""
        if self.n_total == 0:
            return 0.0
        return (self.n_fast_transferred + self.n_slow_transferred) / self.n_total

    @property
    def weight(self) -> float:
        """Coverage-weighted discrimination — the headline transfer score."""
        return self.discrimination * self.coverage


@dataclass(frozen=True)
class GroupedClasses:
    """Precomputed op groups of one target's fast/slow schedule classes.

    Grouping a target's schedules depends only on the *target-side* key
    function, so when many sources are scored against the same target
    (the transfer matrix), compute this once per target via
    :func:`group_classes` and score each source with
    :func:`score_grouped`.
    """

    fast: Tuple[_Groups, ...]
    slow: Tuple[_Groups, ...]
    n_total: int


def group_classes(
    fast_schedules: Sequence[Schedule],
    slow_schedules: Sequence[Schedule],
    *,
    by_role: bool = False,
    matcher=None,
) -> GroupedClasses:
    """Group a target's labeled schedules by the matching mode's op key."""
    _, op_key = _key_fns(by_role, matcher)
    return GroupedClasses(
        fast=tuple(
            (_order_groups(s, op_key), _stream_groups(s, op_key))
            for s in fast_schedules
        ),
        slow=tuple(
            (_order_groups(s, op_key), _stream_groups(s, op_key))
            for s in slow_schedules
        ),
        n_total=len(fast_schedules) + len(slow_schedules),
    )


def score_grouped(
    rules: Iterable[Rule],
    grouped: GroupedClasses,
    *,
    by_role: bool = False,
    matcher=None,
) -> List[DiscriminationScore]:
    """Score rules against pre-grouped target classes.

    Only the rule-side key function of the matching mode is consulted;
    the op-side keys are already baked into ``grouped``.
    """
    rule_key, _ = _key_fns(by_role, matcher)
    out: List[DiscriminationScore] = []
    for rule in sorted(rules, key=lambda r: r.text):
        counts = []
        for side in (grouped.fast, grouped.slow):
            n_t = 0
            n_s = 0
            for order_groups, stream_groups in side:
                verdict = _eval_rule(
                    rule, order_groups, stream_groups, rule_key
                )
                if verdict is None:
                    continue
                n_t += 1
                if verdict:
                    n_s += 1
            counts.append((n_t, n_s))
        (f_t, f_s), (s_t, s_s) = counts
        out.append(
            DiscriminationScore(
                rule=rule,
                n_fast_transferred=f_t,
                n_fast_satisfied=f_s,
                n_slow_transferred=s_t,
                n_slow_satisfied=s_s,
                n_total=grouped.n_total,
            )
        )
    return out


def score_transfer(
    rules: Iterable[Rule],
    fast_schedules: Sequence[Schedule],
    slow_schedules: Sequence[Schedule],
    *,
    by_role: bool = False,
    matcher=None,
) -> List[DiscriminationScore]:
    """Score every rule's fast/slow discrimination on a target workload.

    ``fast_schedules`` / ``slow_schedules`` are the target's labeled
    schedule classes (fastest class vs. everything else).  Matching
    follows :mod:`repro.rules.score`: exact names by default, role
    stripping with ``by_role=True``, or structural signatures via a
    ``matcher``.  Deterministic: rules are scored in text order.  Empty
    inputs are well-defined — no rules gives ``[]``, no schedules gives
    all-zero scores with discrimination 0.
    """
    grouped = group_classes(
        fast_schedules, slow_schedules, by_role=by_role, matcher=matcher
    )
    return score_grouped(rules, grouped, by_role=by_role, matcher=matcher)


def discrimination_summary(
    scores: Sequence[DiscriminationScore],
) -> Tuple[int, int, float, float]:
    """Aggregate ``(n_rules, n_transferable, mean_discrimination,
    mean_coverage)``.

    A rule is *transferable* when it was evaluable on both classes; the
    means average over transferable rules only (0.0 when there are none,
    never a division by zero).
    """
    transferable = [s for s in scores if s.transfers]
    if not transferable:
        return (len(scores), 0, 0.0, 0.0)
    mean_disc = sum(s.discrimination for s in transferable) / len(transferable)
    mean_cov = sum(s.coverage for s in transferable) / len(transferable)
    return (len(scores), len(transferable), mean_disc, mean_cov)
