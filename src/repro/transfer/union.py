"""Union-feature training: one tree over several workloads' schedules.

The paper's §VI "generalize across inputs" extension trains one decision
tree on several inputs of the *same* program.  Here the training set is
the union of several *programs'* labeled schedules, projected into the
signature-canonical feature space of
:class:`repro.ml.features.MappedFeatureExtractor`: every schedule becomes
a vector over (signature, signature) ordering/stream features shared by
all participating workloads, labeled **fast** (the workload's fastest
performance class) or **slow** (everything else).  Class counts and time
scales differ across programs, so the binary fast/slow target is the
common denominator every workload can supply.

The interesting number is *held-out-workload* accuracy: train on all
workloads but one, classify the held-out workload's schedules, and score
against its own labeling.  High accuracy means the union tree has learned
design guidance that moves across programs — the cross-program analogue
of the paper's Table V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.ml.features import MappedFeatureExtractor
from repro.ml.hyperparam import search_tree_size
from repro.ml.tree import DecisionTree
from repro.schedule.schedule import Schedule
from repro.transfer.signature import OpSignature

#: Binary union labels.
FAST, SLOW = 0, 1


@dataclass
class UnionWorkload:
    """One workload's contribution to the union training set."""

    label: str
    schedules: Sequence[Schedule]
    #: Binary label per schedule: 0 = fastest class, 1 = slower.
    labels: np.ndarray
    #: Op name -> structural signature (from program_signatures).
    signatures: Dict[str, OpSignature]

    @property
    def key_mapping(self) -> Dict[str, str]:
        return {name: sig.key for name, sig in self.signatures.items()}


def binary_labels(class_labels: Sequence[int]) -> np.ndarray:
    """Collapse per-workload performance classes to fast (0) / slow (1)."""
    arr = np.asarray(list(class_labels), dtype=int)
    return np.where(arr == 0, FAST, SLOW)


@dataclass
class UnionTrainingResult:
    """A union-trained tree and its evaluation."""

    extractor: MappedFeatureExtractor
    tree: DecisionTree
    #: Workload labels the tree was trained on.
    trained_on: Tuple[str, ...]
    #: Training-set accuracy over the union.
    train_accuracy: float
    #: Per-workload accuracy on the training workloads.
    per_workload_accuracy: Dict[str, float]
    #: Held-out workload label and accuracy (None when not held out).
    holdout: Optional[str] = None
    holdout_accuracy: Optional[float] = None

    @property
    def n_features(self) -> int:
        return len(self.extractor.features)


def _accuracy(
    tree: DecisionTree,
    extractor: MappedFeatureExtractor,
    wl: UnionWorkload,
) -> float:
    x = extractor.transform(wl.schedules, wl.key_mapping).matrix
    pred = tree.predict(x)
    return float(np.mean(pred == wl.labels))


def train_union(
    workloads: Sequence[UnionWorkload],
    *,
    holdout: Optional[str] = None,
    criterion: str = "gini",
) -> UnionTrainingResult:
    """Train one tree on the union of ``workloads`` (minus ``holdout``).

    The feature vocabulary is fitted on the *training* workloads only —
    the held-out workload plays no part in choosing features — and the
    held-out evaluation uses only the features both sides share; if the
    held-out workload lacks one of them, the feature simply evaluates on
    its own signature groups (its programs carry the same structural
    signatures, which is what makes the projection possible at all).
    """
    train = [w for w in workloads if w.label != holdout]
    if holdout is not None and len(train) == len(workloads):
        raise TrainingError(f"holdout workload {holdout!r} not in the union")
    if len(train) < 2:
        raise TrainingError("union training needs at least two workloads")

    extractor = MappedFeatureExtractor().fit(
        [(w.schedules, w.key_mapping) for w in train]
    )
    if not extractor.features:
        raise TrainingError(
            "no shared, non-constant signature features across the union"
        )
    x = np.concatenate(
        [extractor.transform(w.schedules, w.key_mapping).matrix for w in train]
    )
    y = np.concatenate([np.asarray(w.labels, dtype=int) for w in train])
    tree, _ = search_tree_size(x, y, criterion=criterion)

    per_wl = {w.label: _accuracy(tree, extractor, w) for w in train}
    result = UnionTrainingResult(
        extractor=extractor,
        tree=tree,
        trained_on=tuple(w.label for w in train),
        train_accuracy=float(np.mean(tree.predict(x) == y)),
        per_workload_accuracy=per_wl,
        holdout=holdout,
    )
    if holdout is not None:
        held = next(w for w in workloads if w.label == holdout)
        result.holdout_accuracy = _holdout_accuracy(tree, extractor, held)
    return result


def _holdout_accuracy(
    tree: DecisionTree,
    extractor: MappedFeatureExtractor,
    held: UnionWorkload,
) -> float:
    """Accuracy on the held-out workload.

    The mapped extractor's projection is total: features whose signature
    keys the held-out program lacks evaluate to 0 (structurally absent
    constraints are unsatisfied), so the tree always yields a
    prediction for foreign schedules.
    """
    return _accuracy(tree, extractor, held)
