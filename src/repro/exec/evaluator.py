"""Batched schedule evaluation: the uniform measurement interface.

Search strategies submit *batches* of schedules through an
:class:`Evaluator` instead of owning their measurement loops.  The
interface decouples *what* is measured (the paper's protocol,
:mod:`repro.sim.measure`) from *how* it is scheduled onto hardware
(serially here, across a worker pool in
:class:`repro.exec.parallel.ParallelEvaluator`, potentially across a
cluster later) — all backends must return bit-identical measurements.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.exec.cache import MeasurementCache, context_fingerprint
from repro.schedule.schedule import Schedule
from repro.sim.batch import CompiledContext, resolve_backend
from repro.sim.measure import Benchmarker, Measurement


class Evaluator(abc.ABC):
    """Measures schedules; the only way search strategies touch the sim.

    Implementations must be *pure* with respect to the measurement
    semantics: for a fixed program/machine/measurement-config context,
    ``evaluate_batch`` returns the same :class:`Measurement` for a given
    schedule regardless of batch composition, ordering, concurrency, or
    cache state.
    """

    @abc.abstractmethod
    def evaluate_batch(self, schedules: Sequence[Schedule]) -> List[Measurement]:
        """Measure every schedule; results align with the input order."""

    @property
    @abc.abstractmethod
    def n_simulations(self) -> int:
        """Total simulator invocations (samples) performed so far."""

    # ------------------------------------------------------------------
    def evaluate(self, schedule: Schedule) -> Measurement:
        return self.evaluate_batch([schedule])[0]

    def time_of(self, schedule: Schedule) -> float:
        return self.evaluate(schedule).time

    def times_of(self, schedules: Sequence[Schedule]) -> List[float]:
        return [m.time for m in self.evaluate_batch(schedules)]

    def evaluate_blocks(
        self, blocks: Iterable[Sequence[Schedule]]
    ) -> Iterator[List[Measurement]]:
        """Measure a *stream* of schedule blocks, one result list per block.

        The lazy generator form of :meth:`evaluate_batch`: only the block
        currently being measured is resident, so an exhaustive pipeline
        can walk a six-figure design space (via
        :meth:`repro.schedule.space.DesignSpace.iter_blocks`) holding
        ``block_size`` schedules at a time.  Backends inherit this
        loop — a :class:`~repro.exec.parallel.ParallelEvaluator` fans
        each block across its worker pool — and the per-schedule purity
        contract makes the measurements independent of the block split.

        Interface contract: implementations must consume ``blocks``
        lazily, at most one block ahead of the results they yield —
        callers (the streaming pipeline) rely on that to bound schedule
        residency.  An override that prefetches the stream breaks the
        bound.
        """
        for block in blocks:
            yield self.evaluate_batch(block)

    def close(self) -> None:
        """Release any resources (worker pools, cache connections)."""


class SerialEvaluator(Evaluator):
    """Evaluates batches in-process through a
    :class:`~repro.sim.measure.Benchmarker`.

    ``sim_backend`` selects how un-memoized schedules are simulated:

    * ``"reference"`` (the constructor default) — the event-loop engine,
      one schedule at a time.  Every other backend must agree with it
      bit-for-bit.
    * ``"batch"`` — the compiled array-replay backend
      (:mod:`repro.sim.batch`); schedules its compiled context cannot
      replay fall back to the reference engine per schedule, counted in
      ``sim.fallbacks``.
    * ``"auto"`` — ``"batch"`` when the program compiles cleanly,
      ``"reference"`` otherwise.  :func:`repro.exec.parallel
      .build_evaluator` defaults to this.

    The compiled context is built once here and reused across every
    batch and block this evaluator measures.  An optional
    :class:`MeasurementCache` is consulted before the benchmarker and
    updated with fresh results; the benchmarker's in-memory memo and the
    disk cache share the same schedule fingerprints (the disk cache is
    backend-agnostic — backends are bit-identical by CI-asserted
    contract — while the in-memory memo is backend-keyed so mixed
    sessions can never alias).
    """

    def __init__(
        self,
        benchmarker: Benchmarker,
        cache: Optional[MeasurementCache] = None,
        sim_backend: str = "reference",
    ) -> None:
        self.benchmarker = benchmarker
        self.cache = cache
        executor = benchmarker.executor
        resolved: Tuple[str, Optional[CompiledContext]] = resolve_backend(
            sim_backend,
            executor.program,
            executor.machine,
            benchmarker.config,
            sample_offset=benchmarker.sample_offset,
            needs_reference=(
                executor.collect_trace or executor.payload_init is not None
            ),
        )
        self.sim_backend, self._compiled = resolved
        self._context: Optional[str] = None
        #: Fingerprints known to be on disk (read or written by us), so a
        #: warm-cache run doesn't rewrite the database it just read.
        self._on_disk: set = set()
        if cache is not None:
            self._context = context_fingerprint(
                benchmarker.executor.program,
                benchmarker.executor.machine,
                benchmarker.config,
                benchmarker.sample_offset,
            )

    # ------------------------------------------------------------------
    @property
    def n_simulations(self) -> int:
        return self.benchmarker.n_simulations

    def evaluate_batch(self, schedules: Sequence[Schedule]) -> List[Measurement]:
        with obs.span(
            "eval.batch",
            n=len(schedules),
            backend="serial",
            sim=self.sim_backend,
        ):
            sims_before = self.benchmarker.n_simulations
            if self.cache is not None:
                self._preload_from_cache(schedules)
            if self._compiled is not None:
                results, n_replayed, n_fallbacks = self._compiled.measure_into(
                    self.benchmarker, schedules, backend=self.sim_backend
                )
                if n_replayed:
                    obs.add("sim.batch_replays", n_replayed)
                if n_fallbacks:
                    obs.add("sim.fallbacks", n_fallbacks)
            else:
                results = [
                    self.benchmarker.measure(s, backend=self.sim_backend)
                    for s in schedules
                ]
            if self.cache is not None:
                self._write_back(schedules, results)
            obs.add("eval.schedules", len(schedules))
            obs.add("eval.simulations", self.benchmarker.n_simulations - sims_before)
        return results

    # ------------------------------------------------------------------
    def _preload_from_cache(self, schedules: Sequence[Schedule]) -> None:
        missing: Dict[str, Schedule] = {
            s.fingerprint(): s
            for s in schedules
            if self.benchmarker.cached(s, backend=self.sim_backend) is None
        }
        if not missing:
            return
        hits = self.cache.get_many(self._context, list(missing))
        for fp, m in hits.items():
            self.benchmarker.seed_cache(missing[fp], m, backend=self.sim_backend)
        self._on_disk.update(hits)

    def _write_back(
        self, schedules: Sequence[Schedule], results: Sequence[Measurement]
    ) -> None:
        entries = {
            s.fingerprint(): m
            for s, m in zip(schedules, results)
            if s.fingerprint() not in self._on_disk
        }
        if entries:
            self.cache.put_many(self._context, entries.items())
            self._on_disk.update(entries)


def as_evaluator(obj) -> Evaluator:
    """Coerce a :class:`Benchmarker` (or pass through an
    :class:`Evaluator`) so call sites accept either."""
    if isinstance(obj, Evaluator):
        return obj
    if isinstance(obj, Benchmarker):
        return SerialEvaluator(obj)
    raise TypeError(f"expected an Evaluator or Benchmarker, got {type(obj).__name__}")
