"""Process-parallel batched schedule evaluation.

A :class:`ParallelEvaluator` shards a batch of schedules across a pool of
worker processes.  Each worker owns a private
:class:`~repro.sim.executor.ScheduleExecutor` and
:class:`~repro.sim.measure.Benchmarker` built in its initializer, so no
simulator state is ever shared between processes.

Determinism
-----------
Parallel results are **bit-identical** to
:class:`~repro.exec.evaluator.SerialEvaluator` because a measurement is a
pure function of ``(schedule, program, machine, measurement config,
sample offset)``: the noise model derives every jitter factor from a
stable hash of ``(noise seed, sample index, op key)`` rather than from
shared RNG state, so neither batch composition, nor worker assignment,
nor completion order can change a result.  Each schedule is effectively
"seeded" by its own content.

Start methods
-------------
The default start method is ``fork`` (when the platform offers it):
worker initializer arguments are inherited through the forked address
space, so programs carrying non-picklable payload closures work
unchanged.  Under ``spawn``/``forkserver`` the program and machine must
be picklable.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.dag.program import Program
from repro.exec.cache import MeasurementCache, context_fingerprint
from repro.exec.evaluator import Evaluator, SerialEvaluator
from repro.platform.machine import MachineConfig
from repro.schedule.schedule import Schedule
from repro.sim.batch import CompiledContext, compile_count, resolve_backend
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, Measurement, MeasurementConfig

#: Per-worker benchmarker, created once by :func:`_init_worker`.
_WORKER_BENCH: Optional[Benchmarker] = None
#: Per-worker compiled replay context — also built exactly once, in the
#: pool initializer, and reused across every chunk/task the worker runs.
_WORKER_REPLAYER: Optional[CompiledContext] = None
#: Compiles performed by *this* worker process (regression hook: must be
#: one per worker, never one per task).
_WORKER_COMPILES: int = 0


def _init_worker(
    program: Program,
    machine: MachineConfig,
    config: MeasurementConfig,
    sample_offset: int,
    sim_backend: str = "reference",
) -> None:
    global _WORKER_BENCH, _WORKER_REPLAYER, _WORKER_COMPILES
    compiles_before = compile_count()
    executor = ScheduleExecutor(program, machine)
    _WORKER_BENCH = Benchmarker(executor, config, sample_offset=sample_offset)
    _WORKER_REPLAYER = None
    if sim_backend == "batch":
        # Parent resolved "auto" already; only the concrete backend
        # arrives here.  obs counters recorded in this process are never
        # shipped home — the parent does the metrics accounting.
        _, _WORKER_REPLAYER = resolve_backend(
            sim_backend, program, machine, config, sample_offset=sample_offset
        )
    _WORKER_COMPILES = compile_count() - compiles_before


def _measure_one(schedule: Schedule) -> Measurement:
    assert _WORKER_BENCH is not None, "worker pool not initialized"
    return _WORKER_BENCH.measure(schedule)


def _measure_chunk(schedules: List[Schedule]) -> List[Measurement]:
    """Measure one dispatched chunk with the worker's warm state.

    Chunks (not single schedules) are the dispatch unit so the replay
    backend gets a real batch dimension per sweep.
    """
    assert _WORKER_BENCH is not None, "worker pool not initialized"
    if _WORKER_REPLAYER is not None:
        results, _, _ = _WORKER_REPLAYER.measure_into(
            _WORKER_BENCH, schedules, backend="batch"
        )
        return results
    return [_WORKER_BENCH.measure(s) for s in schedules]


def _worker_compile_stats(_: object = None) -> tuple:
    """(pid, compiles done by this worker) — warm-start regression probe."""
    return (os.getpid(), _WORKER_COMPILES)


def _worker_resource_probe(_: object = None):
    """One :class:`ResourceSample` of this eval-pool worker (telemetry).

    Inner pool workers have no sampler of their own (worker registries
    are never shipped home), so the parent probes them once at pool
    shutdown to catch each worker's peak-ish footprint.
    """
    from repro.obs.telemetry import sample_now

    return sample_now(path="eval.worker")


def build_evaluator(
    program: Program,
    machine: MachineConfig,
    config: MeasurementConfig = MeasurementConfig(),
    *,
    workers: int = 0,
    cache: Optional[MeasurementCache] = None,
    benchmarker: Optional[Benchmarker] = None,
    sample_offset: int = 0,
    sim_backend: str = "auto",
) -> Evaluator:
    """Construct the configured evaluation backend in one place.

    ``workers > 1`` yields a :class:`ParallelEvaluator`; anything else a
    :class:`~repro.exec.evaluator.SerialEvaluator` wrapping
    ``benchmarker`` (or a fresh one).  Call sites that offer a
    workers/cache knob (pipeline, workbench) share this logic so the
    two backends cannot drift.  ``sim_backend`` defaults to ``"auto"``
    here (batch replay wherever the compiled context supports the
    program) while the raw evaluator constructors keep their
    ``"reference"`` default.
    """
    if workers > 1:
        return ParallelEvaluator(
            program,
            machine,
            config,
            n_workers=workers,
            cache=cache,
            sample_offset=sample_offset,
            sim_backend=sim_backend,
        )
    if benchmarker is None:
        benchmarker = Benchmarker(
            ScheduleExecutor(program, machine),
            config,
            sample_offset=sample_offset,
        )
    return SerialEvaluator(benchmarker, cache=cache, sim_backend=sim_backend)


class ParallelEvaluator(Evaluator):
    """Evaluates schedule batches on a ``multiprocessing`` worker pool.

    Parameters
    ----------
    program, machine:
        The measurement context; every worker builds its own executor
        from these.
    config:
        Measurement protocol knobs (identical semantics to serial).
    n_workers:
        Pool size; defaults to ``os.cpu_count()``.
    cache:
        Optional persistent :class:`MeasurementCache` consulted before
        dispatch and updated with fresh results.
    sample_offset:
        Forwarded to each worker's benchmarker.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when
        available (required for programs with closure payloads).
    chunksize:
        Schedules per worker task; defaults to a heuristic that spreads
        each batch roughly four tasks per worker.
    sim_backend:
        ``"reference"`` (default), ``"batch"``, or ``"auto"``.  The
        parent resolves ``"auto"`` with its own compiled context (also
        used for metrics accounting, since worker registries are never
        shipped home) and each worker then compiles its replay context
        exactly once, in the pool initializer.
    """

    def __init__(
        self,
        program: Program,
        machine: MachineConfig,
        config: MeasurementConfig = MeasurementConfig(),
        *,
        n_workers: Optional[int] = None,
        cache: Optional[MeasurementCache] = None,
        sample_offset: int = 0,
        start_method: Optional[str] = None,
        chunksize: Optional[int] = None,
        sim_backend: str = "reference",
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.program = program
        self.machine = machine
        self.config = config
        self.n_workers = n_workers or os.cpu_count() or 1
        self.cache = cache
        self.sample_offset = sample_offset
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.chunksize = chunksize
        self.sim_backend, self._compiled = resolve_backend(
            sim_backend, program, machine, config, sample_offset=sample_offset
        )
        self._context = context_fingerprint(program, machine, config, sample_offset)
        self._memo: Dict[str, Measurement] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._n_simulations = 0

    # ------------------------------------------------------------------
    @property
    def n_simulations(self) -> int:
        return self._n_simulations

    @property
    def n_unique_schedules(self) -> int:
        return len(self._memo)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=_init_worker,
                initargs=(
                    self.program,
                    self.machine,
                    self.config,
                    self.sample_offset,
                    self.sim_backend,
                ),
            )
        return self._pool

    # ------------------------------------------------------------------
    def evaluate_batch(self, schedules: Sequence[Schedule]) -> List[Measurement]:
        with obs.span(
            "eval.batch",
            n=len(schedules),
            backend="parallel",
            sim=self.sim_backend,
        ):
            sims_before = self._n_simulations
            fps = [s.fingerprint() for s in schedules]
            pending: Dict[str, Schedule] = {
                fp: s for fp, s in zip(fps, schedules) if fp not in self._memo
            }
            if len(fps) > len(pending):
                obs.add("eval.memo_hits", len(fps) - len(pending))
            if pending and self.cache is not None:
                hits = self.cache.get_many(self._context, list(pending))
                for fp, m in hits.items():
                    self._memo[fp] = m
                    del pending[fp]
            if pending:
                if self._compiled is not None:
                    # Workers do the replaying, but their metrics
                    # registries are never shipped home — count the
                    # partition here, where the snapshot lives.
                    n_replayed = sum(
                        1 for s in pending.values() if self._compiled.supports(s)
                    )
                    if n_replayed:
                        obs.add("sim.batch_replays", n_replayed)
                    if len(pending) - n_replayed:
                        obs.add("sim.fallbacks", len(pending) - n_replayed)
                fresh = self._dispatch(list(pending.values()))
                if self.cache is not None:
                    self.cache.put_many(self._context, fresh.items())
                self._memo.update(fresh)
            obs.add("eval.schedules", len(schedules))
            obs.add("eval.simulations", self._n_simulations - sims_before)
        return [self._memo[fp] for fp in fps]

    def _dispatch(self, schedules: List[Schedule]) -> Dict[str, Measurement]:
        pool = self._ensure_pool()
        chunksize = self.chunksize or max(1, len(schedules) // (4 * self.n_workers))
        chunks = [
            schedules[i : i + chunksize]
            for i in range(0, len(schedules), chunksize)
        ]
        results = [m for chunk in pool.map(_measure_chunk, chunks) for m in chunk]
        fresh: Dict[str, Measurement] = {}
        for schedule, m in zip(schedules, results):
            fresh[schedule.fingerprint()] = m
            self._n_simulations += m.n_samples
        return fresh

    # ------------------------------------------------------------------
    def _probe_worker_resources(self) -> None:
        """Best-effort RSS probe of each pool worker before shutdown.

        Dispatches enough probe tasks to likely hit every worker, dedups
        by pid, and folds one sample per worker into the ambient sampler
        (path ``eval.worker``) plus an ``eval.pool_rss_max_bytes`` gauge.
        Telemetry must never fail an evaluation, hence the broad except.
        """
        if self._pool is None or not obs.telemetry_active():
            return
        try:
            probes = list(
                self._pool.map(
                    _worker_resource_probe,
                    range(4 * self.n_workers),
                    chunksize=1,
                )
            )
            by_pid = {}
            for rec in probes:
                prev = by_pid.get(rec.pid)
                if prev is None or rec.rss_bytes > prev.rss_bytes:
                    by_pid[rec.pid] = rec
            if by_pid:
                obs.absorb(resources=tuple(by_pid.values()))
                obs.gauge(
                    "eval.pool_rss_max_bytes",
                    float(max(r.rss_bytes for r in by_pid.values())),
                )
        except Exception:
            pass

    def close(self) -> None:
        if self._pool is not None:
            self._probe_worker_resources()
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelEvaluator(workers={self.n_workers}, "
            f"method={self.start_method!r}, "
            f"memo={len(self._memo)})"
        )
