"""Persistent measurement cache keyed by (context, schedule) fingerprints.

Design-space exploration re-benchmarks the same schedules constantly:
repeated pipeline runs, ablation sweeps, benchmark sessions, and MCTS
restarts all revisit implementations that were already simulated.  The
:class:`MeasurementCache` stores every completed
:class:`~repro.sim.measure.Measurement` in a small SQLite database so a
known schedule is never simulated twice — across processes and across
runs.

Keys
----
A cache entry is addressed by two canonical fingerprints:

* the **schedule fingerprint**
  (:meth:`repro.schedule.schedule.Schedule.fingerprint`) — a SHA-256 of
  the bound-op sequence, and
* the **context fingerprint** (:func:`context_fingerprint`) — a SHA-256
  of everything else that determines a measurement: the program (graph
  structure, per-vertex durations/work, communication plans, work
  overrides), the machine configuration (including the noise model and
  its seed), the measurement protocol knobs, and the sample offset.

Because a measurement is a pure function of (schedule, context), any
cache hit is bit-identical to a fresh simulation; changing *any* input —
a cost-model constant, the noise seed, ``max_samples`` — changes the
context fingerprint and transparently invalidates all prior entries.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import sqlite3
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro import obs
from repro.dag.program import Program
from repro.platform.machine import MachineConfig
from repro.sim.measure import Measurement, MeasurementConfig

_SCHEMA = """
CREATE TABLE IF NOT EXISTS measurements (
    context TEXT NOT NULL,
    schedule TEXT NOT NULL,
    time REAL NOT NULL,
    n_samples INTEGER NOT NULL,
    per_rank TEXT NOT NULL,
    PRIMARY KEY (context, schedule)
)
"""


def _canonical(obj):
    """Convert nested dataclasses/enums/containers to JSON-stable data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        return {str(k): _canonical(v) for k, v in items}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def _digest(payload) -> str:
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_fingerprint(program: Program) -> str:
    """Stable hash of everything about a program that affects timing.

    Payload callbacks are deliberately excluded: they compute numeric
    results on a side context and never influence the simulated clock.
    """
    vertices = sorted(
        (
            v.name,
            v.kind.value,
            v.duration,
            _canonical(v.work) if v.work is not None else None,
            _canonical(v.action) if v.action is not None else None,
            list(v.reads),
            list(v.writes),
        )
        for v in program.graph
    )
    edges = sorted((src.name, dst.name) for src, dst in program.graph.edges())
    comm = {group: _canonical(plan.messages) for group, plan in program.comm.items()}
    overrides = {
        f"{name}@{rank}": _canonical(work)
        for (name, rank), work in program.work_overrides.items()
    }
    return _digest(
        {
            "name": program.name,
            "n_ranks": program.n_ranks,
            "vertices": vertices,
            "edges": edges,
            "comm": comm,
            "overrides": overrides,
        }
    )


def context_fingerprint(
    program: Program,
    machine: MachineConfig,
    config: MeasurementConfig,
    sample_offset: int = 0,
) -> str:
    """Stable hash of the full measurement context (everything but the
    schedule)."""
    return _digest(
        {
            "program": program_fingerprint(program),
            "machine": _canonical(machine),
            "measurement": _canonical(config),
            "sample_offset": sample_offset,
        }
    )


class MeasurementCache:
    """On-disk (SQLite) store of schedule measurements.

    ``path`` may be ``":memory:"`` for an ephemeral cache (useful in
    tests).  Writes are committed per batch.

    Concurrency
    -----------
    One cache file may be shared by many *processes* (workload shards,
    parallel evaluators): file-backed connections enable SQLite's WAL
    journal (readers never block the writer) and a generous busy
    timeout, and batch writes retry on ``database is locked`` with
    exponential backoff, so concurrent shard writers serialize instead
    of failing.  Entries are idempotent — every writer computing the
    same (context, schedule) key writes the bit-identical measurement —
    so last-writer-wins is harmless.  A single connection object is
    still owned by one process: share the *path*, not the instance.
    """

    #: Wait this long (ms) for a competing writer before raising.
    _BUSY_TIMEOUT_MS = 30_000
    #: put_many retries on a locked database, with exponential backoff.
    _WRITE_RETRIES = 5
    _RETRY_BASE_DELAY_S = 0.05

    def __init__(self, path: str) -> None:
        self.path = str(path)
        #: Lifetime telemetry for this connection; the same counts land in
        #: the ambient metrics registry as ``cache.hits`` / ``cache.misses``
        #: / ``cache.lock_retries``.
        self.n_hits = 0
        self.n_misses = 0
        self.n_lock_retries = 0
        self._conn = sqlite3.connect(
            self.path, timeout=self._BUSY_TIMEOUT_MS / 1000.0
        )
        self._conn.execute(f"PRAGMA busy_timeout = {self._BUSY_TIMEOUT_MS}")
        if self.path != ":memory:":
            # WAL needs a real file; some filesystems refuse it — the
            # returned mode tells us, and rollback journaling still works.
            (mode,) = self._conn.execute("PRAGMA journal_mode = WAL").fetchone()
            self.journal_mode = str(mode).lower()
            self._conn.execute("PRAGMA synchronous = NORMAL")
        else:
            self.journal_mode = "memory"
        self._conn.execute(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    def get(self, context: str, schedule_fp: str) -> Optional[Measurement]:
        row = self._conn.execute(
            "SELECT time, n_samples, per_rank FROM measurements "
            "WHERE context = ? AND schedule = ?",
            (context, schedule_fp),
        ).fetchone()
        if row is None:
            self.n_misses += 1
            obs.add("cache.misses")
            return None
        self.n_hits += 1
        obs.add("cache.hits")
        return Measurement(
            time=row[0],
            n_samples=row[1],
            per_rank_time=tuple(json.loads(row[2])),
        )

    #: SQLite's default variable limit is 999; stay safely below it.
    _SELECT_CHUNK = 500

    def get_many(
        self, context: str, schedule_fps: Sequence[str]
    ) -> Dict[str, Measurement]:
        """Measurements for every known fingerprint in ``schedule_fps``."""
        found: Dict[str, Measurement] = {}
        unique = list(dict.fromkeys(schedule_fps))
        for i in range(0, len(unique), self._SELECT_CHUNK):
            chunk = unique[i : i + self._SELECT_CHUNK]
            placeholders = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                "SELECT schedule, time, n_samples, per_rank "
                "FROM measurements WHERE context = ? "
                f"AND schedule IN ({placeholders})",
                [context, *chunk],
            )
            for fp, time, n_samples, per_rank in rows:
                found[fp] = Measurement(
                    time=time,
                    n_samples=n_samples,
                    per_rank_time=tuple(json.loads(per_rank)),
                )
        self.n_hits += len(found)
        self.n_misses += len(unique) - len(found)
        if found:
            obs.add("cache.hits", len(found))
        if len(unique) > len(found):
            obs.add("cache.misses", len(unique) - len(found))
        return found

    def put(self, context: str, schedule_fp: str, m: Measurement) -> None:
        self.put_many(context, [(schedule_fp, m)])

    def put_many(
        self, context: str, entries: Iterable[Tuple[str, Measurement]]
    ) -> None:
        rows = [
            (
                context,
                fp,
                m.time,
                m.n_samples,
                json.dumps(list(m.per_rank_time)),
            )
            for fp, m in entries
        ]
        for attempt in range(self._WRITE_RETRIES + 1):
            try:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO measurements "
                    "(context, schedule, time, n_samples, per_rank) "
                    "VALUES (?, ?, ?, ?, ?)",
                    rows,
                )
                self._conn.commit()
                return
            except sqlite3.OperationalError as exc:
                # Roll back even on the terminal raise: a partially
                # applied batch left in an open transaction would shadow
                # this connection's subsequent reads and later commits.
                self._conn.rollback()
                locked = "locked" in str(exc) or "busy" in str(exc)
                if not locked or attempt == self._WRITE_RETRIES:
                    raise
                self.n_lock_retries += 1
                obs.add("cache.lock_retries")
                obs.log.warning(
                    "cache.locked_retry",
                    path=self.path,
                    attempt=attempt + 1,
                    retries=self._WRITE_RETRIES,
                )
                time.sleep(self._RETRY_BASE_DELAY_S * (2**attempt))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM measurements").fetchone()
        return int(n)

    def n_contexts(self) -> int:
        (n,) = self._conn.execute(
            "SELECT COUNT(DISTINCT context) FROM measurements"
        ).fetchone()
        return int(n)

    def clear(self) -> None:
        self._conn.execute("DELETE FROM measurements")
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "MeasurementCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeasurementCache({self.path!r}, {len(self)} entries)"
