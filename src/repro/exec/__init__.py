"""repro.exec — the batched schedule-evaluation substrate.

Search strategies do not talk to the simulator directly; they submit
batches of candidate schedules to an :class:`Evaluator` and receive one
:class:`~repro.sim.measure.Measurement` per schedule, in order.  Three
pieces compose:

* :class:`Evaluator` / :class:`SerialEvaluator` — the interface, and the
  reference backend wrapping the paper's
  :class:`~repro.sim.measure.Benchmarker` protocol one schedule at a
  time.
* :class:`ParallelEvaluator` — the same semantics on a
  ``multiprocessing`` worker pool; every worker owns a private simulator
  (and, under the batch ``sim_backend``, one compiled replay context
  built in the pool initializer and reused across tasks).
* :class:`MeasurementCache` — a persistent SQLite store keyed by
  canonical fingerprints of (program, machine, measurement config,
  sample offset) × schedule, so repeated runs never re-simulate a known
  implementation.

Determinism guarantees
----------------------
1. **Per-schedule seeding.**  A measurement is a pure function of the
   schedule plus the evaluation context: measurement noise is derived
   from a stable hash of ``(noise seed, sample index, op key)``, never
   from shared RNG state.  Serial, parallel, and cached evaluation are
   therefore bit-identical, for any worker count, batch split, or
   completion order.
2. **Ordered results.**  ``evaluate_batch`` aligns results with its
   input, so strategy-side bookkeeping (search traces, label
   generation) is independent of evaluation concurrency.
3. **Ordered backpropagation.**  Batched strategies (e.g. leaf-parallel
   MCTS, see :class:`repro.search.mcts.MctsConfig.rollout_batch`)
   collect rollouts first, then backpropagate measurements in
   collection order.  With ``rollout_batch=1`` MCTS is exactly the
   paper's serial protocol; with ``rollout_batch=k > 1`` the *search
   trajectory* may deviate from the paper (selection sees rollout
   statistics up to ``k-1`` iterations stale — the standard
   leaf-parallelization trade-off) even though each individual
   measurement is still bit-identical.
"""

from repro.exec.cache import MeasurementCache, context_fingerprint, program_fingerprint
from repro.exec.evaluator import Evaluator, SerialEvaluator, as_evaluator
from repro.exec.parallel import ParallelEvaluator, build_evaluator

__all__ = [
    "Evaluator",
    "MeasurementCache",
    "ParallelEvaluator",
    "SerialEvaluator",
    "as_evaluator",
    "build_evaluator",
    "context_fingerprint",
    "program_fingerprint",
]
