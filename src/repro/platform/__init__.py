"""Platform models: machine description, cost models, measurement noise.

The paper benchmarks on a real Perlmutter node (Table I).  This repository
substitutes a parameterized machine model consumed by the discrete-event
simulator (:mod:`repro.sim`); :func:`repro.platform.presets.perlmutter_like`
is the default configuration used by all paper-reproduction experiments.
"""

from repro.platform.costs import CostModel
from repro.platform.machine import CpuModel, GpuModel, MachineConfig, NetworkModel
from repro.platform.noise import NoiseModel
from repro.platform.presets import describe, noiseless, perlmutter_like

__all__ = [
    "CostModel",
    "CpuModel",
    "GpuModel",
    "MachineConfig",
    "NetworkModel",
    "NoiseModel",
    "describe",
    "noiseless",
    "perlmutter_like",
]
