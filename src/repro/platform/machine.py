"""Machine configuration consumed by the discrete-event simulator.

The model intentionally captures only the mechanisms that make operation
*order* and *stream assignment* matter — asynchronous kernel execution on
FIFO streams, CPU launch/synchronization overheads, and latency/bandwidth
message transfer with optional per-NIC serialization — because those are the
mechanisms the paper's design-rule pipeline reasons about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.platform.noise import NoiseModel


class Protocol(enum.Enum):
    """Point-to-point transfer protocol of the simulated MPI."""

    #: Transfer begins as soon as the send is posted; the send buffer is
    #: copied, so the send request completes after the injection time even
    #: if the matching receive arrives later.
    EAGER = "eager"
    #: Transfer begins when *both* send and receive are posted (large-message
    #: behaviour of most MPI implementations, incl. Cray-MPICH).
    RENDEZVOUS = "rendezvous"


@dataclass(frozen=True)
class GpuModel:
    """GPU execution parameters (A100-inspired defaults)."""

    #: Achievable FP64 throughput (FLOP/s) for the kernels modeled.
    flops_per_s: float = 9.0e12
    #: Achievable device-memory bandwidth (B/s).
    mem_bw_bytes_per_s: float = 1.3e12
    #: CPU-side cost of launching a kernel (s).
    launch_overhead_s: float = 1.0e-6
    #: Minimum duration of any kernel, however small its work (s).
    kernel_min_s: float = 2.0e-6
    #: CPU-side cost of a ``cudaEventRecord`` call (s).
    event_record_s: float = 0.3e-6
    #: CPU-side cost of entering ``cudaEventSynchronize`` (s); the block
    #: itself lasts until the event fires.
    event_sync_overhead_s: float = 0.5e-6
    #: CPU-side cost of a ``cudaStreamWaitEvent`` call (s).
    stream_wait_overhead_s: float = 0.3e-6
    #: Extra latency a stream pays when waiting on an event recorded on a
    #: *different GPU* (inter-device fence; paper §VI proposes extending
    #: resource assignment beyond streams to multiple GPUs).
    cross_gpu_sync_extra_s: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.flops_per_s <= 0 or self.mem_bw_bytes_per_s <= 0:
            raise ValueError("GPU rates must be positive")


@dataclass(frozen=True)
class CpuModel:
    """CPU execution parameters."""

    #: Default duration of a CPU vertex with no explicit duration/work (s).
    default_op_s: float = 0.5e-6
    #: CPU cost of posting one non-blocking send/recv (s).
    post_msg_s: float = 0.4e-6
    #: CPU cost of entering a wait call (s); the block lasts until the
    #: requests complete.
    wait_overhead_s: float = 0.3e-6
    #: Achievable CPU FLOP rate for CPU-side compute vertices (FLOP/s).
    flops_per_s: float = 5.0e10
    #: Achievable host-memory bandwidth (B/s).
    mem_bw_bytes_per_s: float = 1.0e11


@dataclass(frozen=True)
class NetworkModel:
    """α-β network model for simulated point-to-point MPI."""

    #: Per-message latency α (s).
    latency_s: float = 1.5e-6
    #: Link bandwidth β⁻¹ (B/s).
    bandwidth_bytes_per_s: float = 20.0e9
    #: Messages at or below this size use the eager protocol.
    eager_threshold_bytes: float = 8192.0
    #: Protocol for messages above the eager threshold.
    protocol: Protocol = Protocol.RENDEZVOUS
    #: If True, each rank's NIC serializes its outgoing transfers and,
    #: independently, its incoming transfers (a transfer occupies both the
    #: source send channel and the destination receive channel).
    serialize_nic: bool = True

    def transfer_time(self, nbytes: float) -> float:
        """Pure wire time of one message (no queueing)."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def is_eager(self, nbytes: float) -> bool:
        return nbytes <= self.eager_threshold_bytes


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the simulated platform.

    The paper's platform (Table I) is one Perlmutter node: 4 MPI ranks,
    one A100 per rank, 2 CUDA streams per GPU.  ``n_streams`` bounds the
    stream-assignment dimension of the design space.
    """

    n_ranks: int = 4
    n_streams: int = 2
    #: GPUs per rank.  Streams are assigned to GPUs round-robin by stream
    #: id (``gpu = stream % n_gpus``), so ``n_streams=2, n_gpus=2`` places
    #: each stream on its own device (paper §VI: "extending resource
    #: assignment to include multiple GPUs").
    n_gpus: int = 1
    gpu: GpuModel = field(default_factory=GpuModel)
    cpu: CpuModel = field(default_factory=CpuModel)
    net: NetworkModel = field(default_factory=NetworkModel)
    noise: NoiseModel = field(default_factory=NoiseModel)
    name: str = "machine"

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")

    def gpu_of_stream(self, stream_id: int) -> int:
        """Device hosting the given stream (round-robin assignment)."""
        return stream_id % self.n_gpus

    def with_noise(self, noise: NoiseModel) -> "MachineConfig":
        return replace(self, noise=noise)

    def with_gpus(self, n_gpus: int) -> "MachineConfig":
        return replace(self, n_gpus=n_gpus)

    def with_streams(self, n_streams: int) -> "MachineConfig":
        return replace(self, n_streams=n_streams)

    def with_ranks(self, n_ranks: int) -> "MachineConfig":
        return replace(self, n_ranks=n_ranks)
