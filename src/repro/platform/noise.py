"""Deterministic, seed-stable measurement noise.

Real benchmarks jitter; the paper's labeling pipeline (convolution with a
±r step kernel) exists to screen that jitter out.  To reproduce the
interaction we perturb simulated durations with a multiplicative lognormal
factor that is a *pure function* of ``(seed, sample index, key)`` — the same
schedule measured twice with the same seed gives identical results, and
results are independent of execution order.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np


def _stable_hash(parts: Tuple) -> int:
    """A process-independent 32-bit hash of a tuple of simple values."""
    data = "\x1f".join(str(p) for p in parts).encode("utf-8")
    return zlib.crc32(data)


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative lognormal jitter on simulated durations.

    ``sigma`` is the standard deviation of the underlying normal in log
    space; ``sigma=0`` disables noise entirely (the default for unit tests).
    The lognormal is mean-corrected so that ``E[factor] = 1``.
    """

    sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.sigma > 0.0

    def factor(self, sample: int, *key) -> float:
        """Jitter multiplier for one (sample, key) pair; deterministic."""
        if not self.enabled:
            return 1.0
        h = _stable_hash((self.seed, sample) + key)
        rng = np.random.Generator(np.random.PCG64(h))
        # Mean-corrected lognormal: E[exp(N(-s^2/2, s^2))] = 1.
        z = rng.standard_normal()
        return math.exp(self.sigma * z - 0.5 * self.sigma * self.sigma)

    def jitter(self, duration: float, sample: int, *key) -> float:
        """Apply the multiplier to ``duration``."""
        if duration <= 0.0 or not self.enabled:
            return duration
        return duration * self.factor(sample, *key)

    def with_sigma(self, sigma: float) -> "NoiseModel":
        return NoiseModel(sigma=sigma, seed=self.seed)

    def with_seed(self, seed: int) -> "NoiseModel":
        return NoiseModel(sigma=self.sigma, seed=seed)
