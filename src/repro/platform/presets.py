"""Platform presets.

:func:`perlmutter_like` stands in for the paper's Table I machine (one
Perlmutter node: AMD EPYC 7713 + 4× NVIDIA A100, Cray-MPICH).  The absolute
rates are published peaks derated to achievable values; what matters for
the reproduction is the *balance* — communication time comparable to the
local multiplication so that overlap decisions dominate, the same balance
the paper engineered by choosing the matrix bandwidth.
"""

from __future__ import annotations

from repro.platform.machine import (
    CpuModel,
    GpuModel,
    MachineConfig,
    NetworkModel,
    Protocol,
)
from repro.platform.noise import NoiseModel


def perlmutter_like(
    *,
    n_ranks: int = 4,
    n_streams: int = 2,
    noise_sigma: float = 0.01,
    noise_seed: int = 0,
) -> MachineConfig:
    """Machine config standing in for the paper's Perlmutter node.

    Defaults match the paper's experiment: 4 MPI ranks in one node, 2 CUDA
    streams per GPU, ~1 % run-to-run jitter.
    """
    return MachineConfig(
        n_ranks=n_ranks,
        n_streams=n_streams,
        gpu=GpuModel(
            flops_per_s=9.0e12,          # A100 FP64 ~9.7 TF/s peak, derated
            mem_bw_bytes_per_s=1.3e12,   # A100 HBM2e ~1.55 TB/s peak, derated
            launch_overhead_s=1.0e-6,
            kernel_min_s=2.0e-6,
            event_record_s=0.3e-6,
            event_sync_overhead_s=0.5e-6,
            stream_wait_overhead_s=0.3e-6,
        ),
        cpu=CpuModel(
            default_op_s=0.5e-6,
            post_msg_s=0.4e-6,
            wait_overhead_s=0.3e-6,
        ),
        net=NetworkModel(
            latency_s=1.5e-6,
            bandwidth_bytes_per_s=20.0e9,  # node-internal MPI p2p (calibrated;
            # gives the paper's ~1.47x spread and 55-80us range on the SpMV)
            eager_threshold_bytes=8192.0,
            protocol=Protocol.RENDEZVOUS,
            serialize_nic=True,
        ),
        noise=NoiseModel(sigma=noise_sigma, seed=noise_seed),
        name="perlmutter-like",
    )


def noiseless(machine: MachineConfig | None = None) -> MachineConfig:
    """Copy of ``machine`` (default: perlmutter_like) with noise disabled."""
    m = machine if machine is not None else perlmutter_like()
    return m.with_noise(NoiseModel(sigma=0.0, seed=m.noise.seed))


def describe(machine: MachineConfig) -> str:
    """Human-readable platform description (Table I analog)."""
    rows = [
        ("Ranks", str(machine.n_ranks)),
        ("GPU streams / rank", str(machine.n_streams)),
        ("GPU FP rate", f"{machine.gpu.flops_per_s / 1e12:.1f} TFLOP/s"),
        ("GPU memory BW", f"{machine.gpu.mem_bw_bytes_per_s / 1e12:.2f} TB/s"),
        ("Kernel launch overhead", f"{machine.gpu.launch_overhead_s * 1e6:.2f} us"),
        ("Min kernel duration", f"{machine.gpu.kernel_min_s * 1e6:.2f} us"),
        ("Net latency", f"{machine.net.latency_s * 1e6:.2f} us"),
        ("Net bandwidth", f"{machine.net.bandwidth_bytes_per_s / 1e9:.1f} GB/s"),
        ("Protocol", machine.net.protocol.value),
        ("NIC serialization", str(machine.net.serialize_nic)),
        ("Noise sigma", f"{machine.noise.sigma:.3f}"),
    ]
    width = max(len(k) for k, _ in rows)
    lines = [f"Platform: {machine.name}"]
    lines += [f"  {k.ljust(width)}  {v}" for k, v in rows]
    return "\n".join(lines)
