"""Cost model: converts vertex :class:`~repro.dag.vertex.Work` to durations.

A simple roofline: a kernel's duration is the maximum of its compute time
(``flops / rate``) and its memory time (``bytes / bandwidth``), floored at
the platform's minimum kernel duration.  Explicit ``Vertex.duration`` values
bypass the model entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dag.program import Program
from repro.dag.vertex import OpKind, Vertex, Work
from repro.platform.machine import MachineConfig


@dataclass(frozen=True)
class CostModel:
    """Maps (vertex, rank) to a base (noise-free) duration in seconds."""

    machine: MachineConfig

    # ------------------------------------------------------------------
    def gpu_kernel_duration(self, work: Optional[Work]) -> float:
        g = self.machine.gpu
        if work is None:
            return g.kernel_min_s
        compute = work.flops / g.flops_per_s
        memory = work.bytes_moved / g.mem_bw_bytes_per_s
        return max(g.kernel_min_s, compute, memory)

    def cpu_op_duration(self, work: Optional[Work]) -> float:
        c = self.machine.cpu
        if work is None:
            return c.default_op_s
        compute = work.flops / c.flops_per_s
        memory = work.bytes_moved / c.mem_bw_bytes_per_s
        return max(c.default_op_s, compute, memory)

    # ------------------------------------------------------------------
    def base_duration(self, program: Program, vertex: Vertex, rank: int) -> float:
        """Noise-free duration of ``vertex`` on ``rank``.

        For CPU vertices with post/wait actions this is only the fixed part;
        per-message posting costs are added by the executor, and wait
        blocking lasts until the awaited condition holds.
        """
        if vertex.duration is not None:
            return vertex.duration
        g = self.machine.gpu
        if vertex.kind is OpKind.EVENT_RECORD:
            return g.event_record_s
        if vertex.kind is OpKind.EVENT_SYNC:
            return g.event_sync_overhead_s
        if vertex.kind is OpKind.STREAM_WAIT:
            return g.stream_wait_overhead_s
        if vertex.kind in (OpKind.START, OpKind.END):
            return 0.0
        # Program vertices (CPU / GPU) may carry per-rank work overrides.
        work = program.work_for(vertex, rank)
        if vertex.kind is OpKind.GPU:
            return self.gpu_kernel_duration(work)
        return self.cpu_op_duration(work)

    def post_message_cost(self) -> float:
        return self.machine.cpu.post_msg_s

    def wait_overhead(self) -> float:
        return self.machine.cpu.wait_overhead_s

    def launch_overhead(self) -> float:
        return self.machine.gpu.launch_overhead_s

    def transfer_time(self, nbytes: float) -> float:
        return self.machine.net.transfer_time(nbytes)
