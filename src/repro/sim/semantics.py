"""Numeric payload execution and data-hazard tracking.

The real system runs real kernels, so a bad schedule would compute garbage.
Our simulator reproduces that check: vertices may carry *payload callbacks*
that operate on per-rank NumPy buffers, executed in simulated-time order, so
running a schedule also computes the program's actual result (e.g. the SpMV
``y = Ax``), which tests compare against a reference.

:class:`HazardTracker` additionally verifies producer-before-consumer
ordering on declared buffer names: a vertex ``writes`` buffers (marking
them ready at its completion time) and ``reads`` buffers (checked at its
start time).  A schedule that lets a consumer start before its producer
completed is reported as a hazard — the simulated analog of reading a
half-packed buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import HazardError


@dataclass
class Hazard:
    """One observed read-before-ready violation."""

    rank: int
    op: str
    buffer: str
    read_at: float

    def __str__(self) -> str:
        return (
            f"rank {self.rank}: {self.op!r} read buffer {self.buffer!r} at "
            f"t={self.read_at:g} before it was marked ready"
        )


class HazardTracker:
    """Tracks buffer readiness per rank and records violations."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._ready: Dict[Tuple[int, str], float] = {}
        self.hazards: List[Hazard] = []

    def mark_ready(self, rank: int, buffer: str, at: float) -> None:
        self._ready[(rank, buffer)] = at

    def is_ready(self, rank: int, buffer: str) -> bool:
        return (rank, buffer) in self._ready

    def check_read(self, rank: int, op: str, buffer: str, at: float) -> None:
        ready_at = self._ready.get((rank, buffer))
        if ready_at is None or ready_at > at:
            hazard = Hazard(rank=rank, op=op, buffer=buffer, read_at=at)
            self.hazards.append(hazard)
            if self.strict:
                raise HazardError(str(hazard))

    @property
    def clean(self) -> bool:
        return not self.hazards


class RankContext:
    """Per-rank namespace of named numeric buffers.

    Payload callbacks receive this object; they read and write
    ``ctx.buffers[name]`` (NumPy arrays or any Python values) and may stash
    scratch state in ``ctx.scratch``.
    """

    def __init__(self, rank: int, n_ranks: int) -> None:
        self.rank = rank
        self.n_ranks = n_ranks
        self.buffers: Dict[str, Any] = {}
        self.scratch: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankContext(rank={self.rank}, buffers={sorted(self.buffers)})"


class PayloadContext:
    """All ranks' buffer namespaces plus the hazard tracker.

    Message payload copies (``Message.src_buf`` → ``Message.dst_buf``) go
    through :meth:`transfer`, which snapshots the source buffer (the wire
    has no reference semantics).
    """

    def __init__(self, n_ranks: int, strict_hazards: bool = False) -> None:
        self.ranks = [RankContext(r, n_ranks) for r in range(n_ranks)]
        self.hazards = HazardTracker(strict=strict_hazards)

    def __getitem__(self, rank: int) -> RankContext:
        return self.ranks[rank]

    def transfer(self, src: int, dst: int, src_buf: str, dst_buf: str) -> None:
        import numpy as np

        value = self.ranks[src].buffers.get(src_buf)
        if value is None:
            # Nothing staged; model an uninitialized read as zeros-of-unknown
            # shape — leave destination untouched but record via hazard path.
            return
        if isinstance(value, np.ndarray):
            self.ranks[dst].buffers[dst_buf] = value.copy()
        else:
            self.ranks[dst].buffers[dst_buf] = value
