"""GPU streams and CUDA events (paper §II).

"A GPU stream is a queue of [operations] in which each operation must
complete before the next begins. ... A CUDA event represents a particular
point in a stream's execution" — the CPU can block on it
(``cudaEventSynchronize``) or another stream can (``cudaStreamWaitEvent``).

A :class:`Stream` is a simulation process draining a FIFO of
:class:`StreamItem`; :class:`CudaEvent` wraps an engine event plus recorded
state so waits placed before the record (legal in CUDA only if the event
object exists; here creation is implicit at first reference) behave like
CUDA: waiting on an already-fired event proceeds immediately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class CudaEvent:
    """A CUDA event: fires when the recording stream reaches the record op.

    ``source_stream`` records which stream fired the event; waits on
    another *device*'s event pay an inter-GPU fence penalty.
    """

    __slots__ = ("name", "_evt", "fired_at", "source_stream")

    def __init__(self, env: Environment, name: str) -> None:
        self.name = name
        self._evt = Event(env, label=f"cuda_event:{name}")
        self.fired_at: Optional[float] = None
        self.source_stream: Optional[int] = None

    @property
    def fired(self) -> bool:
        return self._evt.triggered

    def fire(self, now: float, source_stream: Optional[int] = None) -> None:
        if self.fired:
            raise SimulationError(f"CUDA event {self.name!r} recorded twice")
        self.fired_at = now
        self.source_stream = source_stream
        self._evt.succeed()

    @property
    def wait_event(self) -> Event:
        """Engine event to yield on; already-fired events resume immediately."""
        return self._evt


@dataclass
class StreamItem:
    """One entry in a stream's FIFO queue."""

    kind: str  # "kernel" | "record" | "wait"
    name: str
    duration: float = 0.0
    event: Optional[CudaEvent] = None
    on_complete: Optional[Callable[[float], None]] = None


class Stream:
    """FIFO GPU stream as a simulation process.

    The CPU enqueues items; the stream executes them in order:

    * ``kernel`` — advance time by the kernel duration, then invoke the
      completion callback (used for tracing, payload execution, and
      dependency bookkeeping);
    * ``record`` — fire the attached :class:`CudaEvent` at the current time;
    * ``wait``  — block the stream until the attached event has fired.
    """

    def __init__(
        self,
        env: Environment,
        rank: int,
        stream_id: int,
        gpu: int = 0,
        cross_gpu_extra_s: float = 0.0,
    ) -> None:
        self.env = env
        self.rank = rank
        self.stream_id = stream_id
        self.gpu = gpu
        self.cross_gpu_extra_s = cross_gpu_extra_s
        self.name = f"rank{rank}.stream{stream_id}"
        self._queue: Deque[StreamItem] = deque()
        self._wakeup: Optional[Event] = None
        self._idle = True
        self._drained = Event(env, label=f"{self.name}.init-drained")
        self._drained.succeed()
        self.busy_until = 0.0
        env.process(self._run(), name=self.name, daemon=True)

    # ------------------------------------------------------------------
    def enqueue(self, item: StreamItem) -> None:
        self._queue.append(item)
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.triggered:
            # Clear before firing: the resumed stream may drain the queue
            # and install a *new* wakeup synchronously inside succeed().
            self._wakeup = None
            wakeup.succeed()

    def drained_event(self) -> Event:
        """Event firing when the queue (as of now) is fully executed.

        Implemented by enqueueing an internal record; used by the device
        synchronize at program ``end``.
        """
        marker = CudaEvent(self.env, f"{self.name}.drain")
        self.enqueue(StreamItem(kind="record", name=f"{self.name}.drain", event=marker))
        return marker.wait_event

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            if not self._queue:
                self._wakeup = Event(self.env, label=f"{self.name}.wakeup")
                yield self._wakeup
                continue
            item = self._queue.popleft()
            if item.kind == "kernel":
                start = self.env.now
                if item.duration > 0:
                    yield self.env.timeout(item.duration, label=item.name)
                self.busy_until = self.env.now
                if item.on_complete is not None:
                    item.on_complete(start)
            elif item.kind == "record":
                assert item.event is not None
                item.event.fire(self.env.now, source_stream=self.stream_id)
                if item.on_complete is not None:
                    item.on_complete(self.env.now)
            elif item.kind == "wait":
                assert item.event is not None
                if not item.event.fired:
                    yield item.event.wait_event
                extra = self._cross_gpu_penalty(item.event)
                if extra > 0:
                    yield self.env.timeout(extra, label=f"{item.name}.xgpu")
                if item.on_complete is not None:
                    item.on_complete(self.env.now)
            else:  # pragma: no cover - guarded by construction
                raise SimulationError(f"unknown stream item kind {item.kind!r}")

    def _cross_gpu_penalty(self, event: CudaEvent) -> float:
        """Inter-device fence cost when waiting on another GPU's event.

        The drain markers used by device synchronize record on the waiting
        stream itself (same device), so they never pay this.
        """
        src = event.source_stream
        if src is None or self._gpu_of is None:
            return 0.0
        if self._gpu_of(src) == self.gpu:
            return 0.0
        return self.cross_gpu_extra_s

    _gpu_of = None  # injected by StreamSet


class StreamSet:
    """All streams of one rank, plus the rank's CUDA event namespace."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        n_streams: int,
        n_gpus: int = 1,
        cross_gpu_extra_s: float = 0.0,
    ) -> None:
        self.env = env
        self.rank = rank
        self.n_gpus = n_gpus
        self.streams: List[Stream] = [
            Stream(
                env,
                rank,
                s,
                gpu=s % n_gpus,
                cross_gpu_extra_s=cross_gpu_extra_s,
            )
            for s in range(n_streams)
        ]
        gpu_of = lambda sid: sid % n_gpus  # noqa: E731 - tiny closure
        for stream in self.streams:
            stream._gpu_of = gpu_of
        self._events: Dict[str, CudaEvent] = {}

    def stream(self, stream_id: int) -> Stream:
        try:
            return self.streams[stream_id]
        except IndexError:
            raise SimulationError(
                f"rank {self.rank}: stream {stream_id} out of range "
                f"(have {len(self.streams)})"
            ) from None

    def cuda_event(self, name: str) -> CudaEvent:
        """Get or create the named CUDA event (per-rank namespace)."""
        evt = self._events.get(name)
        if evt is None:
            evt = CudaEvent(self.env, f"rank{self.rank}:{name}")
            self._events[name] = evt
        return evt

    def device_synchronize_event(self) -> Event:
        """Event firing when every stream has drained its current queue."""
        return self.env.all_of(
            [s.drained_event() for s in self.streams],
            label=f"rank{self.rank}.device_sync",
        )
