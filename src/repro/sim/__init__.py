"""Discrete-event simulation of a multi-rank CUDA+MPI platform.

This package is the hardware substitute for the paper's Perlmutter testbed:
a deterministic discrete-event simulator with

* a generator-based simulation kernel (:mod:`repro.sim.engine`),
* FIFO GPU streams with CUDA-event semantics (:mod:`repro.sim.stream`),
* an MPI network engine with message matching and an α-β transfer model
  (:mod:`repro.sim.network`),
* a schedule executor that interprets a bound operation sequence per rank
  (:mod:`repro.sim.executor`),
* a compiled batch backend that replays whole schedule blocks as numpy
  array sweeps, bit-identical to the reference engine
  (:mod:`repro.sim.batch`), and
* timeline tracing and a numeric-payload context for end-to-end
  verification (:mod:`repro.sim.trace`, :mod:`repro.sim.semantics`).
"""

from repro.sim.batch import (
    SIM_BACKENDS,
    CompiledContext,
    compile_context,
    resolve_backend,
)
from repro.sim.engine import AllOf, AnyOf, Environment, Event, Process, Timeout
from repro.sim.executor import ScheduleExecutor, SimResult
from repro.sim.measure import Benchmarker, Measurement, MeasurementConfig
from repro.sim.semantics import HazardTracker, PayloadContext, RankContext
from repro.sim.trace import Gantt, Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Benchmarker",
    "compile_context",
    "CompiledContext",
    "Environment",
    "Event",
    "Gantt",
    "HazardTracker",
    "Measurement",
    "MeasurementConfig",
    "PayloadContext",
    "Process",
    "RankContext",
    "resolve_backend",
    "ScheduleExecutor",
    "SIM_BACKENDS",
    "SimResult",
    "Timeout",
    "Trace",
    "TraceRecord",
]
