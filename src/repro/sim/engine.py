"""A small generator-based discrete-event simulation kernel.

Processes are Python generators that ``yield`` waitables (:class:`Event`,
:class:`Timeout`, :class:`AllOf`, :class:`AnyOf`); the
:class:`Environment` advances simulated time by draining a priority queue
of scheduled event firings.  The design follows the SimPy process model but
is self-contained, deterministic (ties broken by insertion order), and adds
deadlock detection: if the queue drains while processes are still blocked,
:class:`~repro.errors.DeadlockError` is raised with a description of who is
waiting on what.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError


class Event:
    """A one-shot event that processes can wait on.

    Events carry an optional value, delivered as the result of the ``yield``
    in the waiting process.
    """

    __slots__ = ("env", "triggered", "value", "_callbacks", "label")

    def __init__(self, env: "Environment", label: str = "") -> None:
        self.env = env
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self.label = label

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now, resuming all waiters. Fails if already fired."""
        if self.triggered:
            raise SimulationError(f"event {self.label!r} fired twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.triggered else "pending"
        return f"Event({self.label!r}, {state})"


class Timeout(Event):
    """Event that fires ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, label: str = "") -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(env, label or f"timeout+{delay:g}")
        env._schedule(env.now + delay, self)


class _Composite(Event):
    __slots__ = ("_pending",)

    def __init__(self, env: "Environment", events: Iterable[Event], label: str) -> None:
        super().__init__(env, label)
        events = list(events)
        self._pending = 0
        if not events:
            # Fire immediately via the queue to preserve causal ordering.
            env._schedule(env.now, self)
            return
        self._arm(events)

    def _arm(self, events: List[Event]) -> None:
        raise NotImplementedError


class AllOf(_Composite):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event], label: str = "all") -> None:
        super().__init__(env, events, label)

    def _arm(self, events: List[Event]) -> None:
        self._pending = len(events)

        def on_fire(_evt: Event) -> None:
            self._pending -= 1
            if self._pending == 0 and not self.triggered:
                self.succeed()

        for e in events:
            e.add_callback(on_fire)


class AnyOf(_Composite):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event], label: str = "any") -> None:
        super().__init__(env, events, label)

    def _arm(self, events: List[Event]) -> None:
        def on_fire(evt: Event) -> None:
            if not self.triggered:
                self.succeed(evt.value)

        for e in events:
            e.add_callback(on_fire)


class Process:
    """A running simulation process wrapping a generator.

    The generator yields waitables; the process resumes with the waitable's
    value when it fires.  ``Process.done`` is itself an :class:`Event` that
    fires with the generator's return value.
    """

    __slots__ = ("env", "name", "_gen", "done", "_waiting_on", "daemon")

    def __init__(
        self,
        env: "Environment",
        gen: Generator[Event, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ) -> None:
        self.env = env
        self.name = name
        self._gen = gen
        self.daemon = daemon
        self.done = Event(env, label=f"{name}.done")
        self._waiting_on: Optional[Event] = None
        env._live_processes.append(self)
        # Start on the next queue drain at current time (causal ordering).
        kick = Event(env, label=f"{name}.start")
        env._schedule(env.now, kick)
        kick.add_callback(lambda _e: self._resume(None))

    @property
    def alive(self) -> bool:
        return not self.done.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        return self._waiting_on

    def _resume(self, value: Any) -> None:
        self._waiting_on = None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self.env._live_processes.remove(self)
            self.done.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances"
            )
        self._waiting_on = target
        target.add_callback(lambda evt: self._resume(evt.value))


class Environment:
    """Simulation environment: clock + event queue + process registry."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._live_processes: List[Process] = []

    # ------------------------------------------------------------------
    def _schedule(self, at: float, event: Event) -> None:
        if at < self.now:
            raise SimulationError(
                f"cannot schedule event at {at} before now={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, event))

    # public factory helpers -------------------------------------------
    def event(self, label: str = "") -> Event:
        return Event(self, label)

    def timeout(self, delay: float, label: str = "") -> Timeout:
        return Timeout(self, delay, label)

    def all_of(self, events: Iterable[Event], label: str = "all") -> AllOf:
        return AllOf(self, events, label)

    def any_of(self, events: Iterable[Event], label: str = "any") -> AnyOf:
        return AnyOf(self, events, label)

    def process(
        self,
        gen: Generator[Event, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ) -> Process:
        """Start a process.  Daemon processes (e.g. GPU stream servers) are
        allowed to outlive the event queue without tripping deadlock
        detection."""
        return Process(self, gen, name, daemon)

    def fire_at(self, at: float, label: str = "") -> Event:
        """An event that fires at absolute time ``at``."""
        e = Event(self, label or f"at{at:g}")
        self._schedule(at, e)
        return e

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue; returns the final simulation time.

        Raises :class:`DeadlockError` if the queue empties while processes
        are still alive (e.g. waiting on an event nobody will fire).
        """
        while self._queue:
            at, _seq, event = heapq.heappop(self._queue)
            if until is not None and at > until:
                self.now = until
                return self.now
            self.now = at
            if not event.triggered:
                event.succeed(event.value)
        blocked = [p for p in self._live_processes if not p.daemon]
        if blocked:
            waiters = ", ".join(
                f"{p.name} waiting on {p.waiting_on!r}" for p in blocked
            )
            raise DeadlockError(
                f"simulation deadlock at t={self.now:g}: {waiters}"
            )
        return self.now


class Channel:
    """A capacity-1 serializing resource (e.g. one direction of a NIC).

    ``acquire_for(duration)`` returns an event that fires when the caller's
    exclusive occupation of the channel *ends*; occupations are granted in
    request order starting no earlier than the request time.
    """

    __slots__ = ("env", "name", "_free_at")

    def __init__(self, env: Environment, name: str = "channel") -> None:
        self.env = env
        self.name = name
        self._free_at = 0.0

    def occupy(self, start: float, duration: float) -> Tuple[float, float]:
        """Reserve the channel for ``duration`` starting no earlier than
        ``start``; returns the actual (begin, end) interval."""
        begin = max(start, self._free_at)
        end = begin + duration
        self._free_at = end
        return begin, end

    @property
    def free_at(self) -> float:
        return self._free_at
