"""Execute a :class:`~repro.schedule.schedule.Schedule` on a simulated machine.

Every rank runs the same launch sequence (SPMD), interpreted by a CPU
process exactly as the paper describes the programming model (§III-A): "a
CPU control thread offloads the bulk of the compute to asynchronous GPU
operations, coordinated with asynchronous MPI communication, and
interspersed with a small amount of synchronous CPU operations".

Per-op CPU behaviour:

=====================  ==================================================
Op kind                CPU behaviour
=====================  ==================================================
CPU                    advance by the op duration; perform its MPI action
                       (post / wait) if any
GPU (bound)            pay launch overhead, enqueue kernel on its stream
cudaEventRecord        pay call overhead, enqueue record on its stream
cudaEventSynchronize   pay call overhead, block until the event fires
cudaStreamWaitEvent    pay call overhead, enqueue wait on its stream
=====================  ==================================================

After the sequence the rank performs a device synchronize (the artificial
``end`` vertex) and waits for any still-pending MPI requests it posted.
The run's elapsed time is the maximum completion time across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dag.program import Message, Program
from repro.dag.vertex import ActionKind, OpKind
from repro.errors import ScheduleError, SimulationError
from repro.platform.costs import CostModel
from repro.platform.machine import MachineConfig
from repro.schedule.schedule import BoundOp, Schedule
from repro.sim.engine import Environment
from repro.sim.network import MpiRequest, Network
from repro.sim.semantics import PayloadContext
from repro.sim.stream import StreamItem, StreamSet
from repro.sim.trace import Trace


@dataclass
class SimResult:
    """Outcome of simulating one schedule once."""

    #: Completion time of the slowest rank (the program's elapsed time).
    elapsed: float
    #: Completion time per rank.
    per_rank: List[float]
    #: Timeline (populated when tracing was requested).
    trace: Optional[Trace] = None
    #: Numeric buffers (populated when a payload context was supplied).
    payload: Optional[PayloadContext] = None
    #: Number of point-to-point transfers performed.
    n_transfers: int = 0

    @property
    def hazard_free(self) -> bool:
        return self.payload is None or self.payload.hazards.clean


#: Optional factory initializing per-rank buffers before execution.
PayloadInit = Callable[[PayloadContext], None]


class ScheduleExecutor:
    """Runs schedules of one program on one machine configuration."""

    def __init__(
        self,
        program: Program,
        machine: MachineConfig,
        *,
        collect_trace: bool = False,
        payload_init: Optional[PayloadInit] = None,
        strict_hazards: bool = False,
    ) -> None:
        if program.n_ranks != machine.n_ranks:
            raise SimulationError(
                f"program targets {program.n_ranks} ranks but machine has "
                f"{machine.n_ranks}"
            )
        self.program = program
        self.machine = machine
        self.cost = CostModel(machine)
        self.collect_trace = collect_trace
        self.payload_init = payload_init
        self.strict_hazards = strict_hazards

    # ------------------------------------------------------------------
    def run(self, schedule: Schedule, sample: int = 0) -> SimResult:
        """Simulate one invocation of ``schedule``; deterministic in
        ``(schedule, sample, machine.noise.seed)``."""
        env = Environment()
        trace = Trace() if self.collect_trace else None
        payload: Optional[PayloadContext] = None
        if self.payload_init is not None:
            payload = PayloadContext(
                self.program.n_ranks, strict_hazards=self.strict_hazards
            )
            self.payload_init(payload)

        def on_transfer(msg: Message, begin: float, end: float) -> None:
            if trace is not None:
                trace.add(msg.src, "net", f"xfer->{msg.dst}", begin, end)
            if payload is not None:
                if msg.hazard_buf:
                    payload.hazards.check_read(
                        msg.src,
                        f"transfer:{msg.src}->{msg.dst}",
                        msg.hazard_buf,
                        begin,
                    )
                if msg.src_buf and msg.dst_buf:
                    payload.transfer(msg.src, msg.dst, msg.src_buf, msg.dst_buf)
                    payload.hazards.mark_ready(msg.dst, msg.dst_buf, end)

        net = Network(
            env,
            self.machine.net,
            self.machine.noise,
            sample=sample,
            on_transfer=on_transfer,
        )
        stream_sets = [
            StreamSet(
                env,
                rank,
                self.machine.n_streams,
                n_gpus=self.machine.n_gpus,
                cross_gpu_extra_s=self.machine.gpu.cross_gpu_sync_extra_s,
            )
            for rank in range(self.machine.n_ranks)
        ]
        finish_at: List[float] = [0.0] * self.machine.n_ranks
        for rank in range(self.machine.n_ranks):
            env.process(
                self._cpu_process(
                    env, rank, schedule, sample, net, stream_sets[rank],
                    trace, payload, finish_at,
                ),
                name=f"rank{rank}.cpu",
            )
        env.run()
        net.assert_drained()
        elapsed = max(finish_at)
        return SimResult(
            elapsed=elapsed,
            per_rank=list(finish_at),
            trace=trace,
            payload=payload,
            n_transfers=net.n_transfers,
        )

    # ------------------------------------------------------------------
    def _jitter(self, duration: float, sample: int, rank: int, *key) -> float:
        return self.machine.noise.jitter(duration, sample, rank, *key)

    def _cpu_process(
        self,
        env: Environment,
        rank: int,
        schedule: Schedule,
        sample: int,
        net: Network,
        streams: StreamSet,
        trace: Optional[Trace],
        payload: Optional[PayloadContext],
        finish_at: List[float],
    ):
        program = self.program
        cost = self.cost
        requests: Dict[str, Dict[str, List[MpiRequest]]] = {}

        def record_cpu(op_name: str, start: float) -> None:
            if trace is not None and env.now > start:
                trace.add(rank, "cpu", op_name, start, env.now)

        def run_payload(op: BoundOp, start: float) -> None:
            """Hazard checks + numeric callback at op completion."""
            if payload is None:
                return
            v = op.vertex
            for buf in v.reads:
                payload.hazards.check_read(rank, v.name, buf, start)
            fn = program.payload_fn(v)
            if fn is not None:
                fn(payload[rank])
            for buf in v.writes:
                payload.hazards.mark_ready(rank, buf, env.now)

        for op in schedule.ops:
            v = op.vertex
            start = env.now
            if v.kind is OpKind.CPU:
                dur = self._jitter(
                    cost.base_duration(program, v, rank), sample, rank, v.name
                )
                if dur > 0:
                    yield env.timeout(dur)
                if v.action is not None:
                    yield from self._do_action(
                        env, rank, op, sample, net, requests, payload
                    )
                run_payload(op, start)
                record_cpu(v.name, start)
            elif v.kind is OpKind.GPU:
                launch = self._jitter(
                    cost.launch_overhead(), sample, rank, v.name, "launch"
                )
                if launch > 0:
                    yield env.timeout(launch)
                kdur = self._jitter(
                    cost.base_duration(program, v, rank), sample, rank, v.name
                )

                def kernel_done(kstart: float, op=op) -> None:
                    if trace is not None:
                        trace.add(
                            rank, f"stream{op.stream}", op.name, kstart, env.now
                        )
                    run_payload(op, kstart)

                streams.stream(op.stream).enqueue(
                    StreamItem(
                        kind="kernel",
                        name=v.name,
                        duration=kdur,
                        on_complete=kernel_done,
                    )
                )
                record_cpu(f"launch:{v.name}", start)
            elif v.kind is OpKind.EVENT_RECORD:
                dur = cost.base_duration(program, v, rank)
                if dur > 0:
                    yield env.timeout(dur)
                evt = streams.cuda_event(op.event)
                streams.stream(op.stream).enqueue(
                    StreamItem(kind="record", name=v.name, event=evt)
                )
                record_cpu(v.name, start)
            elif v.kind is OpKind.EVENT_SYNC:
                dur = cost.base_duration(program, v, rank)
                if dur > 0:
                    yield env.timeout(dur)
                evt = streams.cuda_event(op.event)
                if not evt.fired:
                    yield evt.wait_event
                record_cpu(v.name, start)
            elif v.kind is OpKind.STREAM_WAIT:
                dur = cost.base_duration(program, v, rank)
                if dur > 0:
                    yield env.timeout(dur)
                evt = streams.cuda_event(op.event)
                streams.stream(op.stream).enqueue(
                    StreamItem(kind="wait", name=v.name, event=evt)
                )
                record_cpu(v.name, start)
            elif v.kind in (OpKind.START, OpKind.END):
                raise ScheduleError(
                    f"artificial vertex {v.name!r} must not appear in a "
                    f"schedule"
                )
            else:  # pragma: no cover - exhaustive above
                raise SimulationError(f"unhandled op kind {v.kind}")

        # Artificial `end`: device synchronize + complete leftover requests.
        sync_start = env.now
        yield streams.device_synchronize_event()
        pending = [
            req.done
            for groups in requests.values()
            for reqs in groups.values()
            for req in reqs
            if not req.is_complete
        ]
        if pending:
            yield env.all_of(pending, label=f"rank{rank}.finalize")
        record_cpu("end", sync_start)
        finish_at[rank] = env.now

    # ------------------------------------------------------------------
    def _do_action(
        self,
        env: Environment,
        rank: int,
        op: BoundOp,
        sample: int,
        net: Network,
        requests: Dict[str, Dict[str, List[MpiRequest]]],
        payload: Optional[PayloadContext],
    ):
        action = op.vertex.action
        assert action is not None
        plan = self.program.comm_plan(action.group)
        group = requests.setdefault(action.group, {"sends": [], "recvs": []})
        post_cost = self.cost.post_message_cost()
        if action.kind is ActionKind.POST_SENDS:
            for msg in plan.sends_from(rank):
                dt = self._jitter(post_cost, sample, rank, op.name, msg.dst)
                if dt > 0:
                    yield env.timeout(dt)
                group["sends"].append(net.post_send(msg))
        elif action.kind is ActionKind.POST_RECVS:
            for msg in plan.recvs_to(rank):
                dt = self._jitter(post_cost, sample, rank, op.name, msg.src)
                if dt > 0:
                    yield env.timeout(dt)
                group["recvs"].append(net.post_recv(msg))
        elif action.kind in (ActionKind.WAIT_SENDS, ActionKind.WAIT_RECVS):
            kind = "sends" if action.kind is ActionKind.WAIT_SENDS else "recvs"
            expected = (
                plan.sends_from(rank)
                if action.kind is ActionKind.WAIT_SENDS
                else plan.recvs_to(rank)
            )
            if expected and not group[kind]:
                raise ScheduleError(
                    f"rank {rank}: {op.name!r} waits on comm group "
                    f"{action.group!r} before its messages were posted"
                )
            dt = self.cost.wait_overhead()
            if dt > 0:
                yield env.timeout(dt)
            outstanding = [r.done for r in group[kind] if not r.is_complete]
            if outstanding:
                yield env.all_of(outstanding, label=f"rank{rank}.{op.name}")
        elif action.kind is ActionKind.NOOP:
            return
        else:  # pragma: no cover - exhaustive above
            raise SimulationError(f"unhandled action {action.kind}")
