"""Compiled batch simulation backend.

The reference engine (:mod:`repro.sim.engine` + :class:`ScheduleExecutor`)
re-instantiates a discrete-event loop — one Python generator per op and
per stream — for every single schedule it simulates, even though the
program DAG, machine preset, and measurement protocol are fixed for an
entire sweep.  This module compiles that fixed ``(program, machine,
MeasurementConfig)`` context **once** into flat structure-of-arrays form
and then replays whole schedule blocks through an array sweep: one numpy
operation per schedule position per rank, vectorized over the batch
dimension.

Bit-identity contract
---------------------

Replayed measurements are bit-identical to the reference engine, not
merely close.  Within one rank the engine's timing arithmetic reduces to
IEEE-exact ``(+, max)`` recurrences over a small state vector — the CPU
clock ``t``, per-stream clocks, and per-event fire times:

* CPU op           ``t += dur``
* GPU op           ``t += launch; clock[s] = max(clock[s], t) + kdur``
* event record     ``t += dur; p = max(clock[s], t); ev[e] = p;``
                   ``clock[s] = p``
* event sync       ``t += dur; t = max(t, ev[e])``
* stream wait      ``t += dur; clock[s] = max(clock[s], t, ev[e]) +``
                   ``cross_gpu_extra`` (other-device events only)
* program end      ``finish = max(t, max_s clock[s])``  (device sync)

These are insensitive to event-loop tie ordering, so evaluating them as
numpy float64 column sweeps reproduces the engine bit for bit.  Noise is
a pure function of ``(seed, sample, rank, op name)`` — schedule
independent — so jittered duration tables are precomputed per sample and
shared by every schedule in the block.

What falls back
---------------

Anything whose timing is *not* a per-rank recurrence goes to the
reference engine, transparently and counted in metrics
(``sim.fallbacks``):

* programs with MPI actions (cross-rank NIC-channel occupancy depends on
  event tie order at equal timestamps) — a compile-time check;
* schedules that use an event before (or without) recording it, record
  an event twice, reference unknown ops or out-of-range streams, or
  contain artificial START/END vertices — per-schedule
  :meth:`CompiledContext.supports` checks, which also preserve the
  reference engine's error behaviour for degenerate schedules.

``ActionKind.NOOP`` actions have zero timing effect and stay on the
batch path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.dag.program import Program
from repro.dag.vertex import ActionKind, OpKind
from repro.platform.costs import CostModel
from repro.platform.machine import MachineConfig
from repro.schedule.schedule import Schedule
from repro.sim.measure import Benchmarker, Measurement, MeasurementConfig

#: Backend names accepted by the exec layer's ``sim_backend`` knob.
SIM_BACKENDS = ("reference", "batch", "auto")

_CPU = 0
_GPU = 1
_RECORD = 2
_SYNC = 3
_WAIT = 4

_KIND_CODE = {
    OpKind.CPU: _CPU,
    OpKind.GPU: _GPU,
    OpKind.EVENT_RECORD: _RECORD,
    OpKind.EVENT_SYNC: _SYNC,
    OpKind.STREAM_WAIT: _WAIT,
}

_N_COMPILES = 0


def compile_count() -> int:
    """Process-global number of :func:`compile_context` calls (test hook)."""
    return _N_COMPILES


class _Pack:
    """One schedule block packed to ``[B, L]`` arrays in position order.

    ``vid`` indexes the compiled per-sample duration tables and is only
    meaningful for program (CPU/GPU) ops; sync ops — typically inserted
    by the design space's sync plan, so not program vertices at all —
    carry their rank- and sample-independent call overhead directly in
    ``dur``.  Rows shorter than ``L`` are padded with kind ``-1`` (never
    the case for schedules of one design space, but packing stays
    defensive).
    """

    __slots__ = ("kind", "vid", "sid", "eid", "dur", "n_events")

    def __init__(
        self,
        kind: np.ndarray,
        vid: np.ndarray,
        sid: np.ndarray,
        eid: np.ndarray,
        dur: np.ndarray,
        n_events: int,
    ) -> None:
        self.kind = kind
        self.vid = vid
        self.sid = sid
        self.eid = eid
        self.dur = dur
        self.n_events = n_events


class CompiledContext:
    """A ``(program, machine, MeasurementConfig)`` context compiled for replay.

    Construction is cheap relative to one simulation sweep but not free;
    build it once per process (see ``SerialEvaluator`` /
    ``ParallelEvaluator``) and reuse it across blocks.  ``ok`` is the
    compile-time capability verdict; when ``False``, ``reason`` names the
    unsupported feature and :meth:`supports` rejects every schedule.
    """

    def __init__(
        self,
        program: Program,
        machine: MachineConfig,
        config: MeasurementConfig = MeasurementConfig(),
        *,
        sample_offset: int = 0,
    ) -> None:
        self.program = program
        self.machine = machine
        self.config = config
        self.sample_offset = sample_offset
        self.n_ranks = machine.n_ranks
        self.n_streams = machine.n_streams
        self.n_gpus = machine.n_gpus
        self._noise = machine.noise
        cross = machine.gpu.cross_gpu_sync_extra_s
        # The engine only pays the penalty when it is strictly positive.
        self._cross_extra = cross if cross > 0 else 0.0
        self._sync_dur = {
            _RECORD: machine.gpu.event_record_s,
            _SYNC: machine.gpu.event_sync_overhead_s,
            _WAIT: machine.gpu.stream_wait_overhead_s,
        }

        self._vertices = tuple(program.schedulable_vertices())
        self._by_name = {v.name: v for v in self._vertices}
        self._vid = {v.name: j for j, v in enumerate(self._vertices)}

        self.ok = True
        self.reason = ""
        if program.n_ranks != machine.n_ranks:
            self.ok = False
            self.reason = "rank-mismatch"
        else:
            for v in self._vertices:
                if v.action is not None and v.action.kind is not ActionKind.NOOP:
                    # Cross-rank NIC occupancy depends on event tie order.
                    self.ok = False
                    self.reason = "mpi-comm"
                    break

        cost = CostModel(machine)
        self._launch = cost.launch_overhead()
        n_v = len(self._vertices)
        self._base = np.zeros((self.n_ranks, n_v))
        if self.ok:
            for r in range(self.n_ranks):
                for j, v in enumerate(self._vertices):
                    self._base[r, j] = cost.base_duration(program, v, r)
        # Per-sample jittered duration tables: adv = CPU-side advance of
        # each op (CPU duration / GPU launch / sync-call overhead), kdur =
        # GPU kernel duration.  Noise keys are schedule-independent, so
        # one table per absolute sample index serves every schedule.
        self._tables: Dict[Optional[int], Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def unsupported_reason(self, schedule: Schedule) -> Optional[str]:
        """Why ``schedule`` cannot be replayed, or ``None`` if it can.

        Beyond the compile-time verdict this enforces the single-forward-
        sweep requirement (every event recorded at an earlier schedule
        position than its uses) and rejects exactly the degenerate
        schedules the reference engine errors or deadlocks on, so the
        fallback path preserves reference behaviour.
        """
        if not self.ok:
            return self.reason
        recorded = set()
        for op in schedule.ops:
            code = _KIND_CODE.get(op.vertex.kind)
            if code is None:
                return f"op-kind:{op.vertex.kind.value}"
            known = self._by_name.get(op.name)
            if known is not None:
                if known != op.vertex:
                    return f"op-mismatch:{op.name}"
            elif code in (_CPU, _GPU):
                # Program ops must come from the compiled program; sync
                # ops are inserted by the design space and priced from
                # machine scalars alone.
                return f"unknown-op:{op.name}"
            if op.stream is not None and not 0 <= op.stream < self.n_streams:
                return f"stream-out-of-range:{op.stream}"
            if code == _RECORD:
                if op.event in recorded:
                    return f"event-rerecord:{op.event}"
                recorded.add(op.event)
            elif code in (_SYNC, _WAIT) and op.event not in recorded:
                return f"event-before-record:{op.event}"
        return None

    def supports(self, schedule: Schedule) -> bool:
        return self.unsupported_reason(schedule) is None

    # ------------------------------------------------------------------
    def _pack(self, schedules: Sequence[Schedule]) -> _Pack:
        n_rows = len(schedules)
        n_cols = max(len(s) for s in schedules)
        kind = np.full((n_rows, n_cols), -1, dtype=np.int64)
        vid = np.zeros((n_rows, n_cols), dtype=np.int64)
        sid = np.zeros((n_rows, n_cols), dtype=np.int64)
        eid = np.zeros((n_rows, n_cols), dtype=np.int64)
        dur = np.zeros((n_rows, n_cols))
        events: Dict[str, int] = {}
        for b, s in enumerate(schedules):
            for i, op in enumerate(s.ops):
                code = _KIND_CODE[op.vertex.kind]
                kind[b, i] = code
                if code in (_CPU, _GPU):
                    vid[b, i] = self._vid[op.name]
                else:
                    d = op.vertex.duration
                    if d is None:
                        d = self._sync_dur[code]
                    # Engine advances on strictly positive durations only.
                    dur[b, i] = d if d > 0 else 0.0
                if op.stream is not None:
                    sid[b, i] = op.stream
                if op.event is not None:
                    eid[b, i] = events.setdefault(op.event, len(events))
        return _Pack(kind, vid, sid, eid, dur, max(len(events), 1))

    def _sample_tables(self, sample: int) -> Tuple[np.ndarray, np.ndarray]:
        key: Optional[int] = sample if self._noise.enabled else None
        tables = self._tables.get(key)
        if tables is None:
            noise = self._noise
            adv = np.zeros_like(self._base)
            kdur = np.zeros_like(self._base)
            for r in range(self.n_ranks):
                for j, v in enumerate(self._vertices):
                    base = self._base[r, j]
                    if v.kind is OpKind.CPU:
                        adv[r, j] = noise.jitter(base, sample, r, v.name)
                    elif v.kind is OpKind.GPU:
                        adv[r, j] = noise.jitter(
                            self._launch, sample, r, v.name, "launch"
                        )
                        kdur[r, j] = noise.jitter(base, sample, r, v.name)
                    else:
                        adv[r, j] = base  # sync-call overheads: no jitter
            # The engine advances only on strictly positive durations;
            # clamping keeps a (pathological) negative explicit duration
            # from advancing time backwards.
            tables = (np.maximum(adv, 0.0), np.maximum(kdur, 0.0))
            self._tables[key] = tables
        return tables

    def _replay(self, pack: _Pack, rows: np.ndarray, sample: int) -> np.ndarray:
        """Per-rank finish times, shape ``[len(rows), n_ranks]``."""
        adv_t, kdur_t = self._sample_tables(sample)
        kind = pack.kind[rows]
        vid = pack.vid[rows]
        sid = pack.sid[rows]
        eid = pack.eid[rows]
        dur = pack.dur[rows]
        n_rows, n_cols = kind.shape
        out = np.empty((n_rows, self.n_ranks))
        for r in range(self.n_ranks):
            adv = adv_t[r]
            kdur = kdur_t[r]
            t = np.zeros(n_rows)
            clock = np.zeros((n_rows, self.n_streams))
            ev_time = np.zeros((n_rows, pack.n_events))
            ev_src = np.zeros((n_rows, pack.n_events), dtype=np.int64)
            for i in range(n_cols):
                k = kind[:, i]
                sel = np.nonzero((k == _CPU) | (k == _GPU))[0]
                if sel.size:
                    t[sel] += adv[vid[sel, i]]
                sel = np.nonzero(k >= _RECORD)[0]
                if sel.size:
                    t[sel] += dur[sel, i]
                sel = np.nonzero(k == _GPU)[0]
                if sel.size:
                    s = sid[sel, i]
                    start = np.maximum(clock[sel, s], t[sel])
                    clock[sel, s] = start + kdur[vid[sel, i]]
                sel = np.nonzero(k == _RECORD)[0]
                if sel.size:
                    s = sid[sel, i]
                    e = eid[sel, i]
                    proc = np.maximum(clock[sel, s], t[sel])
                    ev_time[sel, e] = proc
                    ev_src[sel, e] = s
                    clock[sel, s] = proc
                sel = np.nonzero(k == _SYNC)[0]
                if sel.size:
                    e = eid[sel, i]
                    t[sel] = np.maximum(t[sel], ev_time[sel, e])
                sel = np.nonzero(k == _WAIT)[0]
                if sel.size:
                    s = sid[sel, i]
                    e = eid[sel, i]
                    resume = np.maximum(
                        np.maximum(clock[sel, s], t[sel]), ev_time[sel, e]
                    )
                    if self.n_gpus > 1 and self._cross_extra > 0:
                        resume = resume + np.where(
                            ev_src[sel, e] % self.n_gpus != s % self.n_gpus,
                            self._cross_extra,
                            0.0,
                        )
                    clock[sel, s] = resume
            out[:, r] = np.maximum(t, clock.max(axis=1))
        return out

    # ------------------------------------------------------------------
    def measure_block(self, schedules: Sequence[Schedule]) -> List[Measurement]:
        """Measure a block of supported schedules (paper §III-C3 protocol).

        Mirrors ``Benchmarker.measure`` exactly — same sample order, same
        break conditions, same accumulation order — with an active-row
        mask over the block instead of a per-schedule loop.  Callers must
        have verified :meth:`supports` for every schedule.
        """
        if not schedules:
            return []
        pack = self._pack(schedules)
        n_rows = len(schedules)
        cfg = self.config
        noise_on = self._noise.enabled
        acc = np.zeros((n_rows, self.n_ranks))
        n = np.zeros(n_rows, dtype=np.int64)
        active = np.ones(n_rows, dtype=bool)
        sample = 0
        while True:
            rows = np.nonzero(active)[0]
            per_rank = self._replay(pack, rows, self.sample_offset + sample)
            acc[rows] += per_rank
            n[rows] += 1
            sample += 1
            n_rows_active = n[rows]
            stop = n_rows_active >= cfg.max_samples
            if not noise_on:
                stop |= n_rows_active >= cfg.min_samples
            stop |= (n_rows_active >= cfg.min_samples) & (
                acc[rows].max(axis=1) >= cfg.target_time_s
            )
            active[rows[stop]] = False
            if not active.any():
                break
        results = []
        for b in range(n_rows):
            n_b = int(n[b])
            per = tuple(float(acc[b, r] / n_b) for r in range(self.n_ranks))
            results.append(
                Measurement(time=max(per), n_samples=n_b, per_rank_time=per)
            )
        return results

    def measure_into(
        self,
        benchmarker: Benchmarker,
        schedules: Sequence[Schedule],
        backend: str = "batch",
    ) -> Tuple[List[Measurement], int, int]:
        """Measure ``schedules`` through ``benchmarker``'s memo via replay.

        Un-memoized supported schedules are replayed in one block and
        seeded into the memo (with reference-equivalent ``n_simulations``
        accounting); unsupported ones fall back to
        ``benchmarker.measure``.  Returns ``(results, n_replayed,
        n_fallbacks)`` so callers can do their own metrics accounting —
        this function does not touch ``obs`` counters (it also runs
        inside pool workers whose registries are never shipped home).
        """
        todo: List[Schedule] = []
        n_fallbacks = 0
        seen = set()
        for s in schedules:
            fp = s.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            if benchmarker.cached(s, backend=backend) is not None:
                continue
            if self.supports(s):
                todo.append(s)
            else:
                n_fallbacks += 1
        for s, m in zip(todo, self.measure_block(todo)):
            benchmarker.seed_cache(s, m, backend=backend)
            benchmarker.n_simulations += m.n_samples
        results = [benchmarker.measure(s, backend=backend) for s in schedules]
        return results, len(todo), n_fallbacks


def resolve_backend(
    sim_backend: str,
    program: Program,
    machine: MachineConfig,
    config: MeasurementConfig = MeasurementConfig(),
    *,
    sample_offset: int = 0,
    needs_reference: bool = False,
) -> Tuple[str, Optional["CompiledContext"]]:
    """Resolve a ``sim_backend`` knob to ``(backend, compiled context)``.

    ``"auto"`` compiles the context and picks ``"batch"`` when it is
    usable, ``"reference"`` otherwise.  An explicit ``"batch"`` keeps the
    (possibly unusable) context so every schedule takes the counted
    per-schedule fallback path.  ``needs_reference`` is for callers whose
    executor uses features replay cannot produce (trace collection,
    payload execution) — they always resolve to the reference engine.
    """
    if sim_backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown sim backend {sim_backend!r}; expected one of {SIM_BACKENDS}"
        )
    if sim_backend == "reference" or needs_reference:
        return "reference", None
    ctx = compile_context(program, machine, config, sample_offset=sample_offset)
    if ctx.ok or sim_backend == "batch":
        return "batch", ctx
    return "reference", None


def compile_context(
    program: Program,
    machine: MachineConfig,
    config: MeasurementConfig = MeasurementConfig(),
    *,
    sample_offset: int = 0,
) -> CompiledContext:
    """Compile a replay context; timed and counted in ``obs``.

    ``sim.compile_s`` observes the compile wall; ``sim.compiled_contexts``
    counts *usable* contexts (``ctx.ok``) so the metric reads as "how many
    batch-capable contexts this run built".
    """
    global _N_COMPILES
    _N_COMPILES += 1
    with obs.stage("sim.compile") as st:
        ctx = CompiledContext(
            program, machine, config, sample_offset=sample_offset
        )
    obs.observe("sim.compile_s", st.duration)
    if ctx.ok:
        obs.add("sim.compiled_contexts")
    return ctx
