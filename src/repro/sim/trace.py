"""Execution timeline tracing and ASCII Gantt rendering.

Every simulated operation (CPU segment, kernel, sync, transfer) appends a
:class:`TraceRecord`; :class:`Gantt` renders the per-resource timeline as
monospace text, which is invaluable when eyeballing why one schedule
overlaps communication and another does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One occupied interval on one resource."""

    rank: int
    resource: str  # "cpu", "stream0", "stream1", ..., "net"
    op: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Ordered collection of trace records for one simulation run."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def add(
        self, rank: int, resource: str, op: str, start: float, end: float
    ) -> None:
        self.records.append(TraceRecord(rank, resource, op, start, end))

    def for_rank(self, rank: int) -> List[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    def for_resource(self, rank: int, resource: str) -> List[TraceRecord]:
        return [
            r
            for r in self.records
            if r.rank == rank and r.resource == resource
        ]

    def busy_time(self, rank: int, resource: str) -> float:
        return sum(r.duration for r in self.for_resource(rank, resource))

    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    def overlap(
        self, rank: int, resource_a: str, resource_b: str
    ) -> float:
        """Total time during which both resources are simultaneously busy."""
        a = sorted(self.for_resource(rank, resource_a), key=lambda r: r.start)
        b = sorted(self.for_resource(rank, resource_b), key=lambda r: r.start)
        total = 0.0
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i].start, b[j].start)
            hi = min(a[i].end, b[j].end)
            if hi > lo:
                total += hi - lo
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return total


def to_chrome_trace(trace: "Trace") -> List[dict]:
    """Export as Chrome-trace (``chrome://tracing`` / Perfetto) events.

    Each rank becomes a process, each resource a thread; durations are in
    microseconds as the format expects.  Serialize with ``json.dumps`` and
    load the file in any trace viewer.
    """
    events: List[dict] = []
    seen: Dict[Tuple[int, str], None] = {}
    for r in trace.records:
        key = (r.rank, r.resource)
        if key not in seen:
            seen[key] = None
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": r.rank,
                    "tid": r.resource,
                    "args": {"name": f"rank{r.rank}/{r.resource}"},
                }
            )
        events.append(
            {
                "name": r.op,
                "ph": "X",
                "pid": r.rank,
                "tid": r.resource,
                "ts": r.start * 1e6,
                "dur": r.duration * 1e6,
            }
        )
    return events


class Gantt:
    """ASCII Gantt chart of a :class:`Trace`."""

    def __init__(self, trace: Trace, width: int = 100) -> None:
        self.trace = trace
        self.width = width

    def render(self, ranks: Optional[Sequence[int]] = None) -> str:
        records = self.trace.records
        if not records:
            return "(empty trace)"
        t_end = self.trace.makespan()
        if t_end <= 0:
            return "(zero-length trace)"
        scale = self.width / t_end
        lanes: Dict[Tuple[int, str], List[TraceRecord]] = {}
        for r in records:
            if ranks is not None and r.rank not in ranks:
                continue
            lanes.setdefault((r.rank, r.resource), []).append(r)
        label_w = max(
            (len(f"r{rank}/{res}") for rank, res in lanes), default=8
        )
        lines = [
            f"time: 0 .. {t_end * 1e6:.2f} us  "
            f"(1 column = {t_end / self.width * 1e6:.3f} us)"
        ]
        for (rank, res) in sorted(lanes):
            row = [" "] * self.width
            for rec in lanes[(rank, res)]:
                lo = min(self.width - 1, int(rec.start * scale))
                hi = min(self.width, max(lo + 1, int(rec.end * scale)))
                ch = rec.op[0].upper() if rec.op else "#"
                for c in range(lo, hi):
                    row[c] = ch if row[c] == " " else "+"
            lines.append(f"r{rank}/{res}".ljust(label_w) + " |" + "".join(row) + "|")
        legend: Dict[str, str] = {}
        for rec in records:
            if rec.op:
                legend.setdefault(rec.op[0].upper(), rec.op)
        lines.append(
            "legend: "
            + ", ".join(f"{k}={v}" for k, v in sorted(legend.items()))
        )
        return "\n".join(lines)
