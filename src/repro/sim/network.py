"""Simulated MPI network: message matching and α-β transfers.

Matching follows MPI point-to-point semantics: a send and a receive match
when (source, destination, tag) agree, in posting order within each triple
(MPI's non-overtaking rule).  Transfers cost ``α + nbytes·β``; with
``serialize_nic`` each rank's outgoing and incoming transfers are
serialized, so a burst of messages queues up — this is what makes *when*
sends are posted matter, which the design rules are ultimately about.

Two protocols (paper's platform uses Cray-MPICH, whose large messages are
rendezvous):

* **rendezvous** — the wire transfer starts once both sides have posted;
  both requests complete when it ends.
* **eager** — the transfer starts when the send is posted; the send request
  completes at injection end, and the receive completes at
  ``max(arrival, recv posted)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.dag.program import Message
from repro.errors import MpiError
from repro.platform.machine import NetworkModel, Protocol
from repro.platform.noise import NoiseModel
from repro.sim.engine import Channel, Environment, Event


@dataclass
class MpiRequest:
    """Handle for one posted non-blocking operation."""

    kind: str  # "send" | "recv"
    message: Message
    posted_at: float
    done: Event
    completed_at: Optional[float] = None
    #: (begin, end) of the wire transfer, set for eager sends at injection.
    transfer_interval: Optional[Tuple[float, float]] = None

    @property
    def is_complete(self) -> bool:
        return self.done.triggered


#: Callback invoked when a transfer completes: (message, begin, end).
TransferHook = Callable[[Message, float, float], None]


class Network:
    """Message-matching and transfer engine shared by all ranks."""

    def __init__(
        self,
        env: Environment,
        model: NetworkModel,
        noise: NoiseModel,
        sample: int = 0,
        on_transfer: Optional[TransferHook] = None,
    ) -> None:
        self.env = env
        self.model = model
        self.noise = noise
        self.sample = sample
        self.on_transfer = on_transfer
        self._pending_sends: Dict[Tuple[int, int, int], Deque[MpiRequest]] = {}
        self._pending_recvs: Dict[Tuple[int, int, int], Deque[MpiRequest]] = {}
        self._send_ch: Dict[int, Channel] = {}
        self._recv_ch: Dict[int, Channel] = {}
        self.n_transfers = 0

    # ------------------------------------------------------------------
    def _channel(self, table: Dict[int, Channel], rank: int, side: str) -> Channel:
        ch = table.get(rank)
        if ch is None:
            ch = Channel(self.env, name=f"rank{rank}.{side}")
            table[rank] = ch
        return ch

    def post_send(self, msg: Message) -> MpiRequest:
        req = MpiRequest(
            kind="send",
            message=msg,
            posted_at=self.env.now,
            done=self.env.event(f"send {msg.src}->{msg.dst} tag{msg.tag}"),
        )
        if self._protocol_for(msg) is Protocol.EAGER:
            # Buffered injection: the wire transfer happens now and the send
            # completes at injection end, whether or not a receive exists.
            self._inject_eager(req)
        key = (msg.src, msg.dst, msg.tag)
        recvs = self._pending_recvs.get(key)
        if recvs:
            self._complete_pair(req, recvs.popleft())
        else:
            self._pending_sends.setdefault(key, deque()).append(req)
        return req

    def post_recv(self, msg: Message) -> MpiRequest:
        req = MpiRequest(
            kind="recv",
            message=msg,
            posted_at=self.env.now,
            done=self.env.event(f"recv {msg.src}->{msg.dst} tag{msg.tag}"),
        )
        key = (msg.src, msg.dst, msg.tag)
        sends = self._pending_sends.get(key)
        if sends:
            self._complete_pair(sends.popleft(), req)
        else:
            self._pending_recvs.setdefault(key, deque()).append(req)
        return req

    # ------------------------------------------------------------------
    def _protocol_for(self, msg: Message) -> Protocol:
        if self.model.is_eager(msg.nbytes):
            return Protocol.EAGER
        return self.model.protocol

    def _wire_time(self, msg: Message) -> float:
        base = self.model.transfer_time(msg.nbytes)
        return self.noise.jitter(
            base, self.sample, "xfer", msg.src, msg.dst, msg.tag
        )

    def _occupy_channels(self, msg: Message, ready: float, wire: float):
        """Reserve NIC channels; returns the (begin, end) wire interval."""
        if self.model.serialize_nic:
            sch = self._channel(self._send_ch, msg.src, "send")
            rch = self._channel(self._recv_ch, msg.dst, "recv")
            begin = max(ready, sch.free_at, rch.free_at, 0.0)
            sch.occupy(begin, wire)
            rch.occupy(begin, wire)
        else:
            begin = ready
        return begin, begin + wire

    def _inject_eager(self, send: MpiRequest) -> None:
        """Eager protocol: transfer at send-post time; send completes at
        injection end independent of any matching receive."""
        msg = send.message
        begin, end = self._occupy_channels(msg, send.posted_at, self._wire_time(msg))
        send.transfer_interval = (begin, end)

        def complete_send(_evt: Event, req=send, at=end) -> None:
            req.completed_at = at
            req.done.succeed()

        self.env.fire_at(
            max(end, self.env.now), f"eager_injected:{msg.src}->{msg.dst}"
        ).add_callback(complete_send)

    def _complete_pair(self, send: MpiRequest, recv: MpiRequest) -> None:
        """A send/recv pair has matched; schedule the remaining completions."""
        msg = send.message
        self.n_transfers += 1
        if self._protocol_for(msg) is Protocol.EAGER:
            begin, end = send.transfer_interval
            recv_done_at = max(end, recv.posted_at, self.env.now)
        else:
            # Rendezvous: the wire transfer starts once both sides posted
            # (i.e. now); both requests complete when it ends.
            ready = max(send.posted_at, recv.posted_at, self.env.now)
            begin, end = self._occupy_channels(msg, ready, self._wire_time(msg))
            send_done_at = max(end, self.env.now)
            recv_done_at = send_done_at

            def complete_send(_evt: Event, req=send, at=send_done_at) -> None:
                req.completed_at = at
                req.done.succeed()

            self.env.fire_at(
                send_done_at, f"xfer_send_done:{msg.src}->{msg.dst}"
            ).add_callback(complete_send)

        def complete_recv(_evt: Event, req=recv, at=recv_done_at, b=begin) -> None:
            req.completed_at = at
            if self.on_transfer is not None:
                self.on_transfer(req.message, b, at)
            req.done.succeed()

        self.env.fire_at(
            recv_done_at, f"xfer_recv_done:{msg.src}->{msg.dst}"
        ).add_callback(complete_recv)

    # ------------------------------------------------------------------
    def unmatched(self) -> List[MpiRequest]:
        """All posted-but-unmatched requests (diagnostic for deadlocks)."""
        out: List[MpiRequest] = []
        for dq in self._pending_sends.values():
            out.extend(dq)
        for dq in self._pending_recvs.values():
            out.extend(dq)
        return out

    def assert_drained(self) -> None:
        """Raise :class:`MpiError` if any request was never matched."""
        left = self.unmatched()
        if left:
            desc = ", ".join(
                f"{r.kind} {r.message.src}->{r.message.dst} tag{r.message.tag}"
                for r in left
            )
            raise MpiError(f"unmatched MPI requests at end of run: {desc}")
