"""repro.workloads — workload registry, synthetic generators, and suites.

The subsystem that turns "the paper's two programs" into a parameterized
scenario space:

* :mod:`repro.workloads.spec` — :class:`WorkloadSpec` + the decorator
  registry every family registers into.
* :mod:`repro.workloads.adapters` — :mod:`repro.apps` (SpMV, 3-D halo)
  re-registered as workloads.
* :mod:`repro.workloads.synthetic` — four synthetic DAG generator
  families (layered random, fork–join, tree allreduce, 2-D wavefront)
  with costs drawn from :mod:`repro.platform` presets.
* :mod:`repro.workloads.suite` — named suites (``smoke``, ``paper``,
  ``generalization``) and the :class:`SuiteRunner` that fans every
  (workload × strategy) cell through the batched :mod:`repro.exec`
  substrate.
* :mod:`repro.workloads.generalization` — rules extracted on one
  workload scored on every other (the cross-workload table).
"""

from repro.workloads.generalization import (
    CrossWorkloadResult,
    WorkloadRules,
    reduce_workload_rules,
    rules_for_specs,
    run_cross_workload,
    run_rules_plan,
    score_cross_workload,
)
from repro.workloads.spec import (
    WorkloadError,
    WorkloadFamily,
    WorkloadSpec,
    build_workload,
    get_family,
    list_families,
    workload,
)
from repro.workloads.suite import (
    Suite,
    SuiteCell,
    SuiteReport,
    SuiteRunner,
    builtin_suites,
    get_suite,
    run_suite,
)

__all__ = [
    "CrossWorkloadResult",
    "Suite",
    "SuiteCell",
    "SuiteReport",
    "SuiteRunner",
    "WorkloadError",
    "WorkloadFamily",
    "WorkloadRules",
    "WorkloadSpec",
    "build_workload",
    "builtin_suites",
    "get_family",
    "get_suite",
    "list_families",
    "reduce_workload_rules",
    "rules_for_specs",
    "run_cross_workload",
    "run_rules_plan",
    "run_suite",
    "score_cross_workload",
    "workload",
]
