"""Cross-workload rule generalization (the ROADMAP's open question).

The paper extracts design rules from one workload and asks (§VI) whether
they hold beyond it.  This module answers mechanically: run the full
design-rule pipeline on every workload of a suite, take each workload's
*fastest-class* rules, and score them on every other workload's labeled
schedules via :mod:`repro.rules.score`.

Two numbers summarize each (source → target) pair:

* **transferable** — how many of the source's rules mention only
  operations that also exist in the target (e.g. ``PostSends before
  WaitRecv`` transfers between any two workloads that post and wait;
  ``yL same stream as yR`` is SpMV-specific);
* **satisfaction** — among the target's *fastest-class* schedules, the
  mean fraction that follow each transferable rule.  High satisfaction
  means the source's design guidance also describes what is fast on the
  target; ~50 % means the rule is uninformative there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import DesignRulePipeline, PipelineConfig, PipelineResult
from repro.dag.program import Program
from repro.platform.machine import MachineConfig
from repro.platform.presets import perlmutter_like
from repro.rules.ruleset import Rule
from repro.rules.score import class_rules, score_rules, transfer_summary
from repro.schedule.schedule import Schedule
from repro.workloads.spec import WorkloadSpec, build_workload

#: The fastest performance class (labeling orders classes fastest-first).
FASTEST_CLASS = 0


@dataclass
class WorkloadRules:
    """One workload's pipeline output, reduced to what transfer needs."""

    spec: WorkloadSpec
    result: PipelineResult
    #: Deduplicated fastest-class rules.
    rules: List[Rule]
    #: Unique schedules labeled into the fastest class.
    fast_schedules: List[Schedule]
    #: Unique schedules labeled into every slower class.
    slow_schedules: List[Schedule]
    #: The concrete program the schedules were explored on.
    program: Program


@dataclass
class CrossWorkloadResult:
    """The full source × target transfer matrix."""

    workloads: List[WorkloadRules]
    #: (source label, target label) -> (n_rules, n_transferable, mean sat).
    matrix: Dict[Tuple[str, str], Tuple[int, int, float]]

    def rows(self) -> List[Dict[str, object]]:
        """JSON-ready rows, one per off-diagonal (source, target) pair."""
        out: List[Dict[str, object]] = []
        for (src, dst), (n_rules, n_trans, sat) in sorted(self.matrix.items()):
            out.append(
                {
                    "source": src,
                    "target": dst,
                    "n_rules": n_rules,
                    "n_transferable": n_trans,
                    "mean_satisfaction": sat,
                }
            )
        return out

    def report(self) -> str:
        lines = ["Cross-workload rule transfer (fastest-class rules):"]
        for row in self.rows():
            lines.append(
                f"  {row['source']} -> {row['target']}: "
                f"{row['n_transferable']}/{row['n_rules']} rules transfer, "
                f"{100.0 * float(row['mean_satisfaction']):.0f}% satisfied "
                f"by the target's fastest class"
            )
        return "\n".join(lines)


def pipeline_for_spec(
    spec: WorkloadSpec,
    machine: MachineConfig,
    *,
    n_streams: int = 2,
    measurement=None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    program: Optional[Program] = None,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> DesignRulePipeline:
    """Exhaustive design-rule pipeline for one workload spec.

    ``block_size`` bounds how many schedules are enumerated and staged
    per evaluation batch (see
    :meth:`~repro.schedule.space.DesignSpace.iter_blocks`).
    """
    if program is None:
        program = build_workload(spec)
    kwargs = {} if measurement is None else {"measurement": measurement}
    if block_size is not None:
        kwargs["batch_size"] = block_size
        kwargs["block_size"] = block_size
    return DesignRulePipeline(
        program,
        machine.with_ranks(program.n_ranks),
        PipelineConfig(
            n_streams=n_streams,
            strategy="exhaustive",
            workers=workers,
            cache_path=cache_path,
            sim_backend=sim_backend,
            **kwargs,
        ),
    )


def reduce_workload_rules(
    spec: WorkloadSpec,
    program: Program,
    result: PipelineResult,
) -> WorkloadRules:
    """Reduce a finished pipeline run to what transfer needs: the
    fastest-class rules plus the fast/slow labeled schedule classes."""
    schedules = result.search.schedules()
    fast: List[Schedule] = []
    slow: List[Schedule] = []
    for s, label in zip(schedules, result.labeling.labels):
        (fast if int(label) == FASTEST_CLASS else slow).append(s)
    return WorkloadRules(
        spec=spec,
        result=result,
        rules=class_rules(result.rulesets, FASTEST_CLASS),
        fast_schedules=fast,
        slow_schedules=slow,
        program=program,
    )


def workload_rules(
    spec: WorkloadSpec,
    machine: MachineConfig,
    *,
    n_streams: int = 2,
    measurement=None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> WorkloadRules:
    """Run the exhaustive pipeline on ``spec`` and reduce to rules +
    fast/slow labeled schedule classes."""
    program = build_workload(spec)
    pipe = pipeline_for_spec(
        spec,
        machine,
        n_streams=n_streams,
        measurement=measurement,
        workers=workers,
        cache_path=cache_path,
        program=program,
        block_size=block_size,
        sim_backend=sim_backend,
    )
    try:
        result = pipe.run()
    finally:
        pipe.close()
    return reduce_workload_rules(spec, program, result)


def score_cross_workload(
    per_workload: Sequence[WorkloadRules],
) -> CrossWorkloadResult:
    """Pairwise role-matched satisfaction table over precomputed
    per-workload pipeline outputs."""
    matrix: Dict[Tuple[str, str], Tuple[int, int, float]] = {}
    for src in per_workload:
        for dst in per_workload:
            if src.spec.label == dst.spec.label:
                continue
            scores = score_rules(src.rules, dst.fast_schedules, by_role=True)
            matrix[(src.spec.label, dst.spec.label)] = transfer_summary(scores)
    return CrossWorkloadResult(workloads=list(per_workload), matrix=matrix)


def run_rules_plan(
    specs: Sequence[WorkloadSpec],
    *,
    machine: Optional[MachineConfig] = None,
    n_streams: int = 2,
    measurement=None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    shard_workers: int = 0,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
):
    """Per-workload exhaustive pipelines as an orchestrate plan.

    Returns ``(per_workload, plan_run)`` — the :class:`WorkloadRules`
    list in spec order plus the :class:`~repro.orchestrate.PlanRun`
    carrying per-task wall/stage timing.  ``shard_workers > 1`` shards
    whole workloads across processes; results are bit-identical to the
    serial sweep either way.
    """
    from repro.orchestrate import (
        execute_plan,
        plan_rules,
        restore_rules_payload,
    )

    machine = machine if machine is not None else perlmutter_like()
    plan = plan_rules(
        specs,
        machine=machine,
        n_streams=n_streams,
        measurement=measurement,
        workers=workers,
        cache_path=cache_path,
        block_size=block_size,
        sim_backend=sim_backend,
    )
    run = execute_plan(plan, shard_workers=shard_workers)
    return [restore_rules_payload(r) for r in run.results], run


def rules_for_specs(
    specs: Sequence[WorkloadSpec],
    *,
    machine: Optional[MachineConfig] = None,
    n_streams: int = 2,
    measurement=None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    shard_workers: int = 0,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> List[WorkloadRules]:
    """Run the exhaustive pipeline on every spec (the shared front half of
    the satisfaction table and the transfer matrix)."""
    per_workload, _ = run_rules_plan(
        specs,
        machine=machine,
        n_streams=n_streams,
        measurement=measurement,
        workers=workers,
        cache_path=cache_path,
        shard_workers=shard_workers,
        block_size=block_size,
        sim_backend=sim_backend,
    )
    return per_workload


def run_cross_workload(
    specs: Sequence[WorkloadSpec],
    *,
    machine: Optional[MachineConfig] = None,
    n_streams: int = 2,
    measurement=None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    shard_workers: int = 0,
    block_size: Optional[int] = None,
    sim_backend: str = "auto",
) -> CrossWorkloadResult:
    """Score every workload's fastest-class rules on every other workload."""
    if len(specs) < 2:
        raise ValueError("need at least two workloads to generalize across")
    per_workload = rules_for_specs(
        specs,
        machine=machine,
        n_streams=n_streams,
        measurement=measurement,
        workers=workers,
        cache_path=cache_path,
        shard_workers=shard_workers,
        block_size=block_size,
        sim_backend=sim_backend,
    )
    return score_cross_workload(per_workload)
