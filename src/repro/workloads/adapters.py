"""Adapters: the two :mod:`repro.apps` programs as registered workloads.

The paper's demonstration workloads — distributed SpMV (Fig. 3) and the
3-D halo exchange (§VI) — keep their original builders; these adapters
only translate a :class:`~repro.workloads.spec.WorkloadSpec` into the
builders' native case dataclasses, so registry-built programs are
graph-identical to directly-built ones (tested in
``tests/workloads/test_adapters.py``).
"""

from __future__ import annotations

from repro.apps.halo import GridCase, build_halo_program
from repro.apps.spmv import SpmvCase, build_spmv_program
from repro.dag.program import Program
from repro.errors import WorkloadError
from repro.workloads.spec import WorkloadSpec, workload


@workload(
    "spmv",
    description=(
        "Distributed SpMV on a band matrix (the paper's Fig. 3 program); "
        "'scale' shrinks the 150k-row case proportionally"
    ),
    defaults={"scale": 1.0, "bandwidth_frac": 0.25, "n_ranks": 4},
)
def build_spmv_workload(spec: WorkloadSpec) -> Program:
    p = spec.param_dict
    scale = float(p["scale"])
    if scale <= 0:
        raise WorkloadError(f"spmv scale={scale} must be positive")
    base = SpmvCase(
        bandwidth=150_000 * float(p["bandwidth_frac"]),
        n_ranks=int(p["n_ranks"]),
        seed=spec.seed,
    )
    case = base if scale == 1.0 else base.scaled(scale)
    return build_spmv_program(case).program


@workload(
    "halo3d",
    description=(
        "3-D structured-grid halo exchange (paper §VI extension); "
        "'axes' selects the active exchange dimensions, e.g. 'xy'"
    ),
    defaults={
        "nx": 256,
        "ny": 256,
        "nz": 256,
        "px": 2,
        "py": 2,
        "pz": 1,
        "axes": "xyz",
    },
)
def build_halo_workload(spec: WorkloadSpec) -> Program:
    p = spec.param_dict
    case = GridCase(
        nx=int(p["nx"]),
        ny=int(p["ny"]),
        nz=int(p["nz"]),
        px=int(p["px"]),
        py=int(p["py"]),
        pz=int(p["pz"]),
    )
    axis_of = {"x": 0, "y": 1, "z": 2}
    axes_str = str(p["axes"])
    bad = sorted(set(axes_str) - set(axis_of))
    if bad or not axes_str:
        raise WorkloadError(
            f"halo3d axes={axes_str!r} must be a non-empty subset of 'xyz'"
        )
    return build_halo_program(
        case, axes=tuple(axis_of[c] for c in axes_str)
    )
