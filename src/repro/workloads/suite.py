"""Named workload suites and the cross-workload suite runner.

A :class:`Suite` names a set of workload specs and search strategies; the
:class:`SuiteRunner` fans every (workload × strategy) cell through the
batched :mod:`repro.exec` evaluation substrate — honoring ``workers`` and
a shared persistent :class:`~repro.exec.MeasurementCache` — and collects
one :class:`SuiteCell` per cell into a :class:`SuiteReport` (JSON +
ASCII).

Built-in suites
---------------
``smoke``
    Every registered family at tiny parameters; random + MCTS.  Fast
    enough for CI, broad enough to exercise every generator and both
    app adapters end-to-end.
``paper``
    The two paper workloads at meaningful sizes with all sampling
    strategies — the per-workload comparison the paper's §VI asks for.
``generalization``
    Small-space workloads explored exhaustively so full pipelines are
    affordable; the runner additionally extracts per-workload rules and
    scores every workload's fastest-class rules on every other workload
    (see :mod:`repro.workloads.generalization`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.errors import WorkloadError
from repro.platform.machine import MachineConfig
from repro.platform.presets import perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.base import SearchResult
from repro.sim.measure import MeasurementConfig
from repro.textutil import format_table
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Suite:
    """A named collection of workloads × strategies."""

    name: str
    description: str
    specs: Tuple[WorkloadSpec, ...]
    strategies: Tuple[str, ...] = ("random", "mcts")
    #: Search iterations per (workload, strategy) cell.
    n_iterations: int = 8
    n_streams: int = 2
    measurement: MeasurementConfig = field(
        default_factory=lambda: MeasurementConfig(max_samples=2)
    )
    #: When set, the runner also extracts rules per workload and scores
    #: them across workloads (requires small, exhaustible spaces).
    cross_workload_rules: bool = False


def _smoke_specs() -> Tuple[WorkloadSpec, ...]:
    return (
        WorkloadSpec("spmv", {"scale": 0.025}),
        WorkloadSpec(
            "halo3d",
            {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
        ),
        WorkloadSpec("layered_random", {"layers": 3, "width": 2, "edge_p": 0.5}),
        WorkloadSpec("fork_join", {"stages": 2, "branches": 2, "depth": 1}),
        WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
        WorkloadSpec("wavefront", {"width": 2, "height": 2}),
        WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
    )


def builtin_suites() -> Dict[str, Suite]:
    """The named suites shipped with the system."""
    return {
        "smoke": Suite(
            name="smoke",
            description=(
                "every workload family at tiny parameters; CI-fast "
                "end-to-end exercise of the evaluation substrate"
            ),
            specs=_smoke_specs(),
            strategies=("random", "mcts"),
            n_iterations=6,
        ),
        "paper": Suite(
            name="paper",
            description=(
                "the two paper workloads at meaningful sizes, all "
                "sampling strategies"
            ),
            specs=(
                WorkloadSpec("spmv", {"scale": 0.1}),
                WorkloadSpec(
                    "halo3d",
                    {
                        "nx": 128,
                        "ny": 128,
                        "nz": 128,
                        "px": 2,
                        "py": 2,
                        "pz": 1,
                        "axes": "xy",
                    },
                ),
            ),
            strategies=("random", "mcts", "beam"),
            n_iterations=32,
        ),
        "generalization": Suite(
            name="generalization",
            description=(
                "small-space workloads explored exhaustively; rules "
                "extracted per workload and scored on every other"
            ),
            specs=(
                WorkloadSpec("spmv", {"scale": 0.025}),
                WorkloadSpec(
                    "halo3d",
                    {
                        "nx": 32,
                        "ny": 32,
                        "nz": 32,
                        "px": 2,
                        "py": 2,
                        "pz": 1,
                        "axes": "x",
                    },
                ),
                WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
                WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
                WorkloadSpec("wavefront", {"width": 2, "height": 2}),
                WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
            ),
            strategies=("random", "mcts"),
            n_iterations=12,
            cross_workload_rules=True,
        ),
    }


def get_suite(name: str) -> Suite:
    suites = builtin_suites()
    try:
        return suites[name]
    except KeyError:
        known = ", ".join(sorted(suites))
        raise WorkloadError(
            f"unknown suite {name!r}; available: {known}"
        ) from None


@dataclass(frozen=True)
class SuiteCell:
    """One (workload, strategy) result row."""

    workload: str
    family: str
    strategy: str
    n_ops: int
    n_iterations: int
    n_unique: int
    n_simulations: int
    best_time: float
    mean_time: float
    wall_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "family": self.family,
            "strategy": self.strategy,
            "n_ops": self.n_ops,
            "n_iterations": self.n_iterations,
            "n_unique": self.n_unique,
            "n_simulations": self.n_simulations,
            "best_time_us": self.best_time * 1e6,
            "mean_time_us": self.mean_time * 1e6,
            "wall_s": self.wall_s,
        }


@dataclass
class SuiteReport:
    """Everything a suite run produced."""

    suite: str
    machine: str
    cells: List[SuiteCell]
    #: Cross-workload rule transfer rows (generalization suites only).
    rules_table: List[Dict[str, object]] = field(default_factory=list)
    #: Signature-matched discrimination matrix rows (repro.transfer).
    transfer_table: List[Dict[str, object]] = field(default_factory=list)
    #: Leave-one-workload-out union-tree accuracy rows (repro.transfer).
    union_table: List[Dict[str, object]] = field(default_factory=list)
    #: Why union rows are missing / incomplete (empty when none skipped).
    union_note: str = ""
    #: Execution-plan timing: shard count, total wall, per-task wall and
    #: per-stage breakdown (:meth:`repro.orchestrate.PlanRun.timing`).
    #: Wall-clock only — every other field is identical for any shard or
    #: worker count.
    timing: Dict[str, object] = field(default_factory=dict)
    #: Run telemetry from the obs metrics registry delta — today the
    #: measurement-cache hit/miss/lock-retry counts, which are
    #: deterministic (unlike ``timing``) for a given cache state.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Advisor artifacts this run published (paths; empty when no store
    #: was configured) and why publishing was skipped, if it was.
    published: List[str] = field(default_factory=list)
    store_note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "machine": self.machine,
            "cells": [c.to_dict() for c in self.cells],
            "rules_table": self.rules_table,
            "transfer_table": self.transfer_table,
            "union_table": self.union_table,
            "union_note": self.union_note,
            "timing": self.timing,
            "metrics": self.metrics,
            "published": self.published,
            "store_note": self.store_note,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    # ------------------------------------------------------------------
    def ascii_table(self) -> str:
        """Fixed-width comparison table, one row per cell."""
        headers = (
            "workload",
            "strategy",
            "ops",
            "iters",
            "unique",
            "sims",
            "best(us)",
            "mean(us)",
        )
        rows = [
            (
                c.workload,
                c.strategy,
                str(c.n_ops),
                str(c.n_iterations),
                str(c.n_unique),
                str(c.n_simulations),
                f"{c.best_time * 1e6:.2f}",
                f"{c.mean_time * 1e6:.2f}",
            )
            for c in self.cells
        ]
        lines = [
            f"Suite {self.suite!r} on {self.machine} "
            f"({len(self.cells)} cells)"
        ]
        lines += format_table(headers, rows)
        if self.rules_table:
            lines.append("")
            lines.append(self._rules_ascii())
        if self.transfer_table:
            lines.append("")
            lines.append(self._transfer_ascii())
        if self.union_table:
            lines.append("")
            lines.append(self._union_ascii())
        if self.union_note:
            lines.append(self.union_note)
        if self.timing:
            shards = int(self.timing.get("shard_workers", 0) or 0)
            lines.append(
                f"Executed {self.timing.get('n_tasks', 0)} workload tasks "
                + (f"across {shards} shards" if shards > 1 else "in-process")
                + f" in {float(self.timing.get('wall_s', 0.0)):.2f}s"
            )
        cache_stats = self.metrics.get("cache") if self.metrics else None
        if cache_stats and (cache_stats["hits"] or cache_stats["misses"]):
            lines.append(
                f"Measurement cache: {cache_stats['hits']} hits / "
                f"{cache_stats['misses']} misses "
                f"({cache_stats['lock_retries']} lock retries)"
            )
        sim_stats = self.metrics.get("sim") if self.metrics else None
        if sim_stats and (
            sim_stats["batch_replays"] or sim_stats["fallbacks"]
        ):
            lines.append(
                f"Sim backend {sim_stats['backend']!r}: "
                f"{sim_stats['batch_replays']} batch replays / "
                f"{sim_stats['fallbacks']} reference fallbacks "
                f"({sim_stats['compiled_contexts']} compiled contexts)"
            )
        if self.published:
            lines.append(
                f"Published {len(self.published)} advisor artifacts "
                "(rules + signatures + union tree) to the store"
            )
        if self.store_note:
            lines.append(self.store_note)
        return "\n".join(lines)

    def _rules_ascii(self) -> str:
        headers = ("rules from", "scored on", "rules", "transfer", "satisfied")
        rows = [
            (
                str(r["source"]),
                str(r["target"]),
                str(r["n_rules"]),
                str(r["n_transferable"]),
                f"{100.0 * float(r['mean_satisfaction']):.0f}%",
            )
            for r in self.rules_table
        ]
        lines = ["Cross-workload rule transfer (fastest-class rules):"]
        lines += format_table(headers, rows)
        return "\n".join(lines)

    def _transfer_ascii(self) -> str:
        headers = ("rules from", "scored on", "transfer", "disc", "cover")
        rows = [
            (
                str(r["source"]),
                str(r["target"]),
                f"{r['n_transferable']}/{r['n_rules']}",
                f"{float(r['mean_discrimination']):+.2f}",
                f"{100.0 * float(r['mean_coverage']):.0f}%",
            )
            for r in self.transfer_table
        ]
        lines = [
            "Signature-matched transfer (discrimination = fast/slow "
            "satisfaction gap):"
        ]
        lines += format_table(headers, rows)
        return "\n".join(lines)

    def _union_ascii(self) -> str:
        headers = ("held-out target", "feat", "leaves", "train acc", "held-out acc")
        rows = [
            (
                str(r["target"]),
                str(r["n_features"]),
                str(r["n_leaves"]),
                f"{100.0 * float(r['train_accuracy']):.0f}%",
                f"{100.0 * float(r['holdout_accuracy']):.0f}%",
            )
            for r in self.union_table
        ]
        lines = ["Union-trained tree, leave-one-workload-out accuracy:"]
        lines += format_table(headers, rows)
        return "\n".join(lines)

    def report(self) -> str:
        return self.ascii_table()


# ----------------------------------------------------------------------
class SuiteRunner:
    """Runs every (workload × strategy) cell of a suite.

    The run is compiled into a :class:`repro.orchestrate.ExecutionPlan` —
    one task per workload (plus one exhaustive rule-pipeline task per
    workload for cross-workload suites) — and executed in-process or,
    with ``shard_workers > 1``, across a pool of whole-workload shards.
    Within each task one evaluator is shared by all strategies (so they
    share its memo), optionally backed by ``workers`` inner evaluation
    processes and a shared persistent measurement cache.  Measurement
    determinism makes every report field except ``timing`` (and, when a
    cache is shared — concurrent tasks cross-seed it — the incidental
    ``n_simulations`` counters) independent of ``shard_workers``,
    ``workers``, and cache state.
    """

    def __init__(
        self,
        suite: Suite,
        *,
        machine: Optional[MachineConfig] = None,
        workers: int = 0,
        cache_path: Optional[str] = None,
        seed: int = 0,
        shard_workers: int = 0,
        block_size: Optional[int] = None,
        store_path: Optional[str] = None,
        progress: bool = False,
        sim_backend: str = "auto",
    ) -> None:
        self.suite = suite
        self.machine = machine if machine is not None else perlmutter_like()
        self.workers = workers
        self.cache_path = cache_path
        self.seed = seed
        self.shard_workers = shard_workers
        self.block_size = block_size
        #: Advisor artifact store directory; cross-workload suite runs
        #: publish their trained outputs there (:mod:`repro.advisor`).
        self.store_path = store_path
        #: Live stderr progress over completed plan tasks (``--progress``).
        self.progress = progress
        #: Simulation backend for every task evaluator
        #: (``reference`` | ``batch`` | ``auto``).
        self.sim_backend = sim_backend

    # ------------------------------------------------------------------
    def run(self) -> SuiteReport:
        from repro.orchestrate import (
            TASK_SUITE_CELLS,
            TASK_WORKLOAD_RULES,
            execute_plan,
            plan_suite,
            restore_rules_payload,
        )

        suite = self.suite
        plan = plan_suite(
            suite,
            machine=self.machine,
            workers=self.workers,
            cache_path=self.cache_path,
            seed=self.seed,
            block_size=self.block_size,
            sim_backend=self.sim_backend,
        )
        obs.log.info(
            "suite.run",
            suite=suite.name,
            n_tasks=len(plan.tasks),
            shard_workers=self.shard_workers,
        )
        metrics_before = obs.metrics_snapshot()
        # Suite progress counts whole tasks: the denominator is exact and
        # task completions are the granularity sharded suites observe.
        with obs.progress_scope(
            len(plan.tasks),
            label=f"suite {suite.name}",
            counters=obs.PLAN_PROGRESS_COUNTERS,
            enabled=self.progress,
        ):
            run = execute_plan(plan, shard_workers=self.shard_workers)
        delta = obs.metrics_snapshot().diff(metrics_before)
        cells: List[SuiteCell] = [
            cell
            for task in run.of_kind(TASK_SUITE_CELLS)
            for cell in task.payload
        ]
        report = SuiteReport(
            suite=suite.name,
            machine=self.machine.name,
            cells=cells,
            timing=run.timing(),
            metrics={
                "cache": {
                    "hits": int(delta.counter("cache.hits")),
                    "misses": int(delta.counter("cache.misses")),
                    "lock_retries": int(delta.counter("cache.lock_retries")),
                },
                "sim": {
                    "backend": self.sim_backend,
                    "batch_replays": int(delta.counter("sim.batch_replays")),
                    "fallbacks": int(delta.counter("sim.fallbacks")),
                    "compiled_contexts": int(
                        delta.counter("sim.compiled_contexts")
                    ),
                },
            },
        )
        if suite.cross_workload_rules:
            from repro.transfer.matrix import transfer_matrix_from
            from repro.workloads.generalization import score_cross_workload

            # The plan already ran one exhaustive pipeline task per
            # workload; both tables reduce over those shared outputs.
            per_workload = [
                restore_rules_payload(task)
                for task in run.of_kind(TASK_WORKLOAD_RULES)
            ]
            report.rules_table = score_cross_workload(per_workload).rows()
            matrix = transfer_matrix_from(per_workload)
            report.transfer_table = matrix.rows()
            report.union_table = [u.to_dict() for u in matrix.union_rows]
            report.union_note = matrix.union_note
            if self.store_path is not None:
                from repro.advisor import ArtifactStore, publish_artifacts

                report.published = publish_artifacts(
                    ArtifactStore(self.store_path),
                    per_workload,
                    machine=self.machine.name,
                    n_streams=suite.n_streams,
                    advisories=[
                        (c.source, c.target, c.mean_discrimination)
                        for c in matrix.advisories()
                    ],
                )
        elif self.store_path is not None:
            report.store_note = (
                f"store {self.store_path!r} not updated: suite "
                f"{suite.name!r} does not run the cross-workload rule "
                "pipelines (artifacts need exhaustively labeled spaces)"
            )
        return report


def _cell_from_result(
    spec: WorkloadSpec,
    strategy: str,
    space: DesignSpace,
    result: SearchResult,
    n_simulations: int,
    wall: float,
) -> SuiteCell:
    times = result.times()
    return SuiteCell(
        workload=spec.label,
        family=spec.family,
        strategy=strategy,
        n_ops=len(space.program_ops),
        n_iterations=result.n_iterations,
        n_unique=len(result.unique()),
        n_simulations=n_simulations,
        best_time=float(times.min()),
        mean_time=float(times.mean()),
        wall_s=wall,
    )


def run_suite(
    name: str,
    *,
    machine: Optional[MachineConfig] = None,
    workers: int = 0,
    cache_path: Optional[str] = None,
    seed: int = 0,
    shard_workers: int = 0,
    block_size: Optional[int] = None,
    store_path: Optional[str] = None,
    progress: bool = False,
    sim_backend: str = "auto",
) -> SuiteReport:
    """Convenience: look up a built-in suite by name and run it."""
    return SuiteRunner(
        get_suite(name),
        machine=machine,
        workers=workers,
        cache_path=cache_path,
        seed=seed,
        shard_workers=shard_workers,
        block_size=block_size,
        store_path=store_path,
        progress=progress,
        sim_backend=sim_backend,
    ).run()
