"""Synthetic DAG generator families.

The paper extracts design rules from two communication patterns; these
parameterized generators widen the scenario space so the rules (and the
search strategies that find them) can be stress-tested on structures the
paper never saw:

* ``layered_random`` — layered random DAGs (the classic scheduling
  benchmark shape): ``layers × width`` GPU kernels with random
  inter-layer dependencies.
* ``fork_join`` — repeated fork–join pipelines: each stage forks into
  parallel GPU branch chains that a CPU join synchronizes (every join
  forces the scheduler's ``cudaEventRecord``/``cudaEventSynchronize``
  insertion).
* ``tree_allreduce`` — a recursive-doubling allreduce: ``log2(ranks)``
  rounds of pack / post / wait / combine with pairwise messages, the
  communication-dominated regime.
* ``wavefront`` — a 2-D wavefront sweep: a ``width × height`` tile grid
  with right/down dependencies, all GPU, maximally sensitive to stream
  assignment (every diagonal could run in parallel).
* ``stencil_reduce`` — a 2-D wavefront sweep feeding a pairwise tree
  reduction of the tile results (the stencil+reduction pattern of e.g.
  a residual-norm check after a sweep): the wavefront's diagonal
  parallelism funnels into a log-depth combine tree, so good schedules
  must trade stream spread in the sweep against serialization in the
  reduction.

Costs are drawn from a :mod:`repro.platform` preset: per-vertex compute
is sized in units of the preset GPU's floating-point and memory rates so
kernel durations land in the few-to-tens-of-microseconds regime the
paper's programs occupy, and message sizes are sized against the preset
network bandwidth.  All randomness derives from ``spec.seed`` (see the
determinism contract in :mod:`repro.workloads.spec`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, Vertex, Work, cpu_op, gpu_op
from repro.errors import WorkloadError
from repro.platform.machine import MachineConfig
from repro.platform.presets import perlmutter_like
from repro.workloads.spec import WorkloadSpec, workload

#: Kernel duration range (seconds) synthetic compute is drawn from;
#: matches the scale of the paper's SpMV/halo kernels on the preset.
_KERNEL_S_LO = 2.0e-6
_KERNEL_S_HI = 30.0e-6
def _preset(name: str) -> MachineConfig:
    """Resolve a platform preset by name (costs are sized against it)."""
    if name == "perlmutter":
        return perlmutter_like()
    raise WorkloadError(f"unknown platform preset {name!r}")


def _gpu_work(rng: np.random.Generator, machine: MachineConfig) -> Work:
    """Random kernel work sized so its modeled duration falls in the
    canonical range on ``machine``'s GPU.

    Kernels are randomly compute- or memory-bound (the two regimes the
    cost model distinguishes), with the dominant resource sized to the
    drawn duration.
    """
    target_s = float(rng.uniform(_KERNEL_S_LO, _KERNEL_S_HI))
    if rng.random() < 0.5:  # compute-bound
        return Work(
            flops=target_s * machine.gpu.flops_per_s,
            bytes_read=0.25 * target_s * machine.gpu.mem_bw_bytes_per_s,
        )
    return Work(  # memory-bound
        flops=0.25 * target_s * machine.gpu.flops_per_s,
        bytes_read=target_s * machine.gpu.mem_bw_bytes_per_s,
    )


def _int_param(spec: WorkloadSpec, name: str, minimum: int) -> int:
    raw = spec.param_dict[name]
    value = int(raw)
    if value != raw:  # reject silent truncation (e.g. layers=2.9)
        raise WorkloadError(
            f"{spec.family!r} parameter {name}={raw!r} must be an integer"
        )
    if value < minimum:
        raise WorkloadError(
            f"{spec.family!r} parameter {name}={value} must be >= {minimum}"
        )
    return value


# ----------------------------------------------------------------------
@workload(
    "layered_random",
    description=(
        "Layered random DAG: layers x width GPU kernels, random "
        "inter-layer dependencies with probability edge_p"
    ),
    defaults={"layers": 3, "width": 2, "edge_p": 0.5, "preset": "perlmutter"},
)
def build_layered_random(spec: WorkloadSpec) -> Program:
    layers = _int_param(spec, "layers", 1)
    width = _int_param(spec, "width", 1)
    edge_p = float(spec.param_dict["edge_p"])
    if not 0.0 <= edge_p <= 1.0:
        raise WorkloadError(f"edge_p={edge_p} must be in [0, 1]")
    machine = _preset(str(spec.param_dict["preset"]))
    rng = np.random.default_rng(spec.seed)

    grid: List[List[Vertex]] = []
    vertices: List[Vertex] = []
    edges: List[Tuple[str, str]] = []
    for li in range(layers):
        row = [
            gpu_op(f"K{li}_{w}", work=_gpu_work(rng, machine))
            for w in range(width)
        ]
        grid.append(row)
        vertices += row
    for li in range(1, layers):
        for w, v in enumerate(grid[li]):
            preds = [u for u in grid[li - 1] if rng.random() < edge_p]
            if not preds:  # keep every vertex anchored to the layer above
                preds = [grid[li - 1][int(rng.integers(width))]]
            edges += [(u.name, v.name) for u in preds]

    graph = Graph.from_edges(vertices, edges).with_start_end()
    return Program(
        graph=graph,
        n_ranks=1,
        name=f"layered_random(L={layers},W={width},p={edge_p:g},seed={spec.seed})",
    )


# ----------------------------------------------------------------------
@workload(
    "fork_join",
    description=(
        "Fork-join pipeline: stages of parallel GPU branch chains, each "
        "joined by a CPU barrier op (forces CER/CES insertion)"
    ),
    defaults={"stages": 2, "branches": 2, "depth": 1, "preset": "perlmutter"},
)
def build_fork_join(spec: WorkloadSpec) -> Program:
    stages = _int_param(spec, "stages", 1)
    branches = _int_param(spec, "branches", 1)
    depth = _int_param(spec, "depth", 1)
    machine = _preset(str(spec.param_dict["preset"]))
    rng = np.random.default_rng(spec.seed)

    vertices: List[Vertex] = []
    edges: List[Tuple[str, str]] = []
    prev_join: Vertex | None = None
    for s in range(stages):
        stage_tails: List[Vertex] = []
        for b in range(branches):
            prev: Vertex | None = prev_join
            for d in range(depth):
                k = gpu_op(f"S{s}B{b}_{d}", work=_gpu_work(rng, machine))
                vertices.append(k)
                if prev is not None:
                    edges.append((prev.name, k.name))
                prev = k
            stage_tails.append(prev)  # type: ignore[arg-type]
        join = cpu_op(f"Join{s}", duration=machine.cpu.default_op_s)
        vertices.append(join)
        edges += [(t.name, join.name) for t in stage_tails]
        prev_join = join

    graph = Graph.from_edges(vertices, edges).with_start_end()
    return Program(
        graph=graph,
        n_ranks=1,
        name=(
            f"fork_join(S={stages},B={branches},D={depth},seed={spec.seed})"
        ),
    )


# ----------------------------------------------------------------------
@workload(
    "tree_allreduce",
    description=(
        "Recursive-doubling allreduce over 2**rounds ranks: per round, "
        "pack/post/wait/combine with pairwise partner messages"
    ),
    defaults={"rounds": 1, "elems": 65536, "preset": "perlmutter"},
)
def build_tree_allreduce(spec: WorkloadSpec) -> Program:
    rounds = _int_param(spec, "rounds", 1)
    elems = _int_param(spec, "elems", 1)
    machine = _preset(str(spec.param_dict["preset"]))
    rng = np.random.default_rng(spec.seed)
    n_ranks = 2**rounds
    nbytes = 8.0 * elems

    vertices: List[Vertex] = []
    edges: List[Tuple[str, str]] = []
    comm: Dict[str, CommPlan] = {}

    local = gpu_op("Reduce_local", work=_gpu_work(rng, machine))
    vertices.append(local)
    prev = local
    for r in range(rounds):
        group = f"round{r}"
        pack = gpu_op(f"Pack_{r}", work=_gpu_work(rng, machine))
        ps = cpu_op(f"PostSends_{r}", action=Action(ActionKind.POST_SENDS, group))
        pr = cpu_op(f"PostRecvs_{r}", action=Action(ActionKind.POST_RECVS, group))
        ws = cpu_op(f"WaitSend_{r}", action=Action(ActionKind.WAIT_SENDS, group))
        wr = cpu_op(f"WaitRecv_{r}", action=Action(ActionKind.WAIT_RECVS, group))
        combine = gpu_op(f"Combine_{r}", work=_gpu_work(rng, machine))
        vertices += [pack, ps, pr, ws, wr, combine]
        edges += [
            (prev.name, pack.name),
            (pack.name, ps.name),
            (ps.name, ws.name),
            (pr.name, wr.name),
            (wr.name, combine.name),
            # posts-before-waits (SPMD deadlock exclusion, as in the apps)
            (ps.name, wr.name),
            (pr.name, ws.name),
        ]
        # Pairwise exchange: every rank swaps its partial with rank^2^r.
        messages = tuple(
            Message(src=i, dst=i ^ (1 << r), nbytes=nbytes, tag=r)
            for i in range(n_ranks)
        )
        comm[group] = CommPlan(group=group, messages=messages)
        prev = combine

    graph = Graph.from_edges(vertices, edges).with_start_end()
    return Program(
        graph=graph,
        n_ranks=n_ranks,
        comm=comm,
        name=f"tree_allreduce(P={n_ranks},elems={elems},seed={spec.seed})",
    )


# ----------------------------------------------------------------------
@workload(
    "wavefront",
    description=(
        "2-D wavefront sweep: width x height GPU tile grid with "
        "right/down dependencies (anti-diagonals are parallel)"
    ),
    defaults={"width": 2, "height": 2, "preset": "perlmutter"},
)
def build_wavefront(spec: WorkloadSpec) -> Program:
    width = _int_param(spec, "width", 1)
    height = _int_param(spec, "height", 1)
    machine = _preset(str(spec.param_dict["preset"]))
    rng = np.random.default_rng(spec.seed)

    tiles: Dict[Tuple[int, int], Vertex] = {}
    vertices: List[Vertex] = []
    edges: List[Tuple[str, str]] = []
    for j in range(height):
        for i in range(width):
            t = gpu_op(f"T{i}_{j}", work=_gpu_work(rng, machine))
            tiles[(i, j)] = t
            vertices.append(t)
    for (i, j), t in tiles.items():
        if i + 1 < width:
            edges.append((t.name, tiles[(i + 1, j)].name))
        if j + 1 < height:
            edges.append((t.name, tiles[(i, j + 1)].name))

    graph = Graph.from_edges(vertices, edges).with_start_end()
    return Program(
        graph=graph,
        n_ranks=1,
        name=f"wavefront({width}x{height},seed={spec.seed})",
    )


# ----------------------------------------------------------------------
@workload(
    "stencil_reduce",
    description=(
        "2-D wavefront sweep feeding a pairwise tree reduction of the "
        "tile results (stencil + reduction, an explicit ROADMAP item)"
    ),
    defaults={"width": 3, "height": 2, "preset": "perlmutter"},
)
def build_stencil_reduce(spec: WorkloadSpec) -> Program:
    width = _int_param(spec, "width", 1)
    height = _int_param(spec, "height", 1)
    machine = _preset(str(spec.param_dict["preset"]))
    rng = np.random.default_rng(spec.seed)

    vertices: List[Vertex] = []
    edges: List[Tuple[str, str]] = []
    tiles: Dict[Tuple[int, int], Vertex] = {}
    for j in range(height):
        for i in range(width):
            t = gpu_op(f"T{i}_{j}", work=_gpu_work(rng, machine))
            tiles[(i, j)] = t
            vertices.append(t)
    for (i, j), t in tiles.items():
        if i + 1 < width:
            edges.append((t.name, tiles[(i + 1, j)].name))
        if j + 1 < height:
            edges.append((t.name, tiles[(i, j + 1)].name))

    # Pairwise tree reduction over the row-major tile results; an odd
    # element is promoted to the next level unchanged.
    level: List[Vertex] = [tiles[(i, j)] for j in range(height) for i in range(width)]
    depth = 0
    while len(level) > 1:
        nxt: List[Vertex] = []
        for k in range(0, len(level) - 1, 2):
            r = gpu_op(f"R{depth}_{k // 2}", work=_gpu_work(rng, machine))
            vertices.append(r)
            edges += [(level[k].name, r.name), (level[k + 1].name, r.name)]
            nxt.append(r)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        depth += 1

    graph = Graph.from_edges(vertices, edges).with_start_end()
    return Program(
        graph=graph,
        n_ranks=1,
        name=f"stencil_reduce({width}x{height},seed={spec.seed})",
    )
