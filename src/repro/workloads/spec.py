"""Workload specifications and the global workload registry.

A *workload* is a named, parameterized family of programs: given a
:class:`WorkloadSpec` (family name + parameters + seed) the registered
builder emits a concrete :class:`~repro.dag.program.Program` ready for
design-space exploration.  The registry turns the two hardcoded
:mod:`repro.apps` entries into one point in a large scenario space — any
subsystem (suites, experiments, benchmarks, the CLI) can enumerate or
build workloads without knowing how each family is generated.

Determinism contract
--------------------
Building the same spec twice — in the same process or across processes —
must produce programs with identical structure and identical timing
inputs, so that
:func:`repro.exec.cache.program_fingerprint` (and therefore the
persistent :class:`~repro.exec.MeasurementCache` context) is bit-stable.
Builders derive all randomness from ``spec.seed`` via
``numpy.random.default_rng`` and must never consult global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.dag.program import Program
from repro.errors import WorkloadError

#: Parameter values are JSON-scalar only, keeping specs hashable and
#: trivially serializable for reports and cache keys.
ParamValue = object  # int | float | str | bool


@dataclass(frozen=True)
class WorkloadSpec:
    """One concrete point in a workload family's parameter space.

    Parameters
    ----------
    family:
        Registered family name (e.g. ``"spmv"``, ``"layered_random"``).
    params:
        Family-specific parameters as a name→scalar mapping; unspecified
        parameters take the family's defaults.
    seed:
        Master seed for all randomness in generation.  Two builds of an
        identical spec are bit-identical.
    """

    family: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    seed: int = 0

    def __init__(
        self,
        family: str,
        params: "Optional[Mapping[str, ParamValue] | Tuple]" = None,
        seed: int = 0,
    ) -> None:
        # Normalize to a sorted tuple so equal specs hash equally
        # regardless of construction order.  The already-normalized tuple
        # form is accepted too, so ``dataclasses.replace`` round-trips.
        if params is None:
            items = ()
        elif isinstance(params, Mapping):
            items = params.items()
        else:
            items = params
        object.__setattr__(self, "family", family)
        object.__setattr__(self, "params", tuple(sorted(items)))
        object.__setattr__(self, "seed", seed)

    @property
    def param_dict(self) -> Dict[str, ParamValue]:
        return dict(self.params)

    def with_params(self, **updates: ParamValue) -> "WorkloadSpec":
        merged = self.param_dict
        merged.update(updates)
        return WorkloadSpec(self.family, merged, self.seed)

    def with_seed(self, seed: int) -> "WorkloadSpec":
        return WorkloadSpec(self.family, self.param_dict, seed)

    @property
    def label(self) -> str:
        """Short identifier used in suite reports (stable across runs)."""
        if not self.params:
            return f"{self.family}[seed={self.seed}]"
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}[{inner},seed={self.seed}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


#: A builder turns a spec into a ready-to-explore Program.
WorkloadBuilder = Callable[[WorkloadSpec], Program]


@dataclass(frozen=True)
class WorkloadFamily:
    """Registry entry: builder plus metadata for listings."""

    name: str
    builder: WorkloadBuilder
    description: str = ""
    defaults: Tuple[Tuple[str, ParamValue], ...] = ()

    def default_spec(self, seed: int = 0) -> WorkloadSpec:
        return WorkloadSpec(self.name, dict(self.defaults), seed=seed)


_REGISTRY: Dict[str, WorkloadFamily] = {}


def workload(
    name: str,
    *,
    description: str = "",
    defaults: Optional[Mapping[str, ParamValue]] = None,
) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Class-level decorator registering a builder as a workload family.

    Usage::

        @workload("layered_random", description="...", defaults={"layers": 3})
        def build_layered(spec: WorkloadSpec) -> Program:
            ...
    """

    def register(builder: WorkloadBuilder) -> WorkloadBuilder:
        if name in _REGISTRY:
            raise WorkloadError(f"workload family {name!r} already registered")
        _REGISTRY[name] = WorkloadFamily(
            name=name,
            builder=builder,
            description=description,
            defaults=tuple(sorted((defaults or {}).items())),
        )
        return builder

    return register


def get_family(name: str) -> WorkloadFamily:
    """Look up a registered family, raising :class:`WorkloadError` if absent."""
    _ensure_builtin_families()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise WorkloadError(
            f"unknown workload family {name!r}; registered: {known}"
        ) from None


def list_families() -> List[WorkloadFamily]:
    """All registered families, sorted by name."""
    _ensure_builtin_families()
    return [f for _, f in sorted(_REGISTRY.items())]


def build_workload(spec: WorkloadSpec) -> Program:
    """Build the concrete program for ``spec`` via its registered family.

    Unknown parameter names are rejected here (against the family's
    defaults) so typos fail fast instead of silently using defaults.
    """
    family = get_family(spec.family)
    known = {k for k, _ in family.defaults}
    if known:  # families without declared defaults accept anything
        unknown = set(spec.param_dict) - known
        if unknown:
            raise WorkloadError(
                f"unknown parameters for {spec.family!r}: {sorted(unknown)}; "
                f"valid: {sorted(known)}"
            )
    merged = dict(family.defaults)
    merged.update(spec.param_dict)
    return family.builder(replace_params(spec, merged))


def replace_params(spec: WorkloadSpec, merged: Mapping[str, ParamValue]) -> WorkloadSpec:
    """Spec with defaults folded in (what builders actually receive)."""
    return WorkloadSpec(spec.family, dict(merged), spec.seed)


def _ensure_builtin_families() -> None:
    """Import the modules whose import side effect registers the built-in
    families (adapters for repro.apps, the synthetic generators)."""
    import repro.workloads.adapters  # noqa: F401
    import repro.workloads.synthetic  # noqa: F401


__all__ = [
    "ParamValue",
    "WorkloadBuilder",
    "WorkloadError",
    "WorkloadFamily",
    "WorkloadSpec",
    "build_workload",
    "get_family",
    "list_families",
    "workload",
]
