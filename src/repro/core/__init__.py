"""The end-to-end design-rule pipeline (paper Figure 2).

DAG → (MCTS | random | exhaustive) exploration → class labels → feature
vectors → decision tree → design rules.
"""

from repro.core.pipeline import (
    DesignRulePipeline,
    PipelineConfig,
    PipelineResult,
    StreamingPipelineResult,
)

__all__ = [
    "DesignRulePipeline",
    "PipelineConfig",
    "PipelineResult",
    "StreamingPipelineResult",
]
