"""Directed acyclic graph of program operations (paper §III-A).

:class:`Graph` stores vertices by name with explicit dependency edges and
provides the structural queries needed by scheduling and search: predecessor
and successor sets, acyclicity validation, reachability, and the artificial
``start``/``end`` augmentation the paper describes ("there must be a path
from start to each vertex and a path from each vertex to end").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.dag.vertex import END, START, OpKind, Vertex
from repro.errors import CycleError, GraphError


class Graph:
    """A DAG of :class:`~repro.dag.vertex.Vertex` operations.

    Vertices are keyed by name.  Edges ``u -> v`` mean "v may start only
    after u completes".  The graph is mutable during construction; call
    :meth:`validate` (or any traversal helper, which validates implicitly)
    once built.
    """

    def __init__(self) -> None:
        self._vertices: Dict[str, Vertex] = {}
        self._succs: Dict[str, Set[str]] = {}
        self._preds: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        """Add ``vertex``; re-adding the identical vertex is a no-op."""
        existing = self._vertices.get(vertex.name)
        if existing is not None:
            if existing != vertex:
                raise GraphError(
                    f"vertex {vertex.name!r} already present with different "
                    f"attributes"
                )
            return existing
        self._vertices[vertex.name] = vertex
        self._succs[vertex.name] = set()
        self._preds[vertex.name] = set()
        return vertex

    def add_edge(self, u: Vertex | str, v: Vertex | str) -> None:
        """Add the dependency edge ``u -> v`` (idempotent).

        Vertex arguments are added to the graph if not yet present; string
        arguments must name existing vertices.
        """
        un = self._resolve(u)
        vn = self._resolve(v)
        if un == vn:
            raise GraphError(f"self-edge on {un!r} is not allowed")
        self._succs[un].add(vn)
        self._preds[vn].add(un)

    def _resolve(self, v: Vertex | str) -> str:
        if isinstance(v, Vertex):
            self.add_vertex(v)
            return v.name
        if v not in self._vertices:
            raise GraphError(f"unknown vertex {v!r}")
        return v

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        if isinstance(name, Vertex):
            return name.name in self._vertices
        return name in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex(self, name: str) -> Vertex:
        """Return the vertex with ``name``, raising :class:`GraphError` if absent."""
        try:
            return self._vertices[name]
        except KeyError:
            raise GraphError(f"unknown vertex {name!r}") from None

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertices, in insertion order."""
        return tuple(self._vertices.values())

    @property
    def vertex_names(self) -> Tuple[str, ...]:
        return tuple(self._vertices)

    def successors(self, v: Vertex | str) -> Tuple[Vertex, ...]:
        name = v.name if isinstance(v, Vertex) else v
        if name not in self._vertices:
            raise GraphError(f"unknown vertex {name!r}")
        return tuple(self._vertices[s] for s in sorted(self._succs[name]))

    def predecessors(self, v: Vertex | str) -> Tuple[Vertex, ...]:
        name = v.name if isinstance(v, Vertex) else v
        if name not in self._vertices:
            raise GraphError(f"unknown vertex {name!r}")
        return tuple(self._vertices[p] for p in sorted(self._preds[name]))

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over edges as (u, v) vertex pairs."""
        for un, succs in self._succs.items():
            for vn in sorted(succs):
                yield self._vertices[un], self._vertices[vn]

    def n_edges(self) -> int:
        return sum(len(s) for s in self._succs.values())

    def sources(self) -> Tuple[Vertex, ...]:
        """Vertices with no predecessors."""
        return tuple(
            v for v in self._vertices.values() if not self._preds[v.name]
        )

    def sinks(self) -> Tuple[Vertex, ...]:
        """Vertices with no successors."""
        return tuple(
            v for v in self._vertices.values() if not self._succs[v.name]
        )

    def gpu_vertices(self) -> Tuple[Vertex, ...]:
        """All GPU-kind vertices, in insertion order."""
        return tuple(v for v in self._vertices.values() if v.kind is OpKind.GPU)

    # ------------------------------------------------------------------
    # validation and structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Vertex]:
        """One topological order (Kahn's algorithm); raises on cycles."""
        indeg = {n: len(p) for n, p in self._preds.items()}
        # Deterministic: process ready vertices in insertion order.
        order: List[Vertex] = []
        ready = [n for n in self._vertices if indeg[n] == 0]
        while ready:
            n = ready.pop(0)
            order.append(self._vertices[n])
            for s in sorted(self._succs[n]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self._vertices):
            cyc = sorted(n for n in self._vertices if indeg[n] > 0)
            raise CycleError(f"graph contains a cycle through {cyc}")
        return order

    def validate(self) -> None:
        """Check acyclicity and start/end reachability requirements.

        If the graph contains ``start``/``end`` vertices, every vertex must
        be reachable from ``start`` and must reach ``end`` (paper §III-A).
        """
        self.topological_order()
        if START.name in self._vertices:
            reach = self._reachable_from(START.name)
            missing = set(self._vertices) - reach
            if missing:
                raise GraphError(
                    f"vertices unreachable from start: {sorted(missing)}"
                )
        if END.name in self._vertices:
            coreach = self._reaching(END.name)
            missing = set(self._vertices) - coreach
            if missing:
                raise GraphError(
                    f"vertices that cannot reach end: {sorted(missing)}"
                )

    def _reachable_from(self, name: str) -> Set[str]:
        seen = {name}
        stack = [name]
        while stack:
            n = stack.pop()
            for s in self._succs[n]:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen

    def _reaching(self, name: str) -> Set[str]:
        seen = {name}
        stack = [name]
        while stack:
            n = stack.pop()
            for p in self._preds[n]:
                if p not in seen:
                    seen.add(p)
                    stack.append(p)
        return seen

    def with_start_end(self) -> "Graph":
        """Return a copy augmented with artificial ``start``/``end`` vertices.

        ``start`` precedes every source and ``end`` follows every sink, so
        the result satisfies the paper's requirement that there is a path
        from ``start`` to each vertex and from each vertex to ``end``.
        Idempotent: if both already exist, returns a plain copy.
        """
        g = self.copy()
        if START.name not in g._vertices:
            sources = [v for v in g.sources() if v.name != END.name]
            g.add_vertex(START)
            for s in sources:
                g.add_edge(START, s)
        if END.name not in g._vertices:
            sinks = [
                v
                for v in g.sinks()
                if v.name not in (START.name, END.name)
            ]
            g.add_vertex(END)
            for s in sinks:
                g.add_edge(s, END)
        g.validate()
        return g

    def copy(self) -> "Graph":
        g = Graph()
        g._vertices = dict(self._vertices)
        g._succs = {n: set(s) for n, s in self._succs.items()}
        g._preds = {n: set(p) for n, p in self._preds.items()}
        return g

    def transitive_closure(self) -> Mapping[str, Set[str]]:
        """Map each vertex name to the set of names reachable from it."""
        order = self.topological_order()
        closure: Dict[str, Set[str]] = {v.name: set() for v in order}
        for v in reversed(order):
            acc = closure[v.name]
            for s in self._succs[v.name]:
                acc.add(s)
                acc |= closure[s]
        return closure

    def ancestors(self, v: Vertex | str) -> Set[str]:
        name = v.name if isinstance(v, Vertex) else v
        return self._reaching(name) - {name}

    def descendants(self, v: Vertex | str) -> Set[str]:
        name = v.name if isinstance(v, Vertex) else v
        return self._reachable_from(name) - {name}

    # ------------------------------------------------------------------
    # interop / rendering
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Return a :class:`networkx.DiGraph` view (vertex objects as node data)."""
        import networkx as nx

        g = nx.DiGraph()
        for v in self._vertices.values():
            g.add_node(v.name, vertex=v)
        for u, v in self.edges():
            g.add_edge(u.name, v.name)
        return g

    def to_dot(self) -> str:
        """Render the graph in GraphViz DOT syntax."""
        shape = {
            OpKind.CPU: "box",
            OpKind.GPU: "ellipse",
            OpKind.START: "point",
            OpKind.END: "point",
            OpKind.EVENT_RECORD: "diamond",
            OpKind.EVENT_SYNC: "diamond",
            OpKind.STREAM_WAIT: "diamond",
        }
        lines = ["digraph program {", "  rankdir=TB;"]
        for v in self._vertices.values():
            lines.append(
                f'  "{v.name}" [shape={shape[v.kind]}, '
                f'label="{v.name}\\n({v.kind.value})"];'
            )
        for u, v in self.edges():
            lines.append(f'  "{u.name}" -> "{v.name}";')
        lines.append("}")
        return "\n".join(lines)

    @classmethod
    def from_edges(
        cls, vertices: Iterable[Vertex], edges: Iterable[Tuple[str, str]]
    ) -> "Graph":
        """Build a graph from a vertex iterable and (name, name) edge pairs."""
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={len(self)}, |E|={self.n_edges()})"
