"""Vertex taxonomy for CUDA+MPI program DAGs (paper Table II).

The paper distinguishes three vertex types:

======================  =====================================================
Vertex type             Description
======================  =====================================================
``CPU``                 A synchronous CPU operation.
``GPU``                 An asynchronous GPU operation not yet assigned to a
                        stream.
``BoundGPU``            A GPU vertex assigned to an execution stream (this
                        binding happens during scheduling, so it lives in
                        :mod:`repro.schedule`, not here).
======================  =====================================================

In addition, scheduling inserts synchronization operations
(``cudaEventRecord`` / ``cudaEventSynchronize`` / ``cudaStreamWaitEvent``)
per paper Table III; those also have :class:`OpKind` entries so the
simulator can interpret them uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpKind(enum.Enum):
    """Kind of a DAG vertex / schedulable operation."""

    #: Artificial program entry point (paper §III-A).
    START = "start"
    #: Artificial program exit; modeled as a device-wide synchronize.
    END = "end"
    #: Synchronous CPU operation (may carry an MPI action).
    CPU = "cpu"
    #: Asynchronous GPU operation, not yet bound to a stream.
    GPU = "gpu"
    #: ``cudaEventRecord`` inserted during scheduling.
    EVENT_RECORD = "cudaEventRecord"
    #: ``cudaEventSynchronize`` inserted during scheduling (CPU blocks).
    EVENT_SYNC = "cudaEventSynchronize"
    #: ``cudaStreamWaitEvent`` inserted during scheduling (stream blocks).
    STREAM_WAIT = "cudaStreamWaitEvent"

    @property
    def is_gpu(self) -> bool:
        """True for operations that execute on a GPU stream."""
        return self in (OpKind.GPU,)

    @property
    def is_sync(self) -> bool:
        """True for inserted synchronization operations."""
        return self in (
            OpKind.EVENT_RECORD,
            OpKind.EVENT_SYNC,
            OpKind.STREAM_WAIT,
        )


class ActionKind(enum.Enum):
    """Semantic action a CPU vertex performs when executed."""

    #: Pure delay; no side effects.
    NOOP = "noop"
    #: Post the rank's non-blocking sends for a communication group.
    POST_SENDS = "post_sends"
    #: Post the rank's non-blocking receives for a communication group.
    POST_RECVS = "post_recvs"
    #: Block until all of the rank's sends in a group complete.
    WAIT_SENDS = "wait_sends"
    #: Block until all of the rank's receives in a group complete.
    WAIT_RECVS = "wait_recvs"


@dataclass(frozen=True)
class Action:
    """Semantic action attached to a CPU vertex.

    ``group`` names a :class:`~repro.dag.program.CommPlan` on the enclosing
    :class:`~repro.dag.program.Program`; post/wait actions with the same
    group operate on the same set of MPI requests.
    """

    kind: ActionKind
    group: str = "default"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind.value}({self.group})"


@dataclass(frozen=True)
class Work:
    """Characterization of the work a vertex performs.

    The platform cost model (:mod:`repro.platform.costs`) converts ``Work``
    into a duration.  Any combination of fields may be zero; a vertex with
    all-zero work and no explicit duration costs only its launch/dispatch
    overhead.
    """

    #: Floating-point operations performed.
    flops: float = 0.0
    #: Bytes read from (GPU or CPU) memory.
    bytes_read: float = 0.0
    #: Bytes written to memory.
    bytes_written: float = 0.0

    @property
    def bytes_moved(self) -> float:
        """Total memory traffic in bytes."""
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "Work":
        """Return a copy with all fields multiplied by ``factor``."""
        return Work(
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )


@dataclass(frozen=True)
class Vertex:
    """A single operation in a CUDA+MPI program DAG.

    Vertices are identified by ``name`` within a :class:`~repro.dag.graph.Graph`;
    two vertices with the same name are considered the same operation.

    Parameters
    ----------
    name:
        Unique identifier, also used in generated design rules (so choose
        human-meaningful names such as ``"Pack"`` or ``"yL"``).
    kind:
        The :class:`OpKind` of the operation.
    duration:
        Optional explicit duration in seconds.  When set, it overrides the
        cost model.
    work:
        Optional :class:`Work` characterization used by the cost model.
    action:
        Optional semantic :class:`Action` (CPU vertices only).
    payload:
        Optional name of a numeric callback registered on the enclosing
        :class:`~repro.dag.program.Program`; the simulator invokes it when
        the operation completes, enabling end-to-end numeric verification.
    reads / writes:
        Names of logical buffers this operation reads / marks ready, used by
        the data-hazard tracker.
    """

    name: str
    kind: OpKind
    duration: Optional[float] = None
    work: Optional[Work] = None
    action: Optional[Action] = None
    payload: Optional[str] = None
    reads: Tuple[str, ...] = field(default=())
    writes: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.action is not None and self.kind is not OpKind.CPU:
            raise ValueError(
                f"vertex {self.name!r}: actions are only valid on CPU "
                f"vertices, not {self.kind.value}"
            )
        if not self.name:
            raise ValueError("vertex name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def with_name(self, name: str) -> "Vertex":
        """Return a copy with a different name."""
        return Vertex(
            name=name,
            kind=self.kind,
            duration=self.duration,
            work=self.work,
            action=self.action,
            payload=self.payload,
            reads=self.reads,
            writes=self.writes,
        )


def cpu_op(
    name: str,
    *,
    duration: Optional[float] = None,
    work: Optional[Work] = None,
    action: Optional[Action] = None,
    payload: Optional[str] = None,
    reads: Tuple[str, ...] = (),
    writes: Tuple[str, ...] = (),
) -> Vertex:
    """Convenience constructor for a synchronous CPU vertex."""
    return Vertex(
        name=name,
        kind=OpKind.CPU,
        duration=duration,
        work=work,
        action=action,
        payload=payload,
        reads=reads,
        writes=writes,
    )


def gpu_op(
    name: str,
    *,
    duration: Optional[float] = None,
    work: Optional[Work] = None,
    payload: Optional[str] = None,
    reads: Tuple[str, ...] = (),
    writes: Tuple[str, ...] = (),
) -> Vertex:
    """Convenience constructor for an (unbound) GPU kernel vertex."""
    return Vertex(
        name=name,
        kind=OpKind.GPU,
        duration=duration,
        work=work,
        payload=payload,
        reads=reads,
        writes=writes,
    )


#: Shared artificial entry vertex (paper §III-A).
START = Vertex(name="start", kind=OpKind.START)

#: Shared artificial exit vertex, modeled as a device-wide synchronize.
END = Vertex(name="end", kind=OpKind.END)
