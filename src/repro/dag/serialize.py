"""JSON (de)serialization for DAGs and programs.

Numeric payload callbacks are not serializable; programs round-trip
structurally (graph, comm plans, work overrides) with payloads dropped.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, OpKind, Vertex, Work


def vertex_to_dict(v: Vertex) -> Dict[str, Any]:
    d: Dict[str, Any] = {"name": v.name, "kind": v.kind.value}
    if v.duration is not None:
        d["duration"] = v.duration
    if v.work is not None:
        d["work"] = {
            "flops": v.work.flops,
            "bytes_read": v.work.bytes_read,
            "bytes_written": v.work.bytes_written,
        }
    if v.action is not None:
        d["action"] = {"kind": v.action.kind.value, "group": v.action.group}
    if v.payload is not None:
        d["payload"] = v.payload
    if v.reads:
        d["reads"] = list(v.reads)
    if v.writes:
        d["writes"] = list(v.writes)
    return d


def vertex_from_dict(d: Dict[str, Any]) -> Vertex:
    work = None
    if "work" in d:
        work = Work(**d["work"])
    action = None
    if "action" in d:
        action = Action(
            kind=ActionKind(d["action"]["kind"]), group=d["action"]["group"]
        )
    return Vertex(
        name=d["name"],
        kind=OpKind(d["kind"]),
        duration=d.get("duration"),
        work=work,
        action=action,
        payload=d.get("payload"),
        reads=tuple(d.get("reads", ())),
        writes=tuple(d.get("writes", ())),
    )


def graph_to_dict(g: Graph) -> Dict[str, Any]:
    return {
        "vertices": [vertex_to_dict(v) for v in g],
        "edges": [[u.name, v.name] for u, v in g.edges()],
    }


def graph_from_dict(d: Dict[str, Any]) -> Graph:
    return Graph.from_edges(
        (vertex_from_dict(vd) for vd in d["vertices"]),
        ((u, v) for u, v in d["edges"]),
    )


def program_to_dict(p: Program) -> Dict[str, Any]:
    return {
        "name": p.name,
        "n_ranks": p.n_ranks,
        "graph": graph_to_dict(p.graph),
        "comm": {
            group: [
                {
                    "src": m.src,
                    "dst": m.dst,
                    "nbytes": m.nbytes,
                    "tag": m.tag,
                    "src_buf": m.src_buf,
                    "dst_buf": m.dst_buf,
                    "hazard_buf": m.hazard_buf,
                }
                for m in plan.messages
            ]
            for group, plan in p.comm.items()
        },
        "work_overrides": [
            {
                "vertex": name,
                "rank": rank,
                "work": {
                    "flops": w.flops,
                    "bytes_read": w.bytes_read,
                    "bytes_written": w.bytes_written,
                },
            }
            for (name, rank), w in p.work_overrides.items()
        ],
    }


def program_from_dict(d: Dict[str, Any]) -> Program:
    comm = {
        group: CommPlan(
            group=group,
            messages=tuple(Message(**md) for md in msgs),
        )
        for group, msgs in d.get("comm", {}).items()
    }
    overrides = {
        (o["vertex"], o["rank"]): Work(**o["work"])
        for o in d.get("work_overrides", ())
    }
    return Program(
        graph=graph_from_dict(d["graph"]),
        n_ranks=d.get("n_ranks", 1),
        comm=comm,
        work_overrides=overrides,
        name=d.get("name", "program"),
    )


def program_to_json(p: Program, indent: int = 2) -> str:
    return json.dumps(program_to_dict(p), indent=indent, sort_keys=True)


def program_from_json(s: str) -> Program:
    return program_from_dict(json.loads(s))
