"""A complete CUDA+MPI program: DAG + communication plans + numeric payloads.

The DAG (:class:`~repro.dag.graph.Graph`) captures *structure*; the
:class:`Program` adds everything the simulator needs to execute a schedule
of that DAG on an SPMD machine:

* per-rank communication plans (who sends what to whom, in which
  communication *group* — the link between ``post_sends`` and
  ``wait_sends`` actions),
* optional per-(vertex, rank) work overrides (ranks rarely have identical
  local problem sizes), and
* an optional registry of numeric payload callbacks so that executing a
  schedule also computes a real result (used to verify, e.g., that every
  explored SpMV schedule computes the correct ``y = Ax``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dag.graph import Graph
from repro.dag.vertex import ActionKind, OpKind, Vertex, Work
from repro.errors import GraphError


@dataclass(frozen=True)
class Message:
    """One point-to-point message in a communication plan.

    ``src_buf``/``dst_buf`` optionally name logical buffers in the numeric
    payload context; on transfer completion the simulator copies the source
    rank's ``src_buf`` into the destination rank's ``dst_buf``.
    """

    src: int
    dst: int
    nbytes: float
    tag: int = 0
    src_buf: Optional[str] = None
    dst_buf: Optional[str] = None
    #: Logical buffer name the transfer *reads* for hazard tracking; the
    #: producer vertex must list it in ``writes``.  Optional and distinct
    #: from ``src_buf`` so hazard granularity can be coarser than the
    #: concrete per-destination arrays.
    hazard_buf: Optional[str] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("self-messages are not modeled")
        if self.nbytes < 0:
            raise ValueError("message size must be non-negative")


@dataclass
class CommPlan:
    """All messages of one communication group, for all ranks.

    A *group* ties the four MPI actions together: ``post_sends(g)`` posts
    every message in ``sends_from(rank)``, ``wait_sends(g)`` waits for them,
    and analogously for receives.
    """

    group: str
    messages: Tuple[Message, ...] = ()

    def sends_from(self, rank: int) -> Tuple[Message, ...]:
        return tuple(m for m in self.messages if m.src == rank)

    def recvs_to(self, rank: int) -> Tuple[Message, ...]:
        return tuple(m for m in self.messages if m.dst == rank)

    @property
    def n_messages(self) -> int:
        return len(self.messages)

    def total_bytes(self) -> float:
        return sum(m.nbytes for m in self.messages)


#: Signature of a numeric payload callback: receives the per-rank context
#: (see :class:`repro.sim.semantics.RankContext`) when the op completes.
PayloadFn = Callable[[object], None]


@dataclass
class Program:
    """A CUDA+MPI program ready for design-space exploration.

    Parameters
    ----------
    graph:
        The operation DAG, including artificial ``start``/``end`` vertices
        (use :meth:`repro.dag.graph.Graph.with_start_end`).
    n_ranks:
        Number of MPI ranks the program targets (SPMD: every rank executes
        the same schedule).
    comm:
        Communication plans by group name.
    payloads:
        Numeric callbacks by name, referenced from ``Vertex.payload``.
    work_overrides:
        Per-(vertex name, rank) :class:`Work` overriding ``Vertex.work``.
    name:
        Human-readable identifier used in reports.
    """

    graph: Graph
    n_ranks: int = 1
    comm: Dict[str, CommPlan] = field(default_factory=dict)
    payloads: Dict[str, PayloadFn] = field(default_factory=dict)
    work_overrides: Dict[Tuple[str, int], Work] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.graph.validate()
        self._check_actions()

    def _check_actions(self) -> None:
        """Every post/wait action must reference a known comm group, and
        every group referenced by a wait must also be posted somewhere."""
        posted: Dict[str, List[str]] = {}
        waited: Dict[str, List[str]] = {}
        for v in self.graph:
            if v.action is None:
                continue
            if v.action.kind in (ActionKind.POST_SENDS, ActionKind.POST_RECVS):
                posted.setdefault(v.action.group, []).append(v.name)
            elif v.action.kind in (ActionKind.WAIT_SENDS, ActionKind.WAIT_RECVS):
                waited.setdefault(v.action.group, []).append(v.name)
            if v.action.group not in self.comm:
                raise GraphError(
                    f"vertex {v.name!r} references unknown comm group "
                    f"{v.action.group!r}"
                )
        for group, names in waited.items():
            if group not in posted:
                raise GraphError(
                    f"comm group {group!r} is waited on by {names} but never "
                    f"posted"
                )

    # ------------------------------------------------------------------
    def work_for(self, vertex: Vertex | str, rank: int) -> Optional[Work]:
        """Effective :class:`Work` of ``vertex`` on ``rank``."""
        name = vertex.name if isinstance(vertex, Vertex) else vertex
        override = self.work_overrides.get((name, rank))
        if override is not None:
            return override
        return self.graph.vertex(name).work

    def payload_fn(self, vertex: Vertex) -> Optional[PayloadFn]:
        if vertex.payload is None:
            return None
        try:
            return self.payloads[vertex.payload]
        except KeyError:
            raise GraphError(
                f"vertex {vertex.name!r} references unknown payload "
                f"{vertex.payload!r}"
            ) from None

    def comm_plan(self, group: str) -> CommPlan:
        try:
            return self.comm[group]
        except KeyError:
            raise GraphError(f"unknown comm group {group!r}") from None

    def schedulable_vertices(self) -> Tuple[Vertex, ...]:
        """Program vertices that appear in schedules (excludes start/end)."""
        return tuple(
            v
            for v in self.graph
            if v.kind not in (OpKind.START, OpKind.END)
        )

    def gpu_vertices(self) -> Tuple[Vertex, ...]:
        return self.graph.gpu_vertices()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, ranks={self.n_ranks}, "
            f"|V|={len(self.graph)}, groups={sorted(self.comm)})"
        )
