"""Topological traversals of a program DAG (paper §III-B).

"A topological traversal of G_P specifies P, where all dependencies of a
vertex are completed before the vertex is executed."  These helpers
enumerate, count, sample, and verify such traversals.  Note the sampler
matches the paper's rollout policy — at each step a uniformly random vertex
is chosen *from the current frontier* — which is not the same as sampling
uniformly from the set of all linear extensions (documented on
:func:`random_topological_order`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.dag.graph import Graph
from repro.dag.vertex import Vertex
from repro.errors import GraphError


def is_topological_order(graph: Graph, order: Sequence[Vertex | str]) -> bool:
    """Return True iff ``order`` is a valid topological order of ``graph``.

    ``order`` must contain every vertex exactly once.
    """
    names = [v.name if isinstance(v, Vertex) else v for v in order]
    if len(names) != len(graph) or set(names) != set(graph.vertex_names):
        return False
    pos = {n: i for i, n in enumerate(names)}
    for u, v in graph.edges():
        if pos[u.name] >= pos[v.name]:
            return False
    return True


def all_topological_orders(graph: Graph) -> Iterator[List[Vertex]]:
    """Yield every topological order of ``graph`` (backtracking enumeration).

    The number of orders (linear extensions) can be factorial in |V|; use
    :func:`count_linear_extensions` to size the space first.
    """
    graph.topological_order()  # validates acyclicity
    preds = {v.name: set(n.name for n in graph.predecessors(v)) for v in graph}
    placed: List[Vertex] = []
    placed_names: set = set()

    def frontier() -> List[Vertex]:
        return [
            v
            for v in graph
            if v.name not in placed_names and preds[v.name] <= placed_names
        ]

    def rec() -> Iterator[List[Vertex]]:
        if len(placed) == len(graph):
            yield list(placed)
            return
        for v in frontier():
            placed.append(v)
            placed_names.add(v.name)
            yield from rec()
            placed.pop()
            placed_names.remove(v.name)

    yield from rec()


def count_linear_extensions(graph: Graph) -> int:
    """Count topological orders via dynamic programming over downsets.

    Exponential in the *width* of the DAG rather than factorial in |V|;
    practical for the program DAGs in this repository (tens of vertices,
    small width).
    """
    graph.topological_order()
    names: Tuple[str, ...] = graph.vertex_names
    index = {n: i for i, n in enumerate(names)}
    pred_masks = [0] * len(names)
    for u, v in graph.edges():
        pred_masks[index[v.name]] |= 1 << index[u.name]
    n = len(names)
    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def count(mask: int) -> int:
        if mask == full:
            return 1
        total = 0
        for i in range(n):
            bit = 1 << i
            if mask & bit:
                continue
            if (pred_masks[i] & mask) == pred_masks[i]:
                total += count(mask | bit)
        return total

    try:
        return count(0)
    finally:
        count.cache_clear()


def random_topological_order(
    graph: Graph, rng: np.random.Generator
) -> List[Vertex]:
    """Sample a topological order by uniform frontier choice.

    This is the paper's rollout policy (§III-C3): "Recursively, random
    children are selected until the operation sequence is complete."  The
    induced distribution over complete orders is *not* uniform — orders
    reachable through narrow frontiers are more likely — but it matches the
    reference system's behaviour.
    """
    preds: Dict[str, set] = {
        v.name: set(p.name for p in graph.predecessors(v)) for v in graph
    }
    remaining = {v.name: v for v in graph}
    placed: List[Vertex] = []
    placed_names: set = set()
    while remaining:
        frontier = sorted(
            n for n, p in preds.items()
            if n in remaining and p <= placed_names
        )
        if not frontier:
            raise GraphError("graph has a cycle; no frontier available")
        choice = frontier[int(rng.integers(len(frontier)))]
        placed.append(remaining.pop(choice))
        placed_names.add(choice)
    return placed


def longest_path_lengths(graph: Graph) -> Dict[str, int]:
    """Map vertex name -> length (in edges) of the longest path ending there.

    Useful for level-based layouts and as a quick critical-path proxy.
    """
    order = graph.topological_order()
    depth: Dict[str, int] = {}
    for v in order:
        preds = graph.predecessors(v)
        depth[v.name] = 1 + max((depth[p.name] for p in preds), default=-1)
    return depth
