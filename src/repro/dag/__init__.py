"""DAG representation of CUDA+MPI programs (paper §III-A, Table II).

A program is a directed acyclic graph whose vertices are operations — CPU
ops, GPU kernels (initially unassigned to a stream), and synchronization
ops — and whose edges are dependencies.  The design space of the program is
the set of topological traversals of the graph combined with stream
assignments for the GPU vertices.
"""

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.traversal import (
    all_topological_orders,
    count_linear_extensions,
    is_topological_order,
    random_topological_order,
)
from repro.dag.vertex import Action, ActionKind, OpKind, Vertex, Work, cpu_op, gpu_op

__all__ = [
    "Action",
    "ActionKind",
    "CommPlan",
    "Graph",
    "Message",
    "OpKind",
    "Program",
    "Vertex",
    "Work",
    "all_topological_orders",
    "count_linear_extensions",
    "cpu_op",
    "gpu_op",
    "is_topological_order",
    "random_topological_order",
]
