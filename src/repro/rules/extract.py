"""Extract rulesets from a fitted decision tree (paper §IV-D).

"The design rules that define each performance class can be determined by
all paths through the decision tree that arrive in a leaf node that
contains that performance class."
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.ml.features import Feature
from repro.ml.tree import DecisionTree
from repro.rules.ruleset import Rule, RuleSet


def extract_rulesets(
    tree: DecisionTree, features: Sequence[Feature]
) -> List[RuleSet]:
    """One :class:`RuleSet` per leaf, ordered by descending sample count.

    The branch outcome maps to the rule value directly: binary features
    split at 0.5, so the "> threshold" branch asserts ``feature == 1``.
    """
    out: List[RuleSet] = []
    for conds, leaf in tree.paths():
        rules = frozenset(
            Rule(feature=features[f], value=val) for f, val in conds
        )
        out.append(
            RuleSet(
                rules=rules,
                predicted_class=leaf.predicted_class,
                n_samples=leaf.n_samples,
                class_proportions=tuple(leaf.class_proportions()),
                leaf_id=leaf.node_id,
            )
        )
    out.sort(key=lambda rs: (-rs.n_samples, rs.leaf_id))
    return out


def rulesets_by_class(rulesets: Sequence[RuleSet]) -> Dict[int, List[RuleSet]]:
    """Group rulesets by predicted class, preserving sample-count order."""
    grouped: Dict[int, List[RuleSet]] = {}
    for rs in rulesets:
        grouped.setdefault(rs.predicted_class, []).append(rs)
    return grouped
