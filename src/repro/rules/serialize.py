"""JSON round-trip for rules and their features.

Rules are plain statements over two operation names — an ordering
(:class:`~repro.ml.features.OrderFeature`) or a stream assignment
(:class:`~repro.ml.features.StreamFeature`) plus a boolean value — so
they serialize to three-field dicts.  The round-trip is canonical:
``rule_from_dict(rule_to_dict(r)) == r`` for every rule the tree
extractor can produce, and the dict form is key-sorted JSON-stable, so
persisted artifacts (:mod:`repro.advisor.store`) are bit-identical
across processes.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ArtifactError
from repro.ml.features import Feature, OrderFeature, StreamFeature
from repro.rules.ruleset import Rule

#: ``kind`` tags understood by :func:`feature_from_dict`.
_KINDS = {"order": OrderFeature, "stream": StreamFeature}


def feature_to_dict(feature: Feature) -> Dict[str, str]:
    """``{"kind", "u", "v"}`` form of an order/stream feature."""
    for kind, cls in _KINDS.items():
        if isinstance(feature, cls):
            return {"kind": kind, "u": feature.u, "v": feature.v}
    raise ArtifactError(
        f"cannot serialize feature of type {type(feature).__name__}"
    )


def feature_from_dict(data: Dict[str, str]) -> Feature:
    """Inverse of :func:`feature_to_dict`."""
    try:
        cls = _KINDS[data["kind"]]
        return cls(u=data["u"], v=data["v"])
    except KeyError as exc:
        raise ArtifactError(f"malformed feature dict {data!r}") from exc


def rule_to_dict(rule: Rule) -> Dict[str, object]:
    """JSON-ready dict of one rule (feature fields + value)."""
    out: Dict[str, object] = dict(feature_to_dict(rule.feature))
    out["value"] = bool(rule.value)
    return out


def rule_from_dict(data: Dict[str, object]) -> Rule:
    """Inverse of :func:`rule_to_dict`."""
    if "value" not in data:
        raise ArtifactError(f"malformed rule dict {data!r}")
    return Rule(
        feature=feature_from_dict(data),  # type: ignore[arg-type]
        value=bool(data["value"]),
    )
