"""Design-rule generation and comparison (paper §IV-D and §V).

Root-to-leaf paths of the trained decision tree become *rulesets*; each
ruleset is a conjunction of ordering / stream-assignment constraints that
places an implementation in a performance class.  Rulesets derived from
search subsets are compared against the canonical (full-space) rulesets
and annotated overconstrained / underconstrained exactly as in the
paper's Tables VI-VIII.
"""

from repro.rules.compare import Annotation, CompareResult, compare_rulesets
from repro.rules.extract import extract_rulesets
from repro.rules.render import render_ruleset_table, render_rulesets
from repro.rules.ruleset import Rule, RuleSet
from repro.rules.score import (
    RuleScore,
    class_rules,
    op_role,
    rule_satisfied,
    rule_transfers,
    score_rules,
    transfer_summary,
)
from repro.rules.serialize import rule_from_dict, rule_to_dict

__all__ = [
    "Annotation",
    "CompareResult",
    "Rule",
    "RuleScore",
    "RuleSet",
    "class_rules",
    "compare_rulesets",
    "extract_rulesets",
    "op_role",
    "render_ruleset_table",
    "render_rulesets",
    "rule_from_dict",
    "rule_satisfied",
    "rule_to_dict",
    "rule_transfers",
    "score_rules",
    "transfer_summary",
]
