"""Ruleset consistency analysis against canonical rules (paper §V).

"The rules generated for the full SpMV traversal ... are taken as the
canonical, accurate rules. ... two kinds of inconsistencies are observed.
First, a ruleset may be *overconstrained* — consistent with the canonical
rules but with additional harmless restrictions [blue].  Second, a ruleset
may be *underconstrained*; i.e., it does not restrict the order and
assignment of operations sufficiently [red, 'insufficient rules']."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rules.ruleset import Rule, RuleSet


class Annotation(enum.Enum):
    """Consistency of a ruleset with the canonical rulesets of its class."""

    #: Identical to a canonical ruleset.
    EXACT = "exact"
    #: Implies a canonical ruleset, with extra harmless rules (blue).
    OVERCONSTRAINED = "overconstrained"
    #: Implies no canonical ruleset — misses constraints (red).
    UNDERCONSTRAINED = "underconstrained"
    #: Predicted class has no canonical ruleset at all.
    NO_CANONICAL = "no_canonical"


@dataclass
class CompareResult:
    """One ruleset's relation to the canonical rulesets of its class."""

    ruleset: RuleSet
    annotation: Annotation
    #: Closest canonical ruleset (max rule overlap; ties → most samples).
    closest: Optional[RuleSet] = None
    #: Extra rules relative to the matched/closest canonical ruleset.
    extra: Tuple[Rule, ...] = ()
    #: Missing rules relative to the closest canonical ruleset
    #: (non-empty iff underconstrained).
    missing: Tuple[Rule, ...] = ()
    #: Rules directly contradicting the closest canonical ruleset.
    contradicting: Tuple[Rule, ...] = ()

    @property
    def is_consistent(self) -> bool:
        return self.annotation in (Annotation.EXACT, Annotation.OVERCONSTRAINED)


def compare_rulesets(
    candidate: RuleSet, canonical: Sequence[RuleSet]
) -> CompareResult:
    """Classify ``candidate`` against the canonical rulesets of its class."""
    same_class = [
        c for c in canonical if c.predicted_class == candidate.predicted_class
    ]
    if not same_class:
        return CompareResult(
            ruleset=candidate, annotation=Annotation.NO_CANONICAL
        )
    # Consistent if the candidate implies any canonical ruleset; prefer the
    # implied ruleset with the fewest extra rules.
    implied = [c for c in same_class if candidate.implies(c)]
    if implied:
        best = min(implied, key=lambda c: len(candidate.extra_rules(c)))
        extra = tuple(sorted(candidate.extra_rules(best), key=lambda r: r.text))
        return CompareResult(
            ruleset=candidate,
            annotation=Annotation.EXACT if not extra else Annotation.OVERCONSTRAINED,
            closest=best,
            extra=extra,
        )
    closest = max(
        same_class, key=lambda c: (candidate.overlap(c), c.n_samples)
    )
    return CompareResult(
        ruleset=candidate,
        annotation=Annotation.UNDERCONSTRAINED,
        closest=closest,
        extra=tuple(
            sorted(candidate.extra_rules(closest), key=lambda r: r.text)
        ),
        missing=tuple(
            sorted(candidate.missing_rules(closest), key=lambda r: r.text)
        ),
        contradicting=tuple(
            sorted(candidate.contradictions(closest), key=lambda r: r.text)
        ),
    )


def compare_all(
    candidates: Sequence[RuleSet], canonical: Sequence[RuleSet]
) -> List[CompareResult]:
    return [compare_rulesets(c, canonical) for c in candidates]


def consistency_summary(
    results: Sequence[CompareResult],
) -> Dict[str, int]:
    """Counts per annotation kind (for EXPERIMENTS.md tables)."""
    out: Dict[str, int] = {a.value: 0 for a in Annotation}
    for r in results:
        out[r.annotation.value] += 1
    return out
