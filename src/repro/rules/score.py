"""Score rules against foreign schedule sets (cross-workload transfer).

Rules are extracted per workload (paper §IV-D), but their constraints are
plain statements about operation order and stream assignment, so any rule
whose two operations also exist in *another* workload's schedules can be
evaluated there.  This module provides that evaluation: which rules
*transfer*, and how often the transferred constraint is satisfied by a
given set of schedules.

Exact and role matching
-----------------------
Workload generators qualify operation names per instance — SpMV has
``Pack``, the halo exchange ``Pack_x``, the allreduce ``Pack_0`` — so
exact-name matching would make most cross-workload rules vacuously
non-transferable.  *Role* matching (``by_role=True``) strips the
positional qualifier (a trailing ``_<digits>`` or ``_<axis>``), including
inside the scheduler's compound sync-op names (``CER-after-Pack_x`` →
``CER-after-Pack``), and evaluates the rule universally: it holds on a
schedule iff **every** pair of ops matching the two roles satisfies the
constraint.

This is the measurement behind the cross-workload generalization table
(:mod:`repro.workloads.generalization`): a rule that separates fast from
slow schedules on the workload it was learned on, *and* on workloads it
never saw, is a genuine design rule rather than an artifact of one DAG.

Signature matching
------------------
Role matching still presumes shared naming.  Every evaluation entry point
also accepts a ``matcher`` — an object with ``rule_key(name)`` mapping a
rule operand (a source-program op name) to a canonical group key and
``op_key(name)`` doing the same for target-schedule ops, either returning
``None`` for names that do not participate.  ``matcher`` overrides
``by_role``; :class:`repro.transfer.signature.SignatureMatcher` uses it
to match operations by *structural* signature (action kind, device,
comm-group topology, dependence-chain position), so families with
disjoint naming can still exchange rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dag.vertex import OpKind
from repro.ml.features import OrderFeature, StreamFeature
from repro.rules.ruleset import Rule
from repro.schedule.schedule import Schedule

#: Positional qualifier a generator appends to a role name: a round index
#: (``Pack_0``), an axis (``Pack_x``), or a grid/branch coordinate.
_QUALIFIER = re.compile(r"_(?:[0-9]+|[xyz])$")


def op_role(name: str) -> str:
    """Strip the positional qualifier from ``name``, recursing into the
    scheduler's compound sync-op names.

    >>> op_role("Pack_x")
    'Pack'
    >>> op_role("CER-after-Pack_0")
    'CER-after-Pack'
    >>> op_role("Pack")
    'Pack'
    """
    if name.startswith("CER-after-"):
        return "CER-after-" + op_role(name[len("CER-after-") :])
    if name.startswith("CES-b4-"):
        rest = name[len("CES-b4-") :]
        if "-after-" in rest:  # disambiguated form: CES-b4-{v}-after-{u}
            v, u = rest.split("-after-", 1)
            return f"CES-b4-{op_role(v)}-after-{op_role(u)}"
        return "CES-b4-" + op_role(rest)
    if name.startswith("CSWE-") and "-waits-" in name:
        v, u = name[len("CSWE-") :].split("-waits-", 1)
        return f"CSWE-{op_role(v)}-waits-{op_role(u)}"
    return _QUALIFIER.sub("", name)


#: Maps an op name to its grouping key; ``None`` = does not participate.
KeyFn = Callable[[str], Optional[str]]


def _key_fns(by_role: bool, matcher) -> Tuple[KeyFn, KeyFn]:
    """``(rule_key, op_key)`` for the requested matching mode."""
    if matcher is not None:
        return (matcher.rule_key, matcher.op_key)
    if by_role:
        return (op_role, op_role)
    identity: KeyFn = lambda name: name  # noqa: E731
    return (identity, identity)


def _order_groups(
    schedule: Schedule, op_key: KeyFn
) -> Dict[str, List[int]]:
    """Op key -> launch positions (ops keyed ``None`` are dropped)."""
    groups: Dict[str, List[int]] = {}
    for i, op in enumerate(schedule.ops):
        key = op_key(op.name)
        if key is not None:
            groups.setdefault(key, []).append(i)
    return groups


def _stream_groups(
    schedule: Schedule, op_key: KeyFn
) -> Dict[str, List[int]]:
    """GPU op key -> stream bindings (ops keyed ``None`` are dropped)."""
    groups: Dict[str, List[int]] = {}
    for op in schedule.ops:
        if op.kind is not OpKind.GPU:
            continue
        key = op_key(op.name)
        if key is not None:
            groups.setdefault(key, []).append(op.stream)  # type: ignore[arg-type]
    return groups


def _eval_rule(
    rule: Rule,
    order_groups: Dict[str, List[int]],
    stream_groups: Dict[str, List[int]],
    rule_key: KeyFn,
) -> Optional[bool]:
    f = rule.feature
    if isinstance(f, OrderFeature):
        groups = order_groups
    elif isinstance(f, StreamFeature):
        groups = stream_groups
    else:
        return None
    key_u = rule_key(f.u)
    key_v = rule_key(f.v)
    if key_u is None or key_v is None or key_u == key_v:
        return None
    us, vs = groups.get(key_u), groups.get(key_v)
    if not us or not vs:
        return None
    if isinstance(f, OrderFeature):
        if rule.value:
            return max(us) < min(vs)
        return max(vs) < min(us)
    if rule.value:
        return all(a == b for a in us for b in vs)
    return all(a != b for a in us for b in vs)


def rule_satisfied(
    rule: Rule,
    schedule: Schedule,
    *,
    by_role: bool = False,
    matcher=None,
) -> Optional[bool]:
    """Whether ``schedule`` follows ``rule``; ``None`` if the rule does
    not transfer (an op/role/signature the rule mentions is absent, or
    both of its operations collapse onto the same group).

    With ``by_role=True`` (or a ``matcher``) several ops may match each
    side; the rule is satisfied iff every cross pair satisfies the
    constraint.
    """
    rule_key, op_key = _key_fns(by_role, matcher)
    return _eval_rule(
        rule,
        _order_groups(schedule, op_key),
        _stream_groups(schedule, op_key),
        rule_key,
    )


def rule_transfers(
    rule: Rule, schedule: Schedule, *, by_role: bool = False, matcher=None
) -> bool:
    """True if the rule can be evaluated on ``schedule`` at all."""
    return (
        rule_satisfied(rule, schedule, by_role=by_role, matcher=matcher)
        is not None
    )


@dataclass(frozen=True)
class RuleScore:
    """How one rule fares on a foreign schedule set."""

    rule: Rule
    #: Schedules on which the rule transfers (its ops/roles exist).
    n_transferred: int
    #: Of those, how many satisfy the rule.
    n_satisfied: int

    @property
    def satisfaction(self) -> float:
        """Satisfied fraction over transferred schedules (0 if none)."""
        if self.n_transferred == 0:
            return 0.0
        return self.n_satisfied / self.n_transferred


def score_rules(
    rules: Iterable[Rule],
    schedules: Sequence[Schedule],
    *,
    by_role: bool = False,
    matcher=None,
) -> List[RuleScore]:
    """Evaluate every rule against every schedule.

    Deterministic order: rules sorted by text, so reports and JSON output
    are stable across runs and processes.  Per-schedule op groups are
    computed once and shared by all rules.  An empty rule iterable or an
    empty schedule sequence is well-defined (empty list / all-zero
    scores), never an error.
    """
    rule_key, op_key = _key_fns(by_role, matcher)
    grouped = [
        (_order_groups(s, op_key), _stream_groups(s, op_key))
        for s in schedules
    ]
    out: List[RuleScore] = []
    for rule in sorted(rules, key=lambda r: r.text):
        n_t = 0
        n_s = 0
        for order_groups, stream_groups in grouped:
            verdict = _eval_rule(rule, order_groups, stream_groups, rule_key)
            if verdict is None:
                continue
            n_t += 1
            if verdict:
                n_s += 1
        out.append(RuleScore(rule=rule, n_transferred=n_t, n_satisfied=n_s))
    return out


def transfer_summary(
    scores: Sequence[RuleScore],
) -> Tuple[int, int, float]:
    """Aggregate ``(n_rules, n_transferable, mean_satisfaction)``.

    A rule is *transferable* when it transferred to at least one
    schedule; the mean satisfaction averages over transferable rules.
    """
    transferable = [s for s in scores if s.n_transferred > 0]
    if not transferable:
        return (len(scores), 0, 0.0)
    mean = sum(s.satisfaction for s in transferable) / len(transferable)
    return (len(scores), len(transferable), mean)


def class_rules(rulesets, cls: int) -> List[Rule]:
    """Deduplicated rules from every ruleset predicting class ``cls``."""
    seen: Dict[Rule, None] = {}
    for rs in rulesets:
        if rs.predicted_class != cls:
            continue
        for rule in rs.rules:
            seen.setdefault(rule, None)
    return list(seen)
