"""Text rendering of rulesets and comparison tables (Tables VI-VIII).

The paper's tables have one column per MCTS iteration count and one cell
per ruleset (top-3 by training-sample count), with blue = extraneous rules
and red = "insufficient rules".  Terminal rendering marks extraneous rules
with ``(+)`` and underconstrained cells with ``insufficient rules``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.rules.compare import Annotation, CompareResult
from repro.rules.ruleset import RuleSet


def render_rulesets(
    rulesets: Sequence[RuleSet], class_names: Optional[Mapping[int, str]] = None
) -> str:
    """Plain listing of rulesets grouped by class."""
    lines: List[str] = []
    by_class: Dict[int, List[RuleSet]] = {}
    for rs in rulesets:
        by_class.setdefault(rs.predicted_class, []).append(rs)
    for cls in sorted(by_class):
        name = (
            class_names[cls]
            if class_names and cls in class_names
            else f"class {cls}"
        )
        lines.append(f"=== {name} ===")
        for i, rs in enumerate(by_class[cls], 1):
            lines.append(f"  ruleset {i} (samples={rs.n_samples}):")
            for rule in rs:
                lines.append(f"    - {rule.text}")
    return "\n".join(lines)


def render_compare_cell(result: CompareResult) -> List[str]:
    """One table cell: the ruleset with its consistency annotations."""
    lines: List[str] = []
    extra = set(result.extra)
    for rule in result.ruleset:
        mark = " (+)" if rule in extra else ""
        lines.append(f"{rule.text}{mark}")
    if result.annotation is Annotation.UNDERCONSTRAINED:
        lines.append("insufficient rules")
        for rule in result.missing:
            lines.append(f"  missing: {rule.text}")
    elif result.annotation is Annotation.NO_CANONICAL:
        lines.append("(no canonical ruleset for class)")
    return lines


def render_ruleset_table(
    columns: Mapping[str, Sequence[CompareResult]],
    title: str = "",
    max_rulesets_per_cell: int = 3,
) -> str:
    """Render a Tables VI-VIII style comparison.

    ``columns`` maps column headers (e.g. iteration counts "50", "100", ...)
    to the compared rulesets of ONE performance class, best-sampled first.
    Columns are rendered side by side; ``(+)`` marks extraneous-but-harmless
    rules (the paper's blue) and "insufficient rules" marks
    underconstrained cells (the paper's red).
    """
    headers = list(columns)
    cell_texts: List[List[str]] = []
    for h in headers:
        cells = columns[h][:max_rulesets_per_cell]
        block: List[str] = []
        for i, res in enumerate(cells):
            if i:
                block.append("-" * 8)
            block.extend(render_compare_cell(res))
        cell_texts.append(block or ["(none)"])
    width = max(
        [len(h) for h in headers]
        + [len(line) for block in cell_texts for line in block]
        + [10]
    )
    height = max(len(b) for b in cell_texts)
    sep = "+" + "+".join(["-" * (width + 2)] * len(headers)) + "+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(
        "|"
        + "|".join(f" {h.ljust(width)} " for h in headers)
        + "|"
    )
    out.append(sep)
    for row in range(height):
        cells = [
            block[row] if row < len(block) else "" for block in cell_texts
        ]
        out.append(
            "|" + "|".join(f" {c.ljust(width)} " for c in cells) + "|"
        )
    out.append(sep)
    return "\n".join(out)
