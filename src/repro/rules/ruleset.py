"""Rules and rulesets.

A :class:`Rule` is one binary constraint — an ordering ("Pack before yL")
or a stream assignment ("Pack same stream as yL").  A :class:`RuleSet` is
the conjunction along one root-to-leaf path; "as long as all rules in a
given ruleset are followed, other decisions do not matter" (paper §V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple

from repro.ml.features import OrderFeature, StreamFeature


@dataclass(frozen=True)
class Rule:
    """One binary constraint: ``feature == value``."""

    feature: object  # OrderFeature | StreamFeature
    value: bool

    @property
    def text(self) -> str:
        return self.feature.describe(self.value)

    @property
    def is_stream_rule(self) -> bool:
        return isinstance(self.feature, StreamFeature)

    @property
    def is_order_rule(self) -> bool:
        return isinstance(self.feature, OrderFeature)

    def negated(self) -> "Rule":
        return Rule(feature=self.feature, value=not self.value)

    def contradicts(self, other: "Rule") -> bool:
        return self.feature == other.feature and self.value != other.value

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class RuleSet:
    """A conjunction of rules leading to one performance class.

    ``n_samples`` is the number of training samples in the leaf (used to
    sort rulesets for presentation, as the paper sorts cells "by the
    number of training samples that followed those rules");
    ``class_proportions`` is the leaf's (weighted) class distribution.
    """

    rules: FrozenSet[Rule]
    predicted_class: int
    n_samples: int = 0
    class_proportions: Tuple[float, ...] = ()
    leaf_id: int = -1

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.sorted_rules())

    def __len__(self) -> int:
        return len(self.rules)

    def sorted_rules(self) -> Tuple[Rule, ...]:
        return tuple(sorted(self.rules, key=lambda r: r.text))

    # -- logical relations ------------------------------------------------
    def implies(self, other: "RuleSet") -> bool:
        """True if following self guarantees following ``other``
        (self's constraints are a superset)."""
        return other.rules <= self.rules

    def extra_rules(self, other: "RuleSet") -> FrozenSet[Rule]:
        """Rules in self that ``other`` does not require."""
        return self.rules - other.rules

    def missing_rules(self, other: "RuleSet") -> FrozenSet[Rule]:
        """Rules ``other`` requires that self lacks."""
        return other.rules - self.rules

    def contradictions(self, other: "RuleSet") -> FrozenSet[Rule]:
        """Rules of self directly contradicted by ``other``."""
        return frozenset(
            r for r in self.rules if any(r.contradicts(o) for o in other.rules)
        )

    def overlap(self, other: "RuleSet") -> int:
        return len(self.rules & other.rules)

    # ----------------------------------------------------------------------
    def text_lines(self) -> Tuple[str, ...]:
        return tuple(r.text for r in self.sorted_rules())

    def __str__(self) -> str:
        return " AND ".join(self.text_lines())
