"""repro — reproduction of "Machine Learning for CUDA+MPI Design Rules".

Pearson, Javeed, Devine (Sandia National Laboratories), IPDPSW 2022,
arXiv:2203.02530.  See README.md for a tour and DESIGN.md for the system
inventory and the substitutions made for the paper's hardware testbed.

Quick start::

    from repro import (
        build_spmv_program, SpmvCase, perlmutter_like,
        DesignRulePipeline, PipelineConfig,
    )

    inst = build_spmv_program(SpmvCase().scaled(1 / 40))
    pipe = DesignRulePipeline(
        inst.program, perlmutter_like(), PipelineConfig(strategy="mcts")
    )
    result = pipe.run()
    print(result.summary())
    for ruleset in result.rulesets:
        print(ruleset.predicted_class, "<-", str(ruleset))
"""

from repro.advisor import (
    ArtifactStore,
    Recommendation,
    ScheduleGuide,
    UnionArtifact,
    WorkloadArtifact,
    publish_artifacts,
    recommend,
)
from repro.apps.halo import GridCase, build_halo_program
from repro.apps.spmv import SpmvCase, build_spmv_program, spmv_paper_case
from repro.core import (
    DesignRulePipeline,
    PipelineConfig,
    PipelineResult,
    StreamingPipelineResult,
)
from repro.dag import (
    Action,
    ActionKind,
    CommPlan,
    Graph,
    Message,
    OpKind,
    Program,
    Vertex,
    Work,
    cpu_op,
    gpu_op,
)
from repro.exec import Evaluator, MeasurementCache, ParallelEvaluator, SerialEvaluator
from repro.ml import (
    DecisionTree,
    FeatureExtractor,
    LabelingConfig,
    TreeConfig,
    label_by_performance,
    range_accuracy,
    search_tree_size,
)
from repro.orchestrate import (
    ExecutionPlan,
    PlanRun,
    WorkloadTask,
    execute_plan,
    plan_rules,
    plan_suite,
)
from repro.platform import (
    CostModel,
    MachineConfig,
    NoiseModel,
    noiseless,
    perlmutter_like,
)
from repro.rules import RuleSet, compare_rulesets, extract_rulesets
from repro.schedule import (
    BoundOp,
    DesignSpace,
    EnumerationCursor,
    Schedule,
    ScheduleBlock,
)
from repro.search import ExhaustiveSearch, MctsConfig, MctsSearch, RandomSearch
from repro.sim import Benchmarker, Gantt, MeasurementConfig, ScheduleExecutor, SimResult
from repro.transfer import (
    OpSignature,
    SignatureMatcher,
    TransferMatrixResult,
    program_signatures,
    run_transfer_matrix,
    score_transfer,
    train_union,
)
from repro.version import __version__
from repro.workloads import (
    Suite,
    SuiteReport,
    SuiteRunner,
    WorkloadSpec,
    build_workload,
    list_families,
    run_suite,
)

__all__ = [
    "Action",
    "ActionKind",
    "ArtifactStore",
    "Benchmarker",
    "BoundOp",
    "CommPlan",
    "CostModel",
    "DecisionTree",
    "DesignRulePipeline",
    "DesignSpace",
    "EnumerationCursor",
    "Evaluator",
    "ExecutionPlan",
    "ExhaustiveSearch",
    "FeatureExtractor",
    "Gantt",
    "Graph",
    "GridCase",
    "LabelingConfig",
    "MachineConfig",
    "MctsConfig",
    "MctsSearch",
    "MeasurementCache",
    "MeasurementConfig",
    "Message",
    "ParallelEvaluator",
    "NoiseModel",
    "OpKind",
    "OpSignature",
    "PipelineConfig",
    "PipelineResult",
    "PlanRun",
    "Program",
    "RandomSearch",
    "Recommendation",
    "RuleSet",
    "Schedule",
    "ScheduleBlock",
    "ScheduleExecutor",
    "ScheduleGuide",
    "SerialEvaluator",
    "SignatureMatcher",
    "SimResult",
    "SpmvCase",
    "StreamingPipelineResult",
    "Suite",
    "SuiteReport",
    "SuiteRunner",
    "TransferMatrixResult",
    "TreeConfig",
    "UnionArtifact",
    "Vertex",
    "Work",
    "WorkloadArtifact",
    "WorkloadSpec",
    "WorkloadTask",
    "__version__",
    "build_halo_program",
    "build_spmv_program",
    "build_workload",
    "compare_rulesets",
    "cpu_op",
    "execute_plan",
    "extract_rulesets",
    "gpu_op",
    "label_by_performance",
    "list_families",
    "noiseless",
    "perlmutter_like",
    "plan_rules",
    "plan_suite",
    "program_signatures",
    "publish_artifacts",
    "range_accuracy",
    "recommend",
    "run_suite",
    "run_transfer_matrix",
    "score_transfer",
    "search_tree_size",
    "spmv_paper_case",
    "train_union",
]
