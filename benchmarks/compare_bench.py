"""Compare a pytest-benchmark JSON run against the previous nightly.

Usage (the nightly workflow drives this):

    python benchmarks/compare_bench.py \
        --current BENCH_<sha>.json --baseline-dir baseline/ \
        [--pattern REGEX] [--max-regression 0.25]

The baseline dir holds the unzipped most-recent ``bench-*`` artifact
(zero or more ``BENCH_*.json`` files; the newest by mtime wins).  Every
benchmark whose ``fullname`` matches ``--pattern`` and appears in both
runs is compared on mean wall time; any regression beyond
``--max-regression`` fails the run.  Missing baseline (first nightly,
expired artifacts) is a warning, not a failure — there is nothing to
regress against.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

DEFAULT_PATTERN = r"branch_and_bound|guided|enumeration|sharding"


def load_means(path: Path, pattern: str) -> dict:
    data = json.loads(path.read_text())
    rx = re.compile(pattern)
    return {
        b["fullname"]: b["stats"]["mean"]
        for b in data.get("benchmarks", [])
        if rx.search(b["fullname"])
    }


def find_baseline(baseline_dir: Path) -> Path | None:
    candidates = sorted(
        baseline_dir.glob("BENCH_*.json"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return candidates[0] if candidates else None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, type=Path)
    ap.add_argument("--baseline-dir", required=True, type=Path)
    ap.add_argument("--pattern", default=DEFAULT_PATTERN)
    ap.add_argument("--max-regression", type=float, default=0.25)
    args = ap.parse_args(argv)

    if not args.baseline_dir.is_dir():
        print(f"no baseline dir {args.baseline_dir}: skipping comparison")
        return 0
    baseline_path = find_baseline(args.baseline_dir)
    if baseline_path is None:
        print("no baseline BENCH_*.json found: skipping comparison")
        return 0

    current = load_means(args.current, args.pattern)
    baseline = load_means(baseline_path, args.pattern)
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("no shared benchmarks between runs: skipping comparison")
        return 0

    print(f"baseline: {baseline_path.name}")
    failed = []
    for name in shared:
        cur, base = current[name], baseline[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1 + args.max_regression:
            failed.append(name)
            flag = "  << REGRESSION"
        print(f"{name}: {base:.4f}s -> {cur:.4f}s ({ratio:.2f}x){flag}")
    only_current = set(current) - set(baseline)
    if only_current:
        print(f"new benchmarks (no baseline): {len(only_current)}")

    if failed:
        print(
            f"\n{len(failed)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}:"
        )
        for name in failed:
            print(f"  {name}")
        return 1
    print(f"\nall {len(shared)} shared benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
