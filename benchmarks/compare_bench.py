"""Compare a pytest-benchmark JSON run against the previous nightly.

Usage (the nightly workflow drives this):

    python benchmarks/compare_bench.py \
        --current BENCH_<sha>.json --baseline-dir baseline/ \
        [--pattern REGEX] [--max-regression 0.25]

The baseline dir holds the unzipped most-recent ``bench-*`` artifact
(zero or more ``BENCH_*.json`` files; the newest by mtime wins).  Both
JSON files are converted to synthetic traces (one root span per
benchmark, duration = mean wall) and gated through
``repro.obs.diff.diff_runs`` — the same per-span-path threshold logic
``repro trace --diff`` applies to real archived runs.  Benchmarks
matching ``--pattern`` and present in both runs gate on mean wall time;
any regression beyond ``--max-regression`` fails the run.  Missing
baseline (first nightly, expired artifacts) is a warning, not a
failure — there is nothing to regress against.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.obs import DiffThresholds, bench_json_to_trace, diff_runs  # noqa: E402

DEFAULT_PATTERN = (
    r"branch_and_bound|guided|enumeration|sharding|trace_analyze|sim_batch"
)


def find_baseline(baseline_dir: Path) -> Path | None:
    candidates = sorted(
        baseline_dir.glob("BENCH_*.json"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return candidates[0] if candidates else None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, type=Path)
    ap.add_argument("--baseline-dir", required=True, type=Path)
    ap.add_argument("--pattern", default=DEFAULT_PATTERN)
    ap.add_argument("--max-regression", type=float, default=0.25)
    args = ap.parse_args(argv)

    if not args.baseline_dir.is_dir():
        print(f"no baseline dir {args.baseline_dir}: skipping comparison")
        return 0
    baseline_path = find_baseline(args.baseline_dir)
    if baseline_path is None:
        print("no baseline BENCH_*.json found: skipping comparison")
        return 0

    baseline = bench_json_to_trace(str(baseline_path), args.pattern)
    current = bench_json_to_trace(str(args.current), args.pattern)
    diff = diff_runs(
        baseline,
        current,
        DiffThresholds(
            max_wall_delta=args.max_regression,
            # Benchmarks are macro-level: gate even sub-5ms means.
            min_wall_s=0.0,
        ),
    )
    shared = [
        p
        for p in diff.paths
        if p.baseline is not None and p.current is not None
    ]
    if not shared:
        print("no shared benchmarks between runs: skipping comparison")
        return 0

    print(f"baseline: {baseline_path.name}")
    for p in shared:
        flag = "  << REGRESSION" if p.regressed else ""
        print(
            f"{p.path}: {p.baseline:.4f}s -> {p.current:.4f}s "
            f"({p.ratio:.2f}x){flag}"
        )
    only_current = [p for p in diff.paths if p.baseline is None]
    if only_current:
        print(f"new benchmarks (no baseline): {len(only_current)}")

    failed = [p.path for p in shared if p.regressed]
    if failed:
        print(
            f"\n{len(failed)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}:"
        )
        for name in failed:
            print(f"  {name}")
        return 1
    print(f"\nall {len(shared)} shared benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
