"""Compiled batch replay vs the reference discrete-event engine.

Pins the batch backend's headline claim: compiling the ``(program,
machine, MeasurementConfig)`` context once and replaying schedule blocks
as numpy array sweeps is at least ``3x`` faster than interpreting each
schedule on the reference engine — with **bit-identical** measurements
and identical ``n_simulations`` accounting.  The sweep reuses the
branch-and-bound bench's 39.5M-leaf space (layered_random 4x3) and takes
its first six-figure enumeration slice (smoke mode: a 3k slice of the
same space so nightly CI still exercises the exact code path).

A separate bench pins the one-off compile cost — the price paid per
process, amortized over every block the evaluator replays.
"""

import time

import pytest

from benchmarks.conftest import SMOKE
from repro.platform import perlmutter_like
from repro.schedule.space import DesignSpace
from repro.sim.batch import compile_context
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

MEASUREMENT = MeasurementConfig(max_samples=1)
SPEC = WorkloadSpec("layered_random", {"layers": 4, "width": 3, "edge_p": 0.5})
N_SCHEDULES = 3_000 if SMOKE else 100_000
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="session")
def context():
    program = build_workload(SPEC)
    machine = perlmutter_like(noise_sigma=0.01).with_ranks(program.n_ranks)
    return program, machine


@pytest.fixture(scope="session")
def schedules(context):
    """First ``N_SCHEDULES`` of the space's enumeration order."""
    program, _ = context
    space = DesignSpace(program, n_streams=2)
    out = [
        s
        for block in space.iter_blocks(
            1024, cursor=space.seek(0), limit=N_SCHEDULES
        )
        for s in block.schedules
    ]
    assert len(out) == N_SCHEDULES
    return out


@pytest.fixture(scope="session")
def reference_sweep(context, schedules):
    """Reference-engine sweep: results plus wall seconds."""
    program, machine = context
    bench = Benchmarker(ScheduleExecutor(program, machine), MEASUREMENT)
    t0 = time.perf_counter()
    results = [bench.measure(s) for s in schedules]
    wall = time.perf_counter() - t0
    return results, bench.n_simulations, wall


def test_bench_sim_batch_replay(benchmark, context, schedules, reference_sweep):
    """Batch replay of the whole slice: bit-identical, >= 3x faster."""
    program, machine = context
    ctx = compile_context(program, machine, MEASUREMENT)
    assert ctx.ok, ctx.reason
    walls = []

    def run():
        bench = Benchmarker(ScheduleExecutor(program, machine), MEASUREMENT)
        t0 = time.perf_counter()
        results, n_replayed, n_fallbacks = ctx.measure_into(bench, schedules)
        walls.append(time.perf_counter() - t0)
        assert (n_replayed, n_fallbacks) == (len(schedules), 0)
        return results, bench.n_simulations

    (results, n_sims) = benchmark.pedantic(run, rounds=2, iterations=1)
    ref_results, ref_sims, ref_wall = reference_sweep
    assert results == ref_results  # bit-identical, float for float
    assert n_sims == ref_sims
    speedup = ref_wall / min(walls)
    benchmark.extra_info["n_schedules"] = len(schedules)
    benchmark.extra_info["reference_wall_s"] = ref_wall
    benchmark.extra_info["speedup_vs_reference"] = speedup
    assert speedup >= MIN_SPEEDUP, (
        f"batch replay only {speedup:.2f}x faster than reference "
        f"(pinned floor {MIN_SPEEDUP}x)"
    )


def test_bench_sim_compile(benchmark, context):
    """One-off compile cost (paid once per process, then amortized)."""
    program, machine = context

    def run():
        return compile_context(program, machine, MEASUREMENT)

    ctx = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ctx.ok
    benchmark.extra_info["n_vertices"] = len(
        tuple(program.schedulable_vertices())
    )
    benchmark.extra_info["n_ranks"] = machine.n_ranks
