"""Telemetry overhead (repro.obs.telemetry): pinning the <5% budget.

Three measurements:

* the raw cost of one forced :func:`repro.obs.sample_now` — two small
  ``/proc/self`` reads plus a GC-stats sum; this is the per-boundary
  price every stage/task pays under ``--telemetry``;
* a traced exhaustive sweep with telemetry *off* vs. the same sweep
  with the sampler *on* (``obs.capture(trace=True, telemetry=True)``)
  — the telemetry run must stay within 5% of the telemetry-off one,
  because ambient samples are throttled (50ms) and forced samples only
  fire at stage/task boundaries;
* Perfetto lowering of a sampled trace, so ``--export-perfetto`` stays
  cheap enough to run in CI on every smoke archive.

As in ``bench_obs_overhead.py``, the 5% bound is asserted on
interleaved best-of-N walls (min, not mean) to keep runner noise from
landing on one side of the ratio.
"""

import time

from repro import obs
from repro.exec import build_evaluator
from repro.obs import check_perfetto, sample_now, to_perfetto
from repro.obs.trace_io import TraceData
from repro.platform.presets import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.exhaustive import ExhaustiveSearch
from repro.sim.measure import MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

SPEC = WorkloadSpec("fork_join", {"stages": 2, "branches": 2, "depth": 1})


def _sweep():
    program = build_workload(SPEC)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    evaluator = build_evaluator(
        program, machine, MeasurementConfig(max_samples=1)
    )
    space = DesignSpace(program, n_streams=2)
    try:
        return ExhaustiveSearch(space, evaluator).run()
    finally:
        evaluator.close()


def _interleaved_best(fns, rounds: int):
    """Best wall per function, alternating them each round."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_bench_sample_now_cost(benchmark):
    """Per-sample cost of one forced resource reading."""
    n = 2_000

    def spin():
        for _ in range(n):
            sample_now("bench/path")

    benchmark.pedantic(spin, rounds=10, iterations=1)
    per_sample = benchmark.stats.stats.median / n
    benchmark.extra_info["per_sample_us"] = per_sample * 1e6
    # Two procfs reads + gc stats: must stay far under the 50ms
    # sampling throttle, or sampling would perturb what it measures.
    assert per_sample < 500e-6


def test_bench_telemetry_sweep_overhead(benchmark):
    """Traced sweep with the sampler on vs. the identical traced run."""
    obs.reset()
    _sweep()  # warm imports and caches outside the timed region

    def traced():
        with obs.capture(trace=True):
            _sweep()

    def telemetered():
        with obs.capture(trace=True, telemetry=True):
            _sweep()

    traced_wall, telemetry_wall = _interleaved_best(
        [traced, telemetered], rounds=7
    )
    benchmark.pedantic(telemetered, rounds=2, iterations=1)

    overhead = telemetry_wall / traced_wall - 1.0
    benchmark.extra_info["traced_wall_s"] = traced_wall
    benchmark.extra_info["telemetry_wall_s"] = telemetry_wall
    benchmark.extra_info["overhead_frac"] = overhead
    # Throttled ambient samples + boundary-only forced samples: turning
    # telemetry on must cost < 5% of a traced sweep.
    assert overhead < 0.05


def test_bench_perfetto_lowering(benchmark):
    """trace -> Chrome/Perfetto JSON object for a sampled sweep."""
    obs.reset()
    with obs.capture(trace=True, telemetry=True) as cap:
        _sweep()
    data = TraceData(
        meta={"command": "bench"},
        spans=tuple(cap.spans),
        metrics=cap.metrics,
        samples=tuple(cap.resources),
    )

    obj = benchmark(to_perfetto, data)
    assert check_perfetto(obj) == []
    benchmark.extra_info["n_events"] = len(obj["traceEvents"])
