"""Figure 6: the intermediate 6-leaf decision tree and its rulesets.

Paper: 6 leaves, depth 4, with two distinct rulesets for the fastest
class, one mixed leaf, rules over Pack/yL/CES-b4-PostSend orderings and
stream assignments.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig6
from repro.ml.tree import DecisionTree, TreeConfig


def test_fig6_six_leaf_tree(benchmark, wb, capfd):
    full = wb.full_pipeline()
    x, y = full.features.matrix, full.labeling.labels

    def train():
        return DecisionTree(
            TreeConfig(max_leaf_nodes=6, max_depth=5, class_weight="balanced")
        ).fit(x, y)

    benchmark(train)
    fig = run_fig6(wb)
    emit(capfd, "Figure 6 (6-leaf tree + rules)", fig.report())
    assert fig.tree.n_leaves == 6
    # Root is balanced (the paper's 33.3%/33.3%/33.3%).
    props = fig.tree.root.class_proportions()
    assert all(abs(p - 1 / len(props)) < 1e-6 for p in props)
    # Rules must mention both orderings and stream assignments.
    texts = [r.text for rs in fig.rulesets for r in rs.rules]
    assert any("before" in t for t in texts)
    assert any("stream" in t for t in texts)
