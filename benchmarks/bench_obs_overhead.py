"""Observability overhead (repro.obs): pinning zero-cost-when-disabled.

Three measurements:

* the raw no-op path — ``obs.span(...)`` with no tracer installed
  returns a shared singleton; per-call cost must stay nanoseconds, so
  instrumented hot paths pay nothing when tracing is off;
* an instrumented exhaustive sweep with tracing *disabled* vs. the same
  sweep *traced* end to end (``obs.capture(trace=True)``) — the traced
  run must stay within 5% of the disabled one, because spans open at
  search/batch granularity, never per schedule;
* trace export+parse, so the ``--trace`` JSONL round-trip stays cheap.

The 5% bound is asserted on interleaved best-of-N walls (min, not
mean): CI runners are noisy, and alternating the two variants round by
round keeps slow-drift noise from landing on one side of the ratio.
"""

import time

from repro import obs
from repro.exec import build_evaluator
from repro.obs import read_trace, write_trace
from repro.platform.presets import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.exhaustive import ExhaustiveSearch
from repro.sim.measure import MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

SPEC = WorkloadSpec("fork_join", {"stages": 2, "branches": 2, "depth": 1})


def _sweep():
    program = build_workload(SPEC)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    evaluator = build_evaluator(
        program, machine, MeasurementConfig(max_samples=1)
    )
    space = DesignSpace(program, n_streams=2)
    try:
        return ExhaustiveSearch(space, evaluator).run()
    finally:
        evaluator.close()


def _interleaved_best(fns, rounds: int):
    """Best wall per function, alternating them each round."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_bench_noop_span_call(benchmark):
    """Per-call cost of ``obs.span`` while tracing is disabled."""
    obs.reset()
    n = 10_000

    def spin():
        for _ in range(n):
            with obs.span("hot", key=1):
                pass

    benchmark.pedantic(spin, rounds=20, iterations=1)
    per_call = benchmark.stats.stats.median / n
    benchmark.extra_info["per_call_us"] = per_call * 1e6
    # The no-op handle is a shared singleton: entering it must cost well
    # under a microsecond, i.e. invisible next to one simulator step.
    assert obs.span("hot") is obs.span("other")
    assert per_call < 5e-6


def test_bench_traced_sweep_overhead(benchmark):
    """Fully traced exhaustive sweep vs. the identical disabled run."""
    obs.reset()
    _sweep()  # warm imports and caches outside the timed region

    def traced():
        with obs.capture(trace=True):
            _sweep()

    disabled_wall, traced_wall = _interleaved_best([_sweep, traced], rounds=7)
    benchmark.pedantic(traced, rounds=2, iterations=1)

    overhead = traced_wall / disabled_wall - 1.0
    benchmark.extra_info["disabled_wall_s"] = disabled_wall
    benchmark.extra_info["traced_wall_s"] = traced_wall
    benchmark.extra_info["overhead_frac"] = overhead
    # Spans open per search/batch, not per schedule, so tracing a whole
    # sweep must cost < 5% even on a noisy runner.
    assert overhead < 0.05


def test_bench_trace_export_round_trip(benchmark, tmp_path):
    """JSONL write+read of a real sweep trace."""
    obs.reset()
    with obs.capture(trace=True) as cap:
        _sweep()
    path = str(tmp_path / "trace.jsonl")

    def round_trip():
        write_trace(path, cap.spans, metrics=cap.metrics)
        return read_trace(path)

    data = benchmark(round_trip)
    assert data.n_spans() == cap.n_spans
    benchmark.extra_info["n_spans"] = cap.n_spans
