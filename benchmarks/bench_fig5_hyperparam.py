"""Figure 5: Algorithm 1's training error / tree depth vs leaf count.

Paper: error shrinks (non-monotonically) as leaves grow; search settles at
13 leaves, depth 6.  Ours settles at a comparable size (order 10-20
leaves) with zero training error.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig5
from repro.ml.hyperparam import search_tree_size


def test_fig5_algorithm1(benchmark, wb, capfd):
    full = wb.full_pipeline()  # cached outside the bench
    x, y = full.features.matrix, full.labeling.labels
    benchmark.pedantic(lambda: search_tree_size(x, y), rounds=1, iterations=2)
    fig = run_fig5(wb)
    emit(capfd, "Figure 5 (Algorithm 1 trace)", fig.report())
    assert fig.trace.leaf_nodes[0] == 2
    assert fig.final_error == min(fig.trace.errors)
    assert fig.chosen_leaves <= 30
