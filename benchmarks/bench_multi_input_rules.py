"""Future-work extension (§VI): rules that generalize across inputs.

Runs the full pipeline on SpMV matrices with different bandwidths (which
shift the communication/computation balance) and intersects the per-class
rules.  Reports the generalizing core and the input-specific remainder.
"""

from benchmarks.conftest import emit
from repro.apps.spmv import SpmvCase
from repro.experiments import run_multi_input
from repro.platform import perlmutter_like


def test_multi_input_generalization(benchmark, capfd):
    base = SpmvCase().scaled(1 / 40)
    cases = [
        ("bw=n/4", base),
        (
            "bw=n/8",
            SpmvCase(
                n_rows=base.n_rows,
                nnz=base.nnz,
                bandwidth=base.n_rows / 8,
                n_ranks=4,
                seed=0,
            ),
        ),
        (
            "bw=n/3",
            SpmvCase(
                n_rows=base.n_rows,
                nnz=base.nnz,
                bandwidth=base.n_rows / 3,
                n_ranks=4,
                seed=0,
            ),
        ),
    ]
    machine = perlmutter_like(noise_sigma=0.01)
    result = benchmark.pedantic(
        lambda: run_multi_input(cases, machine), rounds=1, iterations=1
    )
    emit(capfd, "Extension: cross-input rule generalization", result.report())
    # Some class must have at least one generalizing rule, and the
    # input-specific remainder must be non-empty (motivating the paper's
    # proposed per-input features).
    assert any(rules for rules in result.generalizing.values())
    assert any(rules for rules in result.input_specific.values())
