"""Ablation: labeling stability under measurement noise.

The 0.5% convolution radius exists to "screen away small fluctuations";
sweep the noise sigma and report class structure.  Paper-scale SpMV keeps
its 3 classes across realistic noise levels.
"""

from benchmarks.conftest import emit
from repro.experiments import run_noise_sensitivity


def test_noise_sensitivity(benchmark, wb, capfd):
    result = benchmark.pedantic(
        lambda: run_noise_sensitivity(wb, sigmas=(0.0, 0.01, 0.02, 0.05)),
        rounds=1,
        iterations=1,
    )
    emit(capfd, "Ablation: labeling vs measurement noise", result.report())
    # Class structure is stable across realistic jitter.
    class_counts = [int(row[1]) for row in result.rows]
    assert max(class_counts) - min(class_counts) <= 1
