"""Workload-level sharding benchmarks (repro.orchestrate).

Measures what the orchestrate layer buys over the serial sweep:

* the ``smoke`` suite executed serially vs. sharded across whole-workload
  processes (the PR's headline speedup path);
* the per-workload exhaustive rule pipelines (the transfer-matrix front
  half) serial vs. sharded;
* streaming enumeration (``DesignSpace.iter_blocks``) vs. materializing
  the whole space into a list — the constant-residency path exhaustive
  pipelines now ride on.

Shard counts are intentionally small (2) so the nightly CI runner's two
cores show the overlap without oversubscription noise.
"""

from repro.schedule.space import DesignSpace
from repro.sim.measure import MeasurementConfig
from repro.workloads import (
    SuiteRunner,
    WorkloadSpec,
    build_workload,
    get_suite,
    rules_for_specs,
)

RULES_SPECS = [
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
    WorkloadSpec("wavefront", {"width": 2, "height": 2}),
    WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
]

MEASUREMENT = MeasurementConfig(max_samples=1)


def test_bench_smoke_suite_serial_baseline(benchmark):
    suite = get_suite("smoke")

    def run():
        return SuiteRunner(suite).run()

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.timing["shard_workers"] == 0


def test_bench_smoke_suite_two_shards(benchmark):
    suite = get_suite("smoke")

    def run():
        return SuiteRunner(suite, shard_workers=2).run()

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.timing["shard_workers"] == 2
    assert len(report.cells) == len(suite.specs) * len(suite.strategies)


def test_bench_rules_pipelines_serial(benchmark):
    def run():
        return rules_for_specs(RULES_SPECS, measurement=MEASUREMENT)

    per_workload = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(per_workload) == len(RULES_SPECS)


def test_bench_rules_pipelines_two_shards(benchmark):
    def run():
        return rules_for_specs(
            RULES_SPECS, measurement=MEASUREMENT, shard_workers=2
        )

    per_workload = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(per_workload) == len(RULES_SPECS)


def test_bench_enumeration_materialized(benchmark):
    space = DesignSpace(
        build_workload(WorkloadSpec("spmv", {"scale": 0.025})), n_streams=2
    )
    schedules = benchmark(lambda: list(space.enumerate_schedules()))
    assert len(schedules) == space.count()


def test_bench_enumeration_streaming_blocks(benchmark):
    space = DesignSpace(
        build_workload(WorkloadSpec("spmv", {"scale": 0.025})), n_streams=2
    )

    def stream():
        n = 0
        peak = 0
        for block in space.iter_blocks(64):
            n += len(block)
            peak = max(peak, len(block))
        return n, peak

    n, peak = benchmark(stream)
    assert n == space.count()
    assert peak <= 64
