"""Tables VI-VIII: per-class rulesets per iteration budget, annotated
against the canonical (full-space) rules.

Paper: fastest-class rulesets from small budgets are consistent but
overconstrained (blue extras); slower-class rulesets are frequently
underconstrained ("insufficient rules", red).  The full-budget column is
canonical by construction.
"""

from benchmarks.conftest import emit
from repro.experiments import run_rule_tables
from repro.rules.compare import Annotation


def test_tables_6_7_8_rulesets(benchmark, wb, capfd):
    wb.full_pipeline()
    result = benchmark.pedantic(
        lambda: run_rule_tables(wb), rounds=1, iterations=1
    )
    emit(
        capfd,
        "Tables VI-VIII (rulesets per class per budget)",
        result.report(max_rulesets=3),
    )
    summary = result.summary()
    emit(
        capfd,
        "Tables VI-VIII consistency summary",
        "\n".join(
            f"class {cls} @ {col}: {counts}"
            for cls, cols in sorted(summary.items())
            for col, counts in cols.items()
        ),
    )
    # Full-budget column is exact for every class.
    full_col = str(wb.space.count())
    for cls, cols in result.cells.items():
        for res in cols[full_col]:
            assert res.annotation is Annotation.EXACT
    # Small budgets produce at least one non-exact ruleset somewhere
    # (the inconsistency phenomenon the paper's Tables VI-VIII document).
    small_col = str(min(int(c) for cols in result.cells.values() for c in cols))
    non_exact = [
        res
        for cols in result.cells.values()
        for res in cols[small_col]
        if res.annotation is not Annotation.EXACT
    ]
    assert non_exact
