"""Transfer-subsystem benchmarks (not paper experiments).

Tracks the cost of the cross-program machinery: computing structural
signatures, discrimination-scoring one source's rules on one target, and
the full leave-one-workload-out matrix over a small workload set.
"""

import pytest

from repro.sim.measure import MeasurementConfig
from repro.transfer import program_signatures, run_transfer_matrix, score_transfer
from repro.transfer.matrix import transfer_matrix_from
from repro.transfer.signature import SignatureMatcher
from repro.workloads import WorkloadSpec, build_workload, rules_for_specs

MATRIX_SPECS = [
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
    WorkloadSpec("wavefront", {"width": 2, "height": 2}),
    WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
]

MEASUREMENT = MeasurementConfig(max_samples=1)

SIGNATURE_SPECS = MATRIX_SPECS + [
    WorkloadSpec("spmv", {"scale": 0.025}),
    WorkloadSpec(
        "halo3d",
        {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
    ),
]


@pytest.mark.parametrize("spec", SIGNATURE_SPECS, ids=lambda s: s.family)
def test_bench_program_signatures(benchmark, spec):
    program = build_workload(spec)
    sigs = benchmark(lambda: program_signatures(program))
    assert sigs


@pytest.fixture(scope="module")
def per_workload():
    return rules_for_specs(MATRIX_SPECS, measurement=MEASUREMENT)


def test_bench_score_transfer_cell(benchmark, per_workload):
    src = next(w for w in per_workload if w.spec.family == "stencil_reduce")
    dst = next(w for w in per_workload if w.spec.family == "wavefront")
    matcher = SignatureMatcher(
        program_signatures(src.program), program_signatures(dst.program)
    )
    scores = benchmark(
        lambda: score_transfer(
            src.rules, dst.fast_schedules, dst.slow_schedules, matcher=matcher
        )
    )
    assert len(scores) == len(src.rules)


def test_bench_transfer_matrix_from(benchmark, per_workload):
    result = benchmark.pedantic(
        lambda: transfer_matrix_from(per_workload), rounds=2, iterations=1
    )
    assert len(result.cells) == len(MATRIX_SPECS) * (len(MATRIX_SPECS) - 1)


def test_bench_transfer_matrix_end_to_end(benchmark):
    result = benchmark.pedantic(
        lambda: run_transfer_matrix(MATRIX_SPECS, measurement=MEASUREMENT),
        rounds=1,
        iterations=1,
    )
    assert result.controls
