"""Trace analytics cost (repro.obs.analyze/diff) at archive scale.

The read side has to stay interactive on real archived runs: a sharded
paper-scale sweep produces tens of thousands of spans, and ``repro
trace <archive> --analyze`` / ``--diff`` parse and fold the whole
bundle on every invocation.  Four pinned measurements on a synthetic
>=50k-span archived trace (same shape as a sharded suite run — one
``plan.execute`` root fanning out into task/stage/batch subtrees):

* JSONL parse (``read_trace``) of the archived bundle;
* per-span-path aggregation (``aggregate_spans``);
* concurrent-aware critical-path extraction (``critical_path``);
* full run diff (``diff_runs``) of two archived runs of that trace.

Plus the live-progress overhead gate: an instrumented sweep under
``obs.progress_scope`` (heartbeat/progress ticker armed, counters
ticking on every ``obs.add``) must stay within 5% of the identical
heartbeat-off sweep, asserted on interleaved best-of-N walls just like
``bench_obs_overhead.py``.
"""

from __future__ import annotations

import io
import time

import pytest

from repro import obs
from repro.exec import build_evaluator
from repro.obs import (
    MetricsRegistry,
    RunArchive,
    SpanRecord,
    aggregate_spans,
    critical_path,
    diff_runs,
    read_trace,
)
from repro.platform.presets import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.exhaustive import ExhaustiveSearch
from repro.sim.measure import MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

# 1 root + 64 tasks + 64*8 stages + 64*8*100 batch leaves = 51_777.
N_TASKS = 64
N_STAGES = 8
N_LEAVES = 100


def _synthetic_run(scale: float = 1.0) -> tuple[SpanRecord, MetricsRegistry]:
    """A plan.execute-shaped forest with deterministic durations."""
    tasks = []
    clock = 0.0
    for t in range(N_TASKS):
        stages = []
        for s in range(N_STAGES):
            leaves = [
                SpanRecord(
                    name="eval.batch",
                    start=clock + 0.0001 * leaf,
                    duration=scale * (0.0001 + 0.00001 * ((t + s + leaf) % 7)),
                    pid=1000 + t % 4,
                    attrs={"batch": leaf},
                )
                for leaf in range(N_LEAVES)
            ]
            stages.append(
                SpanRecord(
                    name=f"stage:search:{s % 2 and 'mcts' or 'random'}",
                    start=clock,
                    duration=scale * sum(c.duration for c in leaves) * 1.05,
                    pid=1000 + t % 4,
                    attrs={},
                    children=leaves,
                )
            )
            clock += stages[-1].duration
        tasks.append(
            SpanRecord(
                name=f"task:synthetic[seed={t}]",
                start=tasks[-1].start + 0.001 if tasks else 0.0,
                duration=sum(c.duration for c in stages) * 1.02,
                pid=1000 + t % 4,
                attrs={},
                children=stages,
            )
        )
    root = SpanRecord(
        name="plan.execute",
        start=0.0,
        # Tasks ran 4-wide on shard workers: the root wall is roughly a
        # quarter of the summed task walls, like a real sharded run.
        duration=sum(c.duration for c in tasks) / 4,
        pid=999,
        attrs={"n_tasks": N_TASKS},
        children=tasks,
    )
    registry = MetricsRegistry()
    registry.add("eval.schedules", N_TASKS * N_STAGES * N_LEAVES)
    registry.add("plan.tasks_completed", N_TASKS)
    for i in range(1000):
        registry.observe("eval.batch_wall_us", 100.0 + (i % 37))
    return root, registry


@pytest.fixture(scope="session")
def big_archive(tmp_path_factory) -> RunArchive:
    """Archive with two >=50k-span runs: a baseline and a 1.02x rerun."""
    archive = RunArchive(str(tmp_path_factory.mktemp("trace-archive")))
    for run_id, scale in (("baseline", 1.0), ("rerun", 1.02)):
        root, registry = _synthetic_run(scale)
        archive.record(
            [root],
            registry.snapshot(),
            command="bench",
            run_id=run_id,
        )
    return archive


def test_bench_trace_parse_50k(benchmark, big_archive):
    """JSONL parse of the archived >=50k-span bundle."""
    path = big_archive.get("baseline").trace_path

    data = benchmark(lambda: read_trace(path))
    n = data.n_spans()
    benchmark.extra_info["n_spans"] = n
    assert n >= 50_000


def test_bench_aggregate_spans_50k(benchmark, big_archive):
    """Per-span-path aggregation over the parsed forest."""
    data = big_archive.load("baseline")

    stats = benchmark(lambda: aggregate_spans(data.spans))
    benchmark.extra_info["n_paths"] = len(stats)
    total = stats["plan.execute"]
    assert total.count == 1
    assert sum(s.count for s in stats.values()) >= 50_000


def test_bench_critical_path_50k(benchmark, big_archive):
    """Concurrent-aware longest-chain extraction."""
    data = big_archive.load("baseline")

    chain = benchmark(lambda: critical_path(data.spans))
    benchmark.extra_info["chain_len"] = len(chain)
    assert chain[0].path == "plan.execute"
    assert chain[-1].name == "eval.batch"


def test_bench_diff_runs_50k(benchmark, big_archive):
    """Full archived-run diff: aggregate both sides + threshold pass."""
    baseline = big_archive.load("baseline")
    current = big_archive.load("rerun")

    diff = benchmark(lambda: diff_runs(baseline, current))
    benchmark.extra_info["n_shared_paths"] = diff.n_shared_paths()
    # 1.02x is inside the default 25% budget, counters are identical.
    assert diff.ok
    assert not diff.counters


SPEC = WorkloadSpec("fork_join", {"stages": 2, "branches": 2, "depth": 1})


def _sweep():
    program = build_workload(SPEC)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    evaluator = build_evaluator(
        program, machine, MeasurementConfig(max_samples=1)
    )
    space = DesignSpace(program, n_streams=2)
    try:
        return ExhaustiveSearch(space, evaluator).run()
    finally:
        evaluator.close()


def _interleaved_best(fns, rounds: int):
    """Best wall per function, alternating them each round."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_bench_progress_heartbeat_overhead(benchmark):
    """Progress-ticked sweep vs. the identical heartbeat-off run."""
    obs.reset()
    _sweep()  # warm imports and caches outside the timed region

    def with_progress():
        with obs.progress_scope(
            10_000, label="bench", stream=io.StringIO(), interval=0.05
        ):
            _sweep()

    off_wall, on_wall = _interleaved_best([_sweep, with_progress], rounds=7)
    benchmark.pedantic(with_progress, rounds=2, iterations=1)

    overhead = on_wall / off_wall - 1.0
    benchmark.extra_info["off_wall_s"] = off_wall
    benchmark.extra_info["on_wall_s"] = on_wall
    benchmark.extra_info["overhead_frac"] = overhead
    # The ticker is one attribute load + throttled clock check per
    # counter bump; a progress-enabled sweep must stay within 5%.
    assert overhead < 0.05
