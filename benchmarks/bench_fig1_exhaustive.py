"""Figure 1: all implementations benchmarked, sorted fastest to slowest.

Paper: 2036 implementations, 1.47x speedup, elapsed times ~5.5e-5..8e-5 s.
Ours: 540 implementations (see DESIGN.md on the space-size difference),
~1.5x speedup, ~6e-5..9e-5 s.
"""

from benchmarks.conftest import emit
from repro.experiments import run_fig1
from repro.platform.presets import describe


def test_fig1_sorted_sweep(benchmark, wb, capfd):
    result = benchmark.pedantic(
        lambda: run_fig1(wb), rounds=1, iterations=1
    )
    emit(
        capfd,
        "Figure 1 (sorted implementation sweep)",
        "\n".join(
            [
                describe(wb.machine),
                result.report(),
                result.ascii_plot(),
            ]
        ),
    )
    assert result.n_implementations == wb.space.count()
    assert 1.2 < result.speedup < 2.0


def test_fig1_single_simulation_cost(benchmark, wb):
    """Microbench: cost of one end-to-end schedule simulation."""
    schedule = next(wb.space.enumerate_schedules())
    from repro.sim import ScheduleExecutor

    executor = ScheduleExecutor(wb.instance.program, wb.machine)
    benchmark(lambda: executor.run(schedule))
