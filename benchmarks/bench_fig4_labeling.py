"""Figure 4: class-label generation (convolution + peak detection).

Paper: 3 performance classes from the 2036 sorted measurements, boundaries
where the sorted curve jumps.  Ours: 3 classes from 540 measurements.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments import run_fig4
from repro.ml.labeling import label_by_performance


def test_fig4_labeling(benchmark, wb, capfd):
    times = wb.full_search().times()  # warm the cache outside the bench
    result = benchmark(lambda: label_by_performance(times))
    fig = run_fig4(wb)
    lines = [fig.report()]
    conv = fig.labeling.convolution
    lines.append(
        f"convolution: len={len(conv)}, max={conv.max():.3g}, "
        f"threshold={fig.labeling.prominence_threshold:.3g}"
    )
    emit(capfd, "Figure 4 (labeling pipeline)", "\n".join(lines))
    assert result.n_classes == 3  # paper: 3 classes


def test_fig4_boundaries_at_jumps(wb):
    """Each boundary must sit on a larger-than-median gap of the curve."""
    fig = run_fig4(wb)
    t = fig.labeling.sorted_times
    gaps = np.diff(t)
    med = np.median(gaps)
    for b in fig.labeling.boundaries:
        local = gaps[max(0, b - 3) : b + 3].max()
        assert local > 5 * med
