"""Table V: effect of MCTS iterations on labeling accuracy.

Paper (iterations -> accuracy over the 2036-impl space):
  50 -> 0.75, 100 -> 0.83, 200 -> 0.96, 400 -> 0.99, 2036 -> 1.0

Ours uses the same budget *fractions* of our 540-impl space
(2.5%, 5%, 10%, 20%, 100%).  The shape to reproduce: accuracy rises with
iterations and reaches 1.0 at the full budget.
"""

from benchmarks.conftest import emit
from repro.experiments import run_table5


def test_table5_mcts_iterations(benchmark, wb, capfd):
    wb.full_pipeline()  # warm the shared cache
    result = benchmark.pedantic(
        lambda: run_table5(wb), rounds=1, iterations=1
    )
    rows = list(zip(result.iterations, result.accuracies))
    paper = list(zip(result.paper_iterations, result.paper_accuracies))
    body = [result.report(), "", "paper-vs-measured:"]
    for (pit, pacc), (it, acc) in zip(paper, rows):
        body.append(
            f"  paper {pit:5d} -> {pacc:.2f}   |   ours {it:5d} -> {acc:.3f}"
        )
    emit(capfd, "Table V (MCTS iterations vs accuracy)", "\n".join(body))
    assert result.accuracies[-1] == 1.0
    assert result.accuracies[0] <= result.accuracies[-1]
    # Larger budgets never catastrophically degrade accuracy: the last
    # partial budget is at least as good as the smallest.
    assert result.accuracies[-2] >= result.accuracies[0] - 0.05
