"""Ablation the paper calls for (§VI): MCTS vs uniform random sampling.

"A search strategy that randomly samples the design space could be used
to show that the current strategy indeed produces better results."
Run both strategies at the same budgets and compare the Table V metric.
"""

from benchmarks.conftest import emit
from repro.experiments import run_mcts_vs_random


def test_mcts_vs_random(benchmark, small_wb, capfd):
    small_wb.full_pipeline()
    result = benchmark.pedantic(
        lambda: run_mcts_vs_random(
            small_wb, iterations=[27, 54, 108], seeds=(0, 1, 2)
        ),
        rounds=1,
        iterations=1,
    )
    emit(capfd, "Ablation: MCTS vs random sampling", result.report())
    accs = {
        (row[0], row[1]): float(row[2]) for row in result.rows
    }
    # Both explore; neither should be degenerate.
    for key, acc in accs.items():
        assert 0.3 <= acc <= 1.0
