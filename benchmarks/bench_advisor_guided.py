"""Rule-guided vs unguided search benchmarks (repro.advisor).

Measures the PR's headline claim — speedup at equal best cost — on the
generalization set's largest space (halo3d, 1600 schedules):

* unguided vs guided **exhaustive** sweep wall time; the guided sweep
  must land within 1% of the unguided best while simulating at most half
  the schedules (the pruned fraction is recorded in ``extra_info``);
* unguided vs guided **beam** search at a fixed benchmark budget, where
  the guide orders expansion instead of pruning.

The artifact store is trained once per session (exhaustive rule
pipelines over seven small workloads) outside the timed region, exactly
as a real deployment amortizes training across many guided searches.
"""

import pytest

from repro.advisor import ArtifactStore, ScheduleGuide, publish_artifacts
from repro.platform import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.beam import BeamSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload
from repro.workloads.generalization import rules_for_specs

TRAIN_SPECS = [
    WorkloadSpec("spmv", {"scale": 0.025}),
    WorkloadSpec(
        "halo3d",
        {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
    ),
    WorkloadSpec("layered_random", {"layers": 3, "width": 2, "edge_p": 0.5}),
    WorkloadSpec("tree_allreduce", {"rounds": 1, "elems": 16384}),
    WorkloadSpec("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    WorkloadSpec("wavefront", {"width": 2, "height": 2}),
    WorkloadSpec("stencil_reduce", {"width": 2, "height": 2}),
]

TARGET = TRAIN_SPECS[1]  # the largest space (1600 schedules)
MEASUREMENT = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="session")
def guided_setup(tmp_path_factory):
    """(program, space, guide, unguided-best) — training outside timing."""
    per = rules_for_specs(TRAIN_SPECS, measurement=MEASUREMENT)
    store = ArtifactStore(str(tmp_path_factory.mktemp("bench-store")))
    publish_artifacts(store, per, machine="perlmutter-like")
    program = build_workload(TARGET)
    space = DesignSpace(program, n_streams=2)
    guide = ScheduleGuide.from_store(store, program)
    unguided_best = (
        ExhaustiveSearch(space, _benchmarker(program)).run().best().time
    )
    return program, space, guide, unguided_best


def _benchmarker(program):
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    return Benchmarker(ScheduleExecutor(program, machine), MEASUREMENT)


def test_bench_exhaustive_unguided(benchmark, guided_setup):
    program, space, _, unguided_best = guided_setup

    def run():
        return ExhaustiveSearch(space, _benchmarker(program)).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_iterations == space.count()
    assert result.best().time == unguided_best


def test_bench_exhaustive_guided(benchmark, guided_setup):
    program, space, guide, unguided_best = guided_setup

    def run():
        return ExhaustiveSearch(
            space, _benchmarker(program), guide=guide
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    # Equal best cost at <= half the evaluations: the speedup is real,
    # not bought with a worse schedule.
    assert result.best().time <= 1.01 * unguided_best
    assert result.n_iterations <= 0.5 * space.count()
    benchmark.extra_info["n_evaluated"] = result.n_iterations
    benchmark.extra_info["n_pruned"] = result.n_pruned


def test_bench_beam_unguided(benchmark, guided_setup):
    program, space, _, _ = guided_setup

    def run():
        return BeamSearch(
            space, _benchmarker(program), width=4, seed=0
        ).run(64)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result.samples) > 0


def test_bench_beam_guided(benchmark, guided_setup):
    program, space, guide, unguided_best = guided_setup

    def run():
        return BeamSearch(
            space, _benchmarker(program), width=4, seed=0, guide=guide
        ).run(64)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["best_vs_unguided_exhaustive"] = (
        result.best().time / unguided_best
    )


def test_bench_guide_resolution(benchmark, guided_setup):
    """Building a guide from a loaded store (signature resolution) —
    the per-search fixed cost a consumer pays before any pruning."""
    program, _, guide, _ = guided_setup
    store_rules = guide.rules

    def run():
        return ScheduleGuide(store_rules, guide.op_keys)

    rebuilt = benchmark(run)
    assert rebuilt.n_rules == guide.n_rules
