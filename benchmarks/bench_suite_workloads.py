"""Workload-subsystem benchmarks (not paper experiments).

Tracks the cost of the scenario-space machinery PR 2 introduced: building
each synthetic generator family, and pushing the ``smoke`` suite through
the batched evaluation substrate serially vs. with a worker pool.
"""

import pytest

from repro.workloads import WorkloadSpec, build_workload
from repro.workloads.suite import SuiteRunner, get_suite

GENERATOR_SPECS = [
    WorkloadSpec("layered_random", {"layers": 4, "width": 3, "edge_p": 0.5}),
    WorkloadSpec("fork_join", {"stages": 3, "branches": 3, "depth": 2}),
    WorkloadSpec("tree_allreduce", {"rounds": 3, "elems": 65536}),
    WorkloadSpec("wavefront", {"width": 4, "height": 4}),
]


@pytest.mark.parametrize("spec", GENERATOR_SPECS, ids=lambda s: s.family)
def test_bench_generator_build(benchmark, spec):
    program = benchmark(lambda: build_workload(spec))
    assert program.schedulable_vertices()


def test_bench_smoke_suite_serial(benchmark):
    suite = get_suite("smoke")

    def run():
        return SuiteRunner(suite).run()

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(report.cells) == len(suite.specs) * len(suite.strategies)


def test_bench_smoke_suite_two_workers(benchmark):
    suite = get_suite("smoke")

    def run():
        return SuiteRunner(suite, workers=2).run()

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(report.cells) == len(suite.specs) * len(suite.strategies)
