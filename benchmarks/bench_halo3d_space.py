"""Extension (§VI): 3-D halo-exchange design space exploration.

The per-axis fine-grained halo program's space explodes combinatorially
(1 axis: 1600 schedules; 2 axes: ~2.3e9) — exactly the regime MCTS is
built for.  Reports the space sizes and what MCTS finds at a small budget.
"""

from benchmarks.conftest import emit
from repro.apps.halo import GridCase, build_halo_program
from repro.platform import perlmutter_like
from repro.schedule import DesignSpace
from repro.search import MctsSearch
from repro.sim import Benchmarker, MeasurementConfig, ScheduleExecutor


def test_halo3d_mcts(benchmark, capfd):
    case = GridCase(nx=256, ny=256, nz=64, px=2, py=2, pz=1)
    machine = perlmutter_like(noise_sigma=0.01)
    p1 = build_halo_program(case, axes=(0,))
    p2 = build_halo_program(case, axes=(0, 1))
    space1 = DesignSpace(p1, n_streams=2)
    space2 = DesignSpace(p2, n_streams=2)

    bench2 = Benchmarker(
        ScheduleExecutor(p2, machine), MeasurementConfig(max_samples=2)
    )

    def explore():
        return MctsSearch(space2, bench2).run(200)

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    best, worst = result.best(), result.worst()
    emit(
        capfd,
        "Halo-3D extension (design-space sizes + MCTS)",
        "\n".join(
            [
                f"1-axis space:  {space1.count():,} schedules",
                f"2-axis space:  {space2.count():,} schedules (enumeration "
                f"infeasible; MCTS only)",
                f"MCTS @200 iters: best {best.time * 1e6:.1f} us, "
                f"worst {worst.time * 1e6:.1f} us "
                f"({worst.time / best.time:.2f}x spread discovered)",
            ]
        ),
    )
    assert space2.count() > 1_000_000
    assert worst.time > best.time
