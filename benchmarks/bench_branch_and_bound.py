"""Branch-and-bound enumeration vs the block-filter baseline.

The PR-5 guided search filtered complete schedules block by block: every
leaf of the design space was still built, then discarded.  True
branch-and-bound threads a monotone prefix predicate into the
enumerator's DFS so a violating prefix cuts its whole subtree before a
single leaf under it is expanded.  These benches pin the claim on a
``>= 10^7``-schedule space (layered_random 4x3: 39,530,496 schedules;
smoke mode swaps in the full wavefront 3x3 space, 10,752 schedules):

* block-filter baseline vs branch-and-bound over the same seek-delimited
  comparison range — identical kept schedules, pinned subtree-cut count,
  wall-time ratio recorded in ``extra_info``;
* ``seek`` cost — a pure DP descent must stay micro-scale even when the
  index addresses the deep end of the 39.5M-leaf space;
* range-sharded exhaustive search (halo3d) merged bit-identically to the
  serial sweep.

The prefix predicate — at most one GPU op bound to stream 1 — is
synthetic but monotone, exactly the soundness contract
``ScheduleGuide.admits_prefix`` provides; using it keeps the pinned
counts independent of trained-model drift.
"""

import pytest

from benchmarks.conftest import SMOKE
from repro.orchestrate import run_range_sharded_search
from repro.platform import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.search.exhaustive import ExhaustiveSearch
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

MEASUREMENT = MeasurementConfig(max_samples=1)

if SMOKE:
    BIG = WorkloadSpec("wavefront", {"width": 3, "height": 3})
    RANGE_LIMIT = None  # the whole 10,752-schedule space
    PINNED = {"kept": 42, "cuts": 140}
else:
    BIG = WorkloadSpec(
        "layered_random", {"layers": 4, "width": 3, "edge_p": 0.5}
    )
    RANGE_LIMIT = 120_000  # comparison slice of the 39.5M-leaf space
    PINNED = {"kept": 380, "cuts": 757}

HALO = WorkloadSpec(
    "halo3d",
    {"nx": 32, "ny": 32, "nz": 32, "px": 2, "py": 2, "pz": 1, "axes": "x"},
)


def _prefix_ok(ops):
    """Monotone synthetic guide: at most one GPU op on stream 1."""
    return sum(1 for op in ops if op.stream == 1) <= 1


@pytest.fixture(scope="session")
def big_space():
    space = DesignSpace(build_workload(BIG), n_streams=2)
    if not SMOKE:
        assert space.count() >= 10_000_000
    space.seek(0)  # warm the completion-count memo outside timing
    return space


def _walk(space, keep_prefix):
    kept = cuts = 0
    for block in space.iter_blocks(
        512,
        cursor=space.seek(0),
        limit=RANGE_LIMIT,
        keep=lambda s: _prefix_ok(s.ops),
        keep_prefix=keep_prefix,
    ):
        kept += len(block)
        cuts += block.n_subtrees_cut
    return kept, cuts


def test_bench_enum_block_filter(benchmark, big_space):
    """Baseline: every leaf built, complete schedules filtered."""
    kept, cuts = benchmark.pedantic(
        lambda: _walk(big_space, None), rounds=2, iterations=1
    )
    assert (kept, cuts) == (PINNED["kept"], 0)


def test_bench_enum_branch_and_bound(benchmark, big_space):
    """Same range, same kept set — violating subtrees never expanded."""
    kept, cuts = benchmark.pedantic(
        lambda: _walk(big_space, _prefix_ok), rounds=2, iterations=1
    )
    assert kept == PINNED["kept"]
    assert cuts == PINNED["cuts"]
    benchmark.extra_info["n_subtrees_cut"] = cuts
    benchmark.extra_info["n_kept"] = kept


def test_bench_seek_is_dp_descent(benchmark, big_space):
    """Seeking near the end of the space must not enumerate anything."""
    total = big_space.count()

    def run():
        return big_space.seek(total - 5)

    cursor = benchmark.pedantic(run, rounds=3, iterations=5)
    tail = [
        s
        for b in big_space.iter_blocks(8, cursor=cursor)
        for s in b.schedules
    ]
    assert len(tail) == 5
    benchmark.extra_info["space_count"] = total


@pytest.fixture(scope="session")
def halo_serial():
    program = build_workload(HALO)
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    space = DesignSpace(program, n_streams=2)
    return ExhaustiveSearch(
        space, Benchmarker(ScheduleExecutor(program, machine), MEASUREMENT)
    ).run()


def test_bench_range_sharded_search(benchmark, halo_serial):
    """Seek-partitioned shards across the PR-4 pool, merged in range
    order, must reproduce the serial sweep bit for bit."""
    machine = noiseless(perlmutter_like())

    def run():
        return run_range_sharded_search(
            HALO,
            machine=machine,
            n_shards=4,
            measurement=MEASUREMENT,
            shard_workers=0 if SMOKE else 2,
        )

    sharded = benchmark.pedantic(run, rounds=2, iterations=1)
    assert [
        (s.schedule.fingerprint(), s.time) for s in sharded.result.samples
    ] == [(s.schedule.fingerprint(), s.time) for s in halo_serial.samples]
    benchmark.extra_info["n_schedules"] = sharded.total
