"""Ablation: resource assignment — stream count and multi-GPU placement.

The paper fixes 2 streams per GPU and proposes (§VI) extending resource
assignment to multiple GPUs.  Two sweeps:

* stream count: how much of the SpMV design space's spread the second
  stream creates (1 stream removes all stream-assignment freedom);
* GPU placement: on the halo program (which has GPU→GPU dependencies),
  splitting the two streams across two GPUs adds an inter-device fence to
  every cross-stream wait — fast schedules change.
"""

import dataclasses

from benchmarks.conftest import emit
from repro.apps.halo import GridCase, build_halo_program
from repro.schedule import DesignSpace
from repro.search import ExhaustiveSearch
from repro.sim import Benchmarker, MeasurementConfig, ScheduleExecutor


def test_stream_count_sweep(benchmark, wb, capfd):
    program = wb.instance.program

    def sweep():
        rows = []
        for n_streams in (1, 2, 3):
            space = DesignSpace(program, n_streams=n_streams)
            bench = Benchmarker(
                ScheduleExecutor(program, wb.machine.with_streams(n_streams)),
                MeasurementConfig(max_samples=2),
            )
            res = ExhaustiveSearch(space, bench).run()
            t = res.times()
            rows.append(
                (n_streams, space.count(), t.min(), t.max(), t.max() / t.min())
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    body = ["streams  space  best(us)  worst(us)  spread"]
    for n, count, lo, hi, spread in rows:
        body.append(
            f"{n:7d}  {count:5d}  {lo * 1e6:8.2f}  {hi * 1e6:9.2f}  "
            f"{spread:.3f}x"
        )
    body.append(
        "finding: the optimum is ordering-driven — one stream already "
        "reaches it; extra streams matter for the slow classes (cf. the "
        "paper's 'yL same stream as yR' slowest-class rule)."
    )
    emit(capfd, "Ablation: stream count (SpMV)", "\n".join(body))
    by_streams = {r[0]: r for r in rows}
    # More streams never hurt the optimum, and here ordering alone already
    # achieves it (the interesting reproduced finding).
    assert by_streams[2][2] <= by_streams[1][2] * (1 + 1e-9)
    assert by_streams[3][2] <= by_streams[2][2] * (1 + 1e-9)
    # Space sizes: 135 / 540 / 675 (135 x {1, 4, 5} canonical assignments).
    assert by_streams[1][1] == 135
    assert by_streams[2][1] == 540
    assert by_streams[3][1] == 675


def test_multi_gpu_placement(benchmark, capfd):
    case = GridCase(nx=128, ny=128, nz=64, px=2, py=2, pz=1)
    program = build_halo_program(case, axes=(0,))
    space = DesignSpace(program, n_streams=2)
    from repro.platform import perlmutter_like

    base = perlmutter_like(noise_sigma=0.0)

    def sweep():
        rows = []
        for n_gpus in (1, 2):
            machine = dataclasses.replace(base, n_gpus=n_gpus)
            bench = Benchmarker(
                ScheduleExecutor(program, machine),
                MeasurementConfig(max_samples=1),
            )
            res = ExhaustiveSearch(space, bench).run()
            t = res.times()
            rows.append((n_gpus, t.min(), t.max()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    body = ["gpus  best(us)  worst(us)"]
    for n, lo, hi in rows:
        body.append(f"{n:4d}  {lo * 1e6:8.2f}  {hi * 1e6:9.2f}")
    emit(capfd, "Ablation: GPU placement (halo, cross-device fences)",
         "\n".join(body))
    one, two = rows
    # Cross-device fences can only slow the worst case down, never speed
    # the best case up beyond the single-GPU optimum.
    assert two[1] >= one[1] - 1e-12
    assert two[2] >= one[2] - 1e-12
