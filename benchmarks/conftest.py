"""Benchmark fixtures.

The paper-scale workbench (150k-row SpMV on the perlmutter-like platform)
is built once per session; its exhaustive sweep is cached so the per-
figure benches measure their own stage, not the shared substrate.

Setting ``REPRO_BENCH_SMOKE=1`` (the nightly CI job does) shrinks the
paper-scale workbench to the 1/40-scale case so the whole suite runs in
minutes while still exercising every benchmarked code path; the emitted
JSON marks smoke runs via the ``smoke`` extra-info key.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.spmv import SpmvCase
from repro.experiments.workbench import SpmvWorkbench
from repro.platform import perlmutter_like
from repro.sim import MeasurementConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


@pytest.fixture(scope="session")
def wb() -> SpmvWorkbench:
    """Paper-scale workbench (the paper's exact SpMV case); 1/40 scale
    in smoke mode."""
    case = SpmvCase().scaled(1 / 40) if SMOKE else SpmvCase()
    return SpmvWorkbench(
        case=case,
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=3),
    )


@pytest.fixture(scope="session")
def small_wb() -> SpmvWorkbench:
    """1/40-scale workbench for the iteration-heavy sweeps."""
    return SpmvWorkbench(
        case=SpmvCase().scaled(1 / 40),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=2),
    )


@pytest.fixture(autouse=True)
def _mark_smoke(benchmark):
    """Record smoke mode in the benchmark JSON for trajectory tracking."""
    benchmark.extra_info["smoke"] = SMOKE
    return benchmark


def emit(capfd, title: str, body: str) -> None:
    """Print a report so it survives pytest's capture into tee'd output."""
    with capfd.disabled():
        print(f"\n==== {title} ====")
        print(body)
