"""Benchmark fixtures.

The paper-scale workbench (150k-row SpMV on the perlmutter-like platform)
is built once per session; its exhaustive sweep is cached so the per-
figure benches measure their own stage, not the shared substrate.
"""

from __future__ import annotations

import pytest

from repro.apps.spmv import SpmvCase
from repro.experiments.workbench import SpmvWorkbench
from repro.platform import perlmutter_like
from repro.sim import MeasurementConfig


@pytest.fixture(scope="session")
def wb() -> SpmvWorkbench:
    """Paper-scale workbench (the paper's exact SpMV case)."""
    return SpmvWorkbench(
        case=SpmvCase(),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=3),
    )


@pytest.fixture(scope="session")
def small_wb() -> SpmvWorkbench:
    """1/40-scale workbench for the iteration-heavy sweeps."""
    return SpmvWorkbench(
        case=SpmvCase().scaled(1 / 40),
        machine=perlmutter_like(noise_sigma=0.01),
        measurement=MeasurementConfig(max_samples=2),
    )


def emit(capfd, title: str, body: str) -> None:
    """Print a report so it survives pytest's capture into tee'd output."""
    with capfd.disabled():
        print(f"\n==== {title} ====")
        print(body)
