"""Substrate performance microbenchmarks (not paper experiments).

Keeps an eye on the throughput numbers that make the paper experiments
affordable: simulator runs/second, MCTS iteration cost, enumeration cost,
tree-training cost, and the serial-vs-parallel evaluation speedup of the
:mod:`repro.exec` substrate (compare the two ``exhaustive_sweep``
benches; the parallel one should win by roughly the worker count on
multi-core hosts).
"""

from repro.exec import ParallelEvaluator, SerialEvaluator
from repro.ml.tree import DecisionTree, TreeConfig
from repro.search import ExhaustiveSearch, MctsSearch
from repro.sim import Benchmarker, MeasurementConfig, ScheduleExecutor


def test_bench_simulation_throughput(benchmark, wb):
    executor = ScheduleExecutor(wb.instance.program, wb.machine)
    schedules = list(wb.space.enumerate_schedules())[:50]

    def run_batch():
        for s in schedules:
            executor.run(s)

    benchmark.pedantic(run_batch, rounds=3, iterations=1)


def test_bench_space_enumeration(benchmark, wb):
    benchmark(lambda: sum(1 for _ in wb.space.enumerate_schedules()))


def test_bench_space_count_dp(benchmark, wb):
    benchmark(wb.space.count)


def test_bench_mcts_100_iterations(benchmark, wb):
    def run():
        bench = Benchmarker(
            ScheduleExecutor(wb.instance.program, wb.machine),
            MeasurementConfig(max_samples=1),
        )
        MctsSearch(wb.space, bench).run(100)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_bench_exhaustive_sweep_serial(benchmark, wb):
    """Reference: exhaustive SpMV sweep through the serial evaluator."""

    def run():
        ev = SerialEvaluator(
            Benchmarker(
                ScheduleExecutor(wb.instance.program, wb.machine),
                MeasurementConfig(max_samples=1),
            )
        )
        ExhaustiveSearch(wb.space, ev).run()

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_bench_exhaustive_sweep_parallel4(benchmark, wb):
    """Same sweep sharded over 4 worker processes (fresh memo per round,
    pool reused so startup cost is amortized as in real exploration)."""
    with ParallelEvaluator(
        wb.instance.program,
        wb.machine,
        MeasurementConfig(max_samples=1),
        n_workers=4,
    ) as ev:
        ev.evaluate_batch(list(wb.space.enumerate_schedules())[:1])

        def run():
            ev._memo.clear()  # re-measure everything, keep the pool warm
            ExhaustiveSearch(wb.space, ev).run()

        benchmark.pedantic(run, rounds=2, iterations=1)


def test_bench_feature_extraction(benchmark, wb):
    from repro.ml.features import FeatureExtractor

    schedules = wb.full_search().schedules()
    benchmark(lambda: FeatureExtractor().fit_transform(schedules))


def test_bench_tree_training(benchmark, wb):
    full = wb.full_pipeline()
    x, y = full.features.matrix, full.labeling.labels
    benchmark(
        lambda: DecisionTree(TreeConfig(max_leaf_nodes=16)).fit(x, y)
    )
