"""Substrate performance microbenchmarks (not paper experiments).

Keeps an eye on the throughput numbers that make the paper experiments
affordable: simulator runs/second, MCTS iteration cost, enumeration cost,
tree-training cost.
"""

import numpy as np

from repro.ml.tree import DecisionTree, TreeConfig
from repro.schedule import DesignSpace
from repro.search import MctsSearch
from repro.sim import Benchmarker, MeasurementConfig, ScheduleExecutor


def test_bench_simulation_throughput(benchmark, wb):
    executor = ScheduleExecutor(wb.instance.program, wb.machine)
    schedules = list(wb.space.enumerate_schedules())[:50]

    def run_batch():
        for s in schedules:
            executor.run(s)

    benchmark.pedantic(run_batch, rounds=3, iterations=1)


def test_bench_space_enumeration(benchmark, wb):
    benchmark(lambda: sum(1 for _ in wb.space.enumerate_schedules()))


def test_bench_space_count_dp(benchmark, wb):
    benchmark(wb.space.count)


def test_bench_mcts_100_iterations(benchmark, wb):
    def run():
        bench = Benchmarker(
            ScheduleExecutor(wb.instance.program, wb.machine),
            MeasurementConfig(max_samples=1),
        )
        MctsSearch(wb.space, bench).run(100)

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_bench_feature_extraction(benchmark, wb):
    from repro.ml.features import FeatureExtractor

    schedules = wb.full_search().schedules()
    benchmark(lambda: FeatureExtractor().fit_transform(schedules))


def test_bench_tree_training(benchmark, wb):
    full = wb.full_pipeline()
    x, y = full.features.matrix, full.labeling.labels
    benchmark(
        lambda: DecisionTree(TreeConfig(max_leaf_nodes=16)).fit(x, y)
    )
