"""Unit tests for BoundOp and Schedule."""

import pytest

from repro.dag.vertex import OpKind, Vertex, cpu_op, gpu_op
from repro.errors import ScheduleError
from repro.schedule.schedule import BoundOp, Schedule


def cer(name, stream, event="e"):
    return BoundOp(
        Vertex(name=name, kind=OpKind.EVENT_RECORD), stream=stream, event=event
    )


class TestBoundOp:
    def test_gpu_requires_stream(self):
        with pytest.raises(ScheduleError, match="requires a stream"):
            BoundOp(gpu_op("k"))

    def test_cpu_must_not_have_stream(self):
        with pytest.raises(ScheduleError, match="must not carry"):
            BoundOp(cpu_op("c"), stream=0)

    def test_sync_requires_event(self):
        with pytest.raises(ScheduleError, match="requires an event"):
            BoundOp(Vertex(name="r", kind=OpKind.EVENT_RECORD), stream=0)

    def test_str(self):
        assert str(BoundOp(gpu_op("k"), stream=1)) == "k@s1"
        assert str(BoundOp(cpu_op("c"))) == "c"


class TestSchedule:
    def test_duplicate_ops_rejected(self):
        with pytest.raises(ScheduleError, match="duplicate"):
            Schedule([BoundOp(cpu_op("a")), BoundOp(cpu_op("a"))])

    def test_equality_and_hash(self):
        s1 = Schedule([BoundOp(gpu_op("k"), stream=0), BoundOp(cpu_op("c"))])
        s2 = Schedule([BoundOp(gpu_op("k"), stream=0), BoundOp(cpu_op("c"))])
        s3 = Schedule([BoundOp(gpu_op("k"), stream=1), BoundOp(cpu_op("c"))])
        assert s1 == s2 and hash(s1) == hash(s2)
        assert s1 != s3

    def test_position_and_stream_of(self):
        s = Schedule([BoundOp(cpu_op("a")), BoundOp(gpu_op("k"), stream=1)])
        assert s.position("k") == 1
        assert s.stream_of("k") == 1
        assert s.stream_of("a") is None
        with pytest.raises(ScheduleError):
            s.position("zzz")

    def test_gpu_ops_filter(self):
        s = Schedule([BoundOp(cpu_op("a")), BoundOp(gpu_op("k"), stream=0)])
        assert [op.name for op in s.gpu_ops()] == ["k"]


class TestCanonicalization:
    def test_canonical_relabels_by_first_use(self):
        s = Schedule(
            [
                BoundOp(gpu_op("a"), stream=1),
                BoundOp(gpu_op("b"), stream=0),
                BoundOp(gpu_op("c"), stream=1),
            ]
        )
        c = s.canonical()
        assert [op.stream for op in c.ops] == [0, 1, 0]
        assert c.is_canonical()

    def test_canonical_idempotent(self):
        s = Schedule(
            [BoundOp(gpu_op("a"), stream=1), BoundOp(gpu_op("b"), stream=0)]
        )
        assert s.canonical().canonical() == s.canonical()

    def test_bijection_equivalent_schedules_canonicalize_equal(self):
        a = Schedule(
            [BoundOp(gpu_op("x"), stream=0), BoundOp(gpu_op("y"), stream=1)]
        )
        b = Schedule(
            [BoundOp(gpu_op("x"), stream=1), BoundOp(gpu_op("y"), stream=0)]
        )
        assert a.canonical() == b.canonical()

    def test_streams_used_in_first_use_order(self):
        s = Schedule(
            [BoundOp(gpu_op("a"), stream=1), BoundOp(gpu_op("b"), stream=0)]
        )
        assert s.streams_used() == (1, 0)
