"""seek/limit/branch-and-bound properties of DesignSpace enumeration.

The contracts range sharding and guided branch-and-bound rest on:

* ``seek(i)`` resumes exactly at schedule ``i`` — a pure DP descent, no
  enumeration — for every index, including the endpoints;
* seek-delimited range shards concatenate bit-identically to
  ``enumerate_schedules()`` for any partition;
* ``keep_prefix`` cuts are lossless against the equivalent whole-schedule
  filter, and cut-count bookkeeping is invariant across block sizes and
  cursor resume points.
"""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.schedule.space import DesignSpace, EnumerationCursor
from repro.workloads import WorkloadSpec, build_workload


def _space(family="wavefront", params=None, n_streams=2):
    params = params if params is not None else {"width": 2, "height": 2}
    return DesignSpace(build_workload(WorkloadSpec(family, params)), n_streams)


def _fps(schedules):
    return [s.fingerprint() for s in schedules]


SPACES = [
    ("wavefront", {"width": 2, "height": 2}),
    ("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
    ("tree_allreduce", {"rounds": 1, "elems": 16384}),
]


class TestSeek:
    @pytest.mark.parametrize("family,params", SPACES)
    def test_seek_resumes_at_exact_index(self, family, params):
        space = _space(family, params)
        total = space.count()
        full = _fps(space.enumerate_schedules())
        rng = np.random.default_rng(0)
        indices = {0, 1, total - 1, total} | {
            int(i) for i in rng.integers(0, total + 1, size=12)
        }
        for i in sorted(indices):
            cursor = space.seek(i)
            resumed = _fps(
                s
                for b in space.iter_blocks(7, cursor=cursor)
                for s in b.schedules
            )
            assert resumed == full[i:], f"seek({i})"

    def test_seek_endpoints(self):
        space = _space()
        assert space.seek(0) == EnumerationCursor()
        end = space.seek(space.count())
        assert end.exhausted
        assert list(space.iter_blocks(4, cursor=end)) == []

    def test_seek_agrees_with_walked_cursor(self):
        """seek(i) must produce the exact cursor path enumeration itself
        reports after i schedules."""
        space = _space()
        walked = [b.cursor for b in space.iter_blocks(1)]
        for i, cursor in enumerate(walked[:-1]):
            assert space.seek(i + 1) == cursor

    def test_out_of_range_rejected(self):
        space = _space()
        with pytest.raises(ScheduleError, match="seek index"):
            space.seek(-1)
        with pytest.raises(ScheduleError, match="seek index"):
            space.seek(space.count() + 1)

    def test_seek_does_not_enumerate(self):
        """The descent is DP lookups, not enumeration: on a six-figure
        space, seeking deep must be near-instant (and exact)."""
        space = _space("stencil_reduce", {})
        total = space.count()
        assert total >= 100_000
        cursor = space.seek(total - 3)
        tail = [
            s for b in space.iter_blocks(8, cursor=cursor) for s in b.schedules
        ]
        assert len(tail) == 3


class TestRangeConcatenation:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 16])
    def test_shards_concatenate_to_full(self, n_shards):
        space = _space()
        total = space.count()
        full = _fps(space.enumerate_schedules())
        bounds = [round(k * total / n_shards) for k in range(n_shards + 1)]
        cat = []
        for k in range(n_shards):
            start, stop = bounds[k], bounds[k + 1]
            cat += _fps(
                s
                for b in space.iter_blocks(
                    4, cursor=space.seek(start), limit=stop - start
                )
                for s in b.schedules
            )
        assert cat == full

    def test_limit_zero_is_empty(self):
        space = _space()
        assert list(space.iter_blocks(4, limit=0)) == []

    def test_limit_stops_short_without_exhausting(self):
        space = _space()
        blocks = list(space.iter_blocks(4, limit=6))
        assert sum(len(b) for b in blocks) == 6
        assert not blocks[-1].cursor.exhausted
        rest = _fps(
            s
            for b in space.iter_blocks(4, cursor=blocks[-1].cursor)
            for s in b.schedules
        )
        assert rest == _fps(space.enumerate_schedules())[6:]

    def test_negative_limit_rejected(self):
        with pytest.raises(ScheduleError, match="limit"):
            next(_space().iter_blocks(4, limit=-1))


def _stream_bound_prefix(ops):
    """Monotone predicate: no GPU op may use stream 1 (once bound, a
    violation can never be undone by extending the prefix)."""
    return not any(op.stream == 1 for op in ops)


class TestBranchAndBound:
    def test_cut_plus_filter_matches_whole_schedule_filter(self):
        """keep_prefix + keep keeps exactly what filtering complete
        schedules keeps — cuts lose nothing, at any block size."""
        space = _space()
        want = _fps(
            s
            for s in space.enumerate_schedules()
            if _stream_bound_prefix(s.ops)
        )
        for bs in (1, 3, 7, 1000):
            blocks = list(
                space.iter_blocks(
                    bs,
                    keep=lambda s: _stream_bound_prefix(s.ops),
                    keep_prefix=_stream_bound_prefix,
                )
            )
            got = _fps(s for b in blocks for s in b.schedules)
            assert got == want, bs
            assert sum(b.n_subtrees_cut for b in blocks) > 0

    def test_cut_count_invariant_across_block_sizes(self):
        space = _space()
        counts = {
            sum(
                b.n_subtrees_cut
                for b in space.iter_blocks(
                    bs, keep_prefix=_stream_bound_prefix
                )
            )
            for bs in (1, 2, 5, 9, 1000)
        }
        assert len(counts) == 1

    def test_cut_count_invariant_across_resume_points(self):
        """Serial cuts split exactly at block-cursor resume points: the
        prefix blocks' cuts plus the resumed walk's cuts equal the
        uninterrupted total (cursors always address enumerated leaves,
        never the inside of a cut subtree)."""
        space = _space()
        blocks = list(space.iter_blocks(3, keep_prefix=_stream_bound_prefix))
        total_cuts = sum(b.n_subtrees_cut for b in blocks)
        for i, block in enumerate(blocks[:-1]):
            resumed = list(
                space.iter_blocks(
                    3,
                    cursor=block.cursor,
                    keep_prefix=_stream_bound_prefix,
                )
            )
            before = sum(b.n_subtrees_cut for b in blocks[: i + 1])
            after = sum(b.n_subtrees_cut for b in resumed)
            assert before + after == total_cuts
            assert _fps(s for b in resumed for s in b.schedules) == _fps(
                s for b in blocks[i + 1 :] for s in b.schedules
            )

    def test_limit_accounts_for_cut_leaves(self):
        """Under a limit, cut subtrees consume their leaves' enumeration
        positions, so a full-range limited B&B walk equals the unlimited
        one — positions, not surviving schedules, are what bound it."""
        space = _space()
        unlimited = _fps(
            s
            for b in space.iter_blocks(4, keep_prefix=_stream_bound_prefix)
            for s in b.schedules
        )
        limited = _fps(
            s
            for b in space.iter_blocks(
                4,
                cursor=space.seek(0),
                limit=space.count(),
                keep_prefix=_stream_bound_prefix,
            )
            for s in b.schedules
        )
        assert limited == unlimited

    def test_sharded_branch_and_bound_keeps_identical_set(self):
        """Seek-split shards of a guided walk keep exactly the serial
        guided walk's schedules, even when cut subtrees straddle shard
        boundaries (the next shard re-walks the straddled remainder and
        its keep filter rejects every violating leaf)."""
        space = _space()
        total = space.count()
        want = _fps(
            s
            for s in space.enumerate_schedules()
            if _stream_bound_prefix(s.ops)
        )
        for n_shards in (2, 3, 5):
            bounds = [
                round(k * total / n_shards) for k in range(n_shards + 1)
            ]
            cat = []
            for k in range(n_shards):
                start, stop = bounds[k], bounds[k + 1]
                cat += _fps(
                    s
                    for b in space.iter_blocks(
                        4,
                        cursor=space.seek(start),
                        limit=stop - start,
                        keep=lambda s: _stream_bound_prefix(s.ops),
                        keep_prefix=_stream_bound_prefix,
                    )
                    for s in b.schedules
                )
            assert cat == want, n_shards

    def test_everything_cut_yields_one_empty_block(self):
        space = _space()
        blocks = list(space.iter_blocks(4, keep_prefix=lambda ops: False))
        assert len(blocks) == 1
        assert len(blocks[0]) == 0
        assert blocks[0].n_subtrees_cut == 1  # the root subtree
        assert blocks[0].cursor.exhausted

    def test_random_schedule_early_abandon(self):
        space = _space()
        rng = np.random.default_rng(0)
        draws = [
            space.random_schedule(rng, keep_prefix=_stream_bound_prefix)
            for _ in range(50)
        ]
        assert any(s is None for s in draws)  # abandon fires
        kept = [s for s in draws if s is not None]
        assert kept
        # Only the final action can still violate (prefixes are checked
        # before every extension; complete schedules are the admits/keep
        # filter's job, exactly as in the enumerator), so any violating
        # op in a kept draw sits in the schedule's last placed GPU
        # binding — never earlier than the final stream-bound op.
        for s in kept:
            bad = [i for i, op in enumerate(s.ops) if op.stream == 1]
            if bad:
                later_gpu = [
                    i
                    for i, op in enumerate(s.ops)
                    if op.stream is not None and i > max(bad)
                ]
                assert not later_gpu

    def test_random_schedule_unguided_unchanged(self):
        space = _space()
        a = [
            space.random_schedule(np.random.default_rng(7)) for _ in range(10)
        ]
        b = [
            space.random_schedule(np.random.default_rng(7), keep_prefix=None)
            for _ in range(10)
        ]
        assert _fps(a) == _fps(b)
