"""Property-based tests: design-space invariants on random program DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.graph import Graph
from repro.dag.program import Program
from repro.dag.vertex import cpu_op, gpu_op
from repro.schedule.space import DesignSpace


@st.composite
def random_programs(draw):
    """Random mixed CPU/GPU DAG on 2..6 vertices (no MPI actions)."""
    n = draw(st.integers(min_value=2, max_value=6))
    kinds = [draw(st.booleans()) for _ in range(n)]  # True = GPU
    vertices = [
        gpu_op(f"v{i}") if is_gpu else cpu_op(f"v{i}")
        for i, is_gpu in enumerate(kinds)
    ]
    g = Graph()
    for v in vertices:
        g.add_vertex(v)
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.booleans()):  # sparse-ish
                g.add_edge(f"v{i}", f"v{j}")
    return Program(graph=g.with_start_end(), n_ranks=1)


@given(random_programs(), st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_enumerated_schedules_validate(program, n_streams):
    space = DesignSpace(program, n_streams=n_streams)
    count = 0
    for s in space.enumerate_schedules():
        space.validate_schedule(s)
        count += 1
        if count > 3000:  # bound runtime on unlucky draws
            break
    assert count >= 1


@given(random_programs(), st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_count_consistent_with_enumeration(program, n_streams):
    space = DesignSpace(program, n_streams=n_streams)
    schedules = []
    for s in space.enumerate_schedules():
        schedules.append(s)
        if len(schedules) > 3000:
            pytest.skip("space too large for exhaustive comparison")
    assert space.count() == len(schedules)
    # Uniqueness: no duplicate canonical schedules generated.
    assert len(set(schedules)) == len(schedules)


@given(random_programs(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_random_schedule_is_member(program, seed):
    space = DesignSpace(program, n_streams=2)
    s = space.random_schedule(np.random.default_rng(seed))
    space.validate_schedule(s)


@given(random_programs())
@settings(max_examples=20, deadline=None)
def test_program_ops_all_present(program):
    space = DesignSpace(program, n_streams=2)
    expected = {v.name for v in program.schedulable_vertices()}
    for i, s in enumerate(space.enumerate_schedules()):
        assert expected <= set(s.op_names())
        if i > 200:
            break


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_more_streams_never_shrinks_space(program):
    c1 = DesignSpace(program, n_streams=1).count()
    c2 = DesignSpace(program, n_streams=2).count()
    assert c2 >= c1
