"""Streaming enumeration: iter_blocks, cursors, cross-process stability."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ScheduleError
from repro.schedule.space import DesignSpace, EnumerationCursor
from repro.workloads import WorkloadSpec, build_workload


def _space(family="wavefront", params=None, n_streams=2):
    params = params if params is not None else {"width": 2, "height": 2}
    return DesignSpace(build_workload(WorkloadSpec(family, params)), n_streams)


def _fingerprints(schedules):
    return [s.fingerprint() for s in schedules]


class TestIterBlocks:
    @pytest.mark.parametrize("block_size", [1, 3, 7, 1000])
    def test_concatenation_equals_enumerate(self, block_size):
        space = _space()
        streamed = [
            s for b in space.iter_blocks(block_size) for s in b.schedules
        ]
        assert _fingerprints(streamed) == _fingerprints(
            space.enumerate_schedules()
        )

    def test_counts_match_count(self):
        for family, params in [
            ("wavefront", {"width": 2, "height": 2}),
            ("fork_join", {"stages": 1, "branches": 2, "depth": 1}),
            ("tree_allreduce", {"rounds": 1, "elems": 16384}),
        ]:
            space = _space(family, params)
            n_streamed = sum(len(b) for b in space.iter_blocks(5))
            assert n_streamed == space.count()

    def test_block_sizes_and_indices(self):
        space = _space()
        blocks = list(space.iter_blocks(7))
        assert [b.index for b in blocks] == list(range(len(blocks)))
        assert all(len(b) == 7 for b in blocks[:-1])
        assert 1 <= len(blocks[-1]) <= 7
        assert blocks[-1].cursor.exhausted
        assert not any(b.cursor.exhausted for b in blocks[:-1])

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ScheduleError, match="block_size"):
            next(_space().iter_blocks(0))


class TestCursorResume:
    def test_resume_mid_stream(self):
        space = _space()
        full = _fingerprints(space.enumerate_schedules())
        blocks = list(space.iter_blocks(6))
        for i, block in enumerate(blocks[:-1]):
            resumed = [
                s
                for b in space.iter_blocks(6, cursor=block.cursor)
                for s in b.schedules
            ]
            assert _fingerprints(resumed) == full[6 * (i + 1) :]

    def test_resume_from_exhausted_cursor_is_empty(self):
        space = _space()
        last = list(space.iter_blocks(4))[-1]
        assert last.cursor.exhausted
        assert list(space.iter_blocks(4, cursor=last.cursor)) == []

    def test_fresh_cursor_is_start(self):
        assert EnumerationCursor().at_start

    def test_corrupt_cursor_rejected(self):
        space = _space()
        bad = EnumerationCursor(path=(999,))
        with pytest.raises(ScheduleError, match="cursor"):
            list(space.iter_blocks(4, cursor=bad))

    def test_partial_path_cursor_rejected(self):
        """A cursor must address a complete schedule, not an inner node."""
        space = _space()
        depth = len(list(space.iter_blocks(1))[0].cursor.path)
        assert depth > 1
        bad = EnumerationCursor(path=(0,) * (depth - 1))
        with pytest.raises(ScheduleError, match="complete"):
            list(space.iter_blocks(4, cursor=bad))


def _remote_fingerprints(spec_family, spec_params, block_size, cursor):
    space = _space(spec_family, spec_params)
    return [
        s.fingerprint()
        for b in space.iter_blocks(block_size, cursor=cursor)
        for s in b.schedules
    ]


class TestCrossProcessStability:
    def test_order_bit_stable_across_processes(self):
        """Another process resuming from a cursor produces exactly the
        suffix this process would — the property workload sharding and
        resumable enumeration rest on."""
        space = _space()
        full = _fingerprints(space.enumerate_schedules())
        blocks = list(space.iter_blocks(5))
        mid_cursor = blocks[1].cursor
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote_full = pool.submit(
                _remote_fingerprints,
                "wavefront",
                {"width": 2, "height": 2},
                5,
                None,
            ).result()
            remote_suffix = pool.submit(
                _remote_fingerprints,
                "wavefront",
                {"width": 2, "height": 2},
                5,
                mid_cursor,
            ).result()
        assert remote_full == full
        assert remote_suffix == full[10:]


@pytest.mark.slow
class TestSixFigureSpace:
    def test_245k_space_streams_with_bounded_residency(self):
        """The acceptance path: stencil_reduce's default space (245 760
        schedules) streams end to end holding at most one block — peak
        schedule residency is the block size, not the space size."""
        space = _space("stencil_reduce", {})
        n = space.count()
        assert n >= 100_000
        total = 0
        peak = 0
        for block in space.iter_blocks(4096):
            total += len(block)
            peak = max(peak, len(block))
        assert total == n
        assert peak <= 4096
