"""Tests for the design space (enumeration, counting, sampling, validity)."""

import numpy as np
import pytest

from repro.dag.graph import Graph
from repro.dag.program import Program
from repro.dag.vertex import OpKind, cpu_op, gpu_op
from repro.errors import ScheduleError
from repro.schedule.space import DesignSpace


def simple_space(n_streams=2):
    """k1(GPU) -> c(CPU), k2(GPU) free."""
    g = Graph()
    k1, k2, c = gpu_op("k1"), gpu_op("k2"), cpu_op("c")
    g.add_edge(k1, c)
    g.add_vertex(k2)
    p = Program(graph=g.with_start_end(), n_ranks=1)
    return DesignSpace(p, n_streams=n_streams)


def gpu_chain_space(n_streams=2):
    """a(GPU) -> b(GPU): exercises cross-stream CSWE insertion."""
    g = Graph()
    a, b = gpu_op("a"), gpu_op("b")
    g.add_edge(a, b)
    p = Program(graph=g.with_start_end(), n_ranks=1)
    return DesignSpace(p, n_streams=n_streams)


class TestEnumeration:
    def test_every_schedule_contains_sync_chain(self):
        space = simple_space()
        for s in space.enumerate_schedules():
            names = s.op_names()
            assert "CER-after-k1" in names
            assert "CES-b4-c" in names
            space.validate_schedule(s)

    def test_count_matches_enumeration(self, spmv_space):
        assert spmv_space.count() == len(
            list(spmv_space.enumerate_schedules())
        )

    def test_spmv_space_size(self, spmv_space):
        assert spmv_space.count() == 540

    def test_all_schedules_distinct(self, spmv_schedules):
        assert len(set(spmv_schedules)) == len(spmv_schedules)

    def test_all_schedules_canonical(self, spmv_schedules):
        for s in spmv_schedules[::17]:
            assert s.is_canonical()

    def test_one_stream_smaller_space(self, spmv_instance):
        one = DesignSpace(spmv_instance.program, n_streams=1)
        assert one.count() == 135  # 540 / 4 stream assignments

    def test_three_streams_bigger_space(self, spmv_instance):
        three = DesignSpace(spmv_instance.program, n_streams=3)
        # 3 GPU ops on up to 3 streams: 5 canonical assignments
        # (Bell-ish: 000,001,010,011,012), orderings unchanged.
        assert three.count() == 135 * 5


class TestCrossStreamSync:
    def test_same_stream_needs_no_wait(self):
        space = gpu_chain_space()
        same = [
            s
            for s in space.enumerate_schedules()
            if s.stream_of("a") == s.stream_of("b")
        ]
        for s in same:
            assert not any("CSWE" in n for n in s.op_names())

    def test_cross_stream_inserts_cer_and_cswe(self):
        space = gpu_chain_space()
        cross = [
            s
            for s in space.enumerate_schedules()
            if s.stream_of("a") != s.stream_of("b")
        ]
        assert cross  # space must include cross-stream bindings
        for s in cross:
            names = s.op_names()
            assert "CER-after-a" in names
            assert "CSWE-b-waits-a" in names
            space.validate_schedule(s)

    def test_cswe_bound_to_consumer_stream(self):
        space = gpu_chain_space()
        for s in space.enumerate_schedules():
            if s.stream_of("a") != s.stream_of("b"):
                w = s.ops[s.position("CSWE-b-waits-a")]
                assert w.stream == s.stream_of("b")


class TestRandomSampling:
    def test_samples_are_valid(self, spmv_space, rng):
        for _ in range(25):
            s = spmv_space.random_schedule(rng)
            spmv_space.validate_schedule(s)

    def test_sampling_eventually_covers_small_space(self):
        space = gpu_chain_space()
        total = space.count()
        rng = np.random.default_rng(0)
        seen = {space.random_schedule(rng) for _ in range(400)}
        assert len(seen) == total

    def test_deterministic_for_seed(self, spmv_space):
        a = spmv_space.random_schedule(np.random.default_rng(5))
        b = spmv_space.random_schedule(np.random.default_rng(5))
        assert a == b


class TestValidation:
    def test_missing_op_rejected(self, spmv_space, spmv_schedules):
        from repro.schedule.schedule import Schedule

        broken = Schedule(spmv_schedules[0].ops[:-1])
        with pytest.raises(ScheduleError, match="missing op"):
            spmv_space.validate_schedule(broken)

    def test_dependency_violation_rejected(self, spmv_space, spmv_schedules):
        from repro.schedule.schedule import Schedule

        s = spmv_schedules[0]
        ops = list(s.ops)
        i = s.position("PostSends")
        j = s.position("WaitSend")
        ops[i], ops[j] = ops[j], ops[i]
        with pytest.raises(ScheduleError):
            spmv_space.validate_schedule(Schedule(ops))

    def test_stream_out_of_range_rejected(self, spmv_space, spmv_schedules):
        from repro.schedule.schedule import BoundOp, Schedule

        ops = [
            BoundOp(op.vertex, stream=5, event=op.event)
            if op.kind is OpKind.GPU
            else op
            for op in spmv_schedules[0].ops
        ]
        with pytest.raises(ScheduleError, match="out of range"):
            spmv_space.validate_schedule(Schedule(ops))

    def test_all_op_names_vocabulary(self, spmv_space):
        names = spmv_space.all_op_names()
        assert "Pack" in names
        assert "CER-after-Pack" in names
        assert "CES-b4-PostSends" in names
        assert len(names) == 9
