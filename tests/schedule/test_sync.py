"""Tests for Table III synchronization-insertion analysis."""

from repro.dag.graph import Graph
from repro.dag.vertex import cpu_op, gpu_op
from repro.schedule.sync import (
    build_sync_plan,
    cer_name,
    ces_name,
    cswe_name,
    event_name,
)


class TestNames:
    def test_paper_names(self):
        """The generated names match the paper's examples."""
        assert cer_name("Pack") == "CER-after-Pack"
        assert ces_name("Pack", "PostSend", ambiguous=False) == "CES-b4-PostSend"
        assert (
            ces_name("Pack", "PostSend", ambiguous=True)
            == "CES-b4-PostSend-after-Pack"
        )
        assert cswe_name("a", "b") == "CSWE-b-waits-a"
        assert event_name("Pack") == "ev-Pack"


class TestPlanAnalysis:
    def test_gpu_to_cpu_edge_needs_cer_ces(self):
        g = Graph()
        g.add_edge(gpu_op("k"), cpu_op("c"))
        plan = build_sync_plan(g.with_start_end())
        assert plan.cer_sources == {"k"}
        assert plan.ces_edges == (("k", "c"),)
        assert plan.ces_name_of[("k", "c")] == "CES-b4-c"
        assert plan.n_sync_ops_min() == 2

    def test_cpu_to_gpu_edge_needs_nothing(self):
        g = Graph()
        g.add_edge(cpu_op("c"), gpu_op("k"))
        plan = build_sync_plan(g.with_start_end())
        assert not plan.cer_sources
        assert not plan.ces_edges

    def test_gpu_to_gpu_edge_recorded(self):
        g = Graph()
        g.add_edge(gpu_op("a"), gpu_op("b"))
        plan = build_sync_plan(g.with_start_end())
        assert plan.gpu_gpu_edges == (("a", "b"),)
        assert not plan.ces_edges  # CSWE is inserted at bind time

    def test_edges_into_end_excluded(self):
        """end is a device synchronize; GPU -> end needs no CER/CES."""
        g = Graph()
        g.add_vertex(gpu_op("k"))
        plan = build_sync_plan(g.with_start_end())
        assert not plan.cer_sources
        assert not plan.ces_edges

    def test_multiple_gpu_preds_disambiguated(self):
        g = Graph()
        c = cpu_op("c")
        g.add_edge(gpu_op("k1"), c)
        g.add_edge(gpu_op("k2"), c)
        plan = build_sync_plan(g.with_start_end())
        names = set(plan.ces_name_of.values())
        assert names == {"CES-b4-c-after-k1", "CES-b4-c-after-k2"}

    def test_spmv_plan_matches_paper(self, spmv_instance):
        plan = build_sync_plan(spmv_instance.program.graph)
        assert plan.cer_sources == {"Pack"}
        assert plan.ces_edges == (("Pack", "PostSends"),)
        assert plan.ces_name_of[("Pack", "PostSends")] == "CES-b4-PostSends"
