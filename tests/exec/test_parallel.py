"""Serial-vs-parallel equivalence and worker-pool behaviour.

The central contract (see :mod:`repro.exec`): for every search strategy,
evaluating through a worker pool yields *bit-identical* results to the
serial reference, because a measurement is a pure function of
(schedule, context) — schedules are deterministically "seeded" by content.
"""

import pytest

from repro.dag.graph import Graph
from repro.dag.program import CommPlan, Message, Program
from repro.dag.vertex import Action, ActionKind, cpu_op
from repro.errors import ScheduleError
from repro.exec import MeasurementCache, ParallelEvaluator, SerialEvaluator
from repro.platform.machine import MachineConfig
from repro.schedule.schedule import BoundOp, Schedule
from repro.search import (
    BeamSearch,
    ExhaustiveSearch,
    MctsConfig,
    MctsSearch,
    RandomSearch,
)
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig

CFG = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="module")
def par_ev(spmv_instance, machine):
    """One shared 2-worker pool for the equivalence tests."""
    ev = ParallelEvaluator(spmv_instance.program, machine, CFG, n_workers=2)
    yield ev
    ev.close()


@pytest.fixture()
def serial_ev(spmv_instance, machine):
    return SerialEvaluator(
        Benchmarker(ScheduleExecutor(spmv_instance.program, machine), CFG)
    )


def assert_same_result(a, b):
    assert a.n_iterations == b.n_iterations
    assert len(a) == len(b)
    for sa, sb in zip(a.samples, b.samples):
        assert sa.schedule == sb.schedule
        assert sa.time == sb.time


class TestBatchSemantics:
    def test_batch_identical_to_serial(self, serial_ev, par_ev, spmv_schedules):
        batch = spmv_schedules[:30]
        assert par_ev.evaluate_batch(batch) == serial_ev.evaluate_batch(batch)

    def test_order_and_duplicates(self, par_ev, spmv_schedules):
        s0, s1 = spmv_schedules[0], spmv_schedules[1]
        m0, m1, m0b = par_ev.evaluate_batch([s0, s1, s0])
        assert m0 == m0b
        assert par_ev.evaluate_batch([s1, s0]) == [m1, m0]

    def test_memo_counts_unique(self, spmv_instance, machine, spmv_schedules):
        with ParallelEvaluator(spmv_instance.program, machine, CFG, n_workers=2) as ev:
            ev.evaluate_batch(spmv_schedules[:5] + spmv_schedules[:5])
            assert ev.n_unique_schedules == 5
            assert ev.n_simulations == 5

    def test_rejects_bad_worker_count(self, spmv_instance, machine):
        with pytest.raises(ValueError):
            ParallelEvaluator(spmv_instance.program, machine, CFG, n_workers=0)


class TestStrategyEquivalence:
    """Measurements identical to serial for all four strategies."""

    def test_exhaustive(self, spmv_space, serial_ev, par_ev):
        a = ExhaustiveSearch(spmv_space, serial_ev, batch_size=16).run(48)
        b = ExhaustiveSearch(spmv_space, par_ev, batch_size=16).run(48)
        assert_same_result(a, b)

    def test_random(self, spmv_space, serial_ev, par_ev):
        a = RandomSearch(spmv_space, serial_ev, seed=5, batch_size=8).run(24)
        b = RandomSearch(spmv_space, par_ev, seed=5, batch_size=8).run(24)
        assert_same_result(a, b)

    def test_beam(self, spmv_space, serial_ev, par_ev):
        a = BeamSearch(
            spmv_space, serial_ev, width=3, rollouts_per_candidate=2, seed=1
        ).run(30)
        b = BeamSearch(
            spmv_space, par_ev, width=3, rollouts_per_candidate=2, seed=1
        ).run(30)
        assert_same_result(a, b)

    def test_mcts_serial_protocol(self, spmv_space, serial_ev, par_ev):
        a = MctsSearch(spmv_space, serial_ev, MctsConfig(seed=3)).run(25)
        b = MctsSearch(spmv_space, par_ev, MctsConfig(seed=3)).run(25)
        assert_same_result(a, b)

    def test_mcts_leaf_parallel(self, spmv_space, serial_ev, par_ev):
        cfg = MctsConfig(seed=3, rollout_batch=4)
        a = MctsSearch(spmv_space, serial_ev, cfg).run(24)
        b = MctsSearch(spmv_space, par_ev, cfg).run(24)
        assert_same_result(a, b)


class TestMctsRolloutBatch:
    def test_batch_of_one_matches_default(self, spmv_space, spmv_instance, machine):
        def run(cfg):
            ev = SerialEvaluator(
                Benchmarker(ScheduleExecutor(spmv_instance.program, machine), CFG)
            )
            return MctsSearch(spmv_space, ev, cfg).run(20)

        assert_same_result(
            run(MctsConfig(seed=9)),
            run(MctsConfig(seed=9, rollout_batch=1)),
        )

    def test_iteration_budget_respected(self, spmv_space, serial_ev):
        result = MctsSearch(
            spmv_space, serial_ev, MctsConfig(seed=2, rollout_batch=7)
        ).run(16)
        assert result.n_iterations == 16
        assert len(result) == 16

    def test_rejects_bad_rollout_batch(self):
        with pytest.raises(ValueError):
            MctsConfig(rollout_batch=0)


class TestParallelWithCache:
    def test_cache_round_trip_and_reuse(
        self, spmv_instance, machine, spmv_schedules, tmp_path
    ):
        path = str(tmp_path / "m.sqlite")
        batch = spmv_schedules[:12]
        with ParallelEvaluator(
            spmv_instance.program,
            machine,
            CFG,
            n_workers=2,
            cache=MeasurementCache(path),
        ) as warm:
            first = warm.evaluate_batch(batch)
        with ParallelEvaluator(
            spmv_instance.program,
            machine,
            CFG,
            n_workers=2,
            cache=MeasurementCache(path),
        ) as cold:
            # Every measurement comes from disk: no pool, no simulations.
            assert cold.evaluate_batch(batch) == first
            assert cold.n_simulations == 0
            assert cold._pool is None

    def test_serial_and_parallel_share_cache(
        self, spmv_instance, machine, spmv_schedules, tmp_path
    ):
        path = str(tmp_path / "m.sqlite")
        batch = spmv_schedules[:8]
        serial = SerialEvaluator(
            Benchmarker(ScheduleExecutor(spmv_instance.program, machine), CFG),
            cache=MeasurementCache(path),
        )
        warm = serial.evaluate_batch(batch)
        with ParallelEvaluator(
            spmv_instance.program,
            machine,
            CFG,
            n_workers=2,
            cache=MeasurementCache(path),
        ) as par:
            assert par.evaluate_batch(batch) == warm
            assert par.n_simulations == 0


class TestWorkerCrashPropagation:
    def test_schedule_error_reaches_parent(self):
        """A failing simulation inside a worker surfaces as the original
        library exception in the submitting process."""
        post = cpu_op(
            "post",
            action=Action(ActionKind.POST_SENDS, "g"),
            duration=0.0,
        )
        wait = cpu_op(
            "wait",
            action=Action(ActionKind.WAIT_SENDS, "g"),
            duration=0.0,
        )
        g = Graph()
        g.add_edge(post, wait)
        program = Program(
            graph=g.with_start_end(),
            n_ranks=2,
            comm={
                "g": CommPlan(
                    group="g",
                    messages=(Message(src=0, dst=1, nbytes=8.0),),
                ),
            },
        )
        machine = MachineConfig(n_ranks=2, n_streams=1)
        bad = Schedule([BoundOp(wait), BoundOp(post)])  # wait before post
        with ParallelEvaluator(program, machine, CFG, n_workers=2) as ev:
            with pytest.raises(ScheduleError):
                ev.evaluate_batch([bad])
