"""Tests for the Evaluator interface and the serial backend."""

import pytest

from repro.exec import MeasurementCache, SerialEvaluator, as_evaluator
from repro.exec.evaluator import Evaluator
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, MeasurementConfig


@pytest.fixture()
def bench(spmv_instance, machine):
    return Benchmarker(
        ScheduleExecutor(spmv_instance.program, machine),
        MeasurementConfig(max_samples=1),
    )


class TestSerialEvaluator:
    def test_matches_benchmarker(self, bench, spmv_schedules):
        ev = SerialEvaluator(bench)
        batch = spmv_schedules[:10]
        results = ev.evaluate_batch(batch)
        reference = Benchmarker(bench.executor, bench.config)
        assert results == [reference.measure(s) for s in batch]

    def test_results_align_with_input_order(self, bench, spmv_schedules):
        ev = SerialEvaluator(bench)
        batch = list(reversed(spmv_schedules[:8]))
        results = ev.evaluate_batch(batch)
        for s, m in zip(batch, results):
            assert m == bench.measure(s)

    def test_duplicates_in_batch(self, bench, spmv_schedules):
        ev = SerialEvaluator(bench)
        s = spmv_schedules[0]
        r1, r2 = ev.evaluate_batch([s, s])
        assert r1 == r2
        assert ev.n_simulations == 1

    def test_evaluate_and_time_of(self, bench, spmv_schedules):
        ev = SerialEvaluator(bench)
        s = spmv_schedules[2]
        assert ev.time_of(s) == ev.evaluate(s).time
        assert ev.times_of([s]) == [ev.evaluate(s).time]

    def test_n_simulations_tracks_benchmarker(self, bench, spmv_schedules):
        ev = SerialEvaluator(bench)
        ev.evaluate_batch(spmv_schedules[:5])
        assert ev.n_simulations == bench.n_simulations == 5


class TestSerialEvaluatorWithCache:
    def test_populates_disk_cache(self, bench, spmv_schedules, tmp_path):
        cache = MeasurementCache(str(tmp_path / "m.sqlite"))
        ev = SerialEvaluator(bench, cache=cache)
        ev.evaluate_batch(spmv_schedules[:6])
        assert len(cache) == 6

    def test_second_run_simulates_nothing(
        self, spmv_instance, machine, spmv_schedules, tmp_path
    ):
        path = str(tmp_path / "m.sqlite")
        cfg = MeasurementConfig(max_samples=1)

        def fresh():
            return Benchmarker(ScheduleExecutor(spmv_instance.program, machine), cfg)

        first = SerialEvaluator(fresh(), cache=MeasurementCache(path))
        warm = first.evaluate_batch(spmv_schedules[:6])
        second = SerialEvaluator(fresh(), cache=MeasurementCache(path))
        cold = second.evaluate_batch(spmv_schedules[:6])
        assert cold == warm
        assert second.n_simulations == 0

    def test_config_change_invalidates(
        self, spmv_instance, machine, spmv_schedules, tmp_path
    ):
        path = str(tmp_path / "m.sqlite")
        a = SerialEvaluator(
            Benchmarker(
                ScheduleExecutor(spmv_instance.program, machine),
                MeasurementConfig(max_samples=1),
            ),
            cache=MeasurementCache(path),
        )
        a.evaluate_batch(spmv_schedules[:4])
        b = SerialEvaluator(
            Benchmarker(
                ScheduleExecutor(spmv_instance.program, machine),
                MeasurementConfig(max_samples=2),
            ),
            cache=MeasurementCache(path),
        )
        b.evaluate_batch(spmv_schedules[:4])
        # Different measurement config => different context => re-simulated.
        assert b.n_simulations > 0


class TestAsEvaluator:
    def test_wraps_benchmarker(self, bench):
        ev = as_evaluator(bench)
        assert isinstance(ev, SerialEvaluator)
        assert ev.benchmarker is bench

    def test_passes_through_evaluator(self, bench):
        ev = SerialEvaluator(bench)
        assert as_evaluator(ev) is ev

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_evaluator(object())

    def test_interface_is_abstract(self):
        with pytest.raises(TypeError):
            Evaluator()


class TestEvaluateBlocks:
    def test_streamed_blocks_match_batched(self, bench, spmv_schedules):
        ev = SerialEvaluator(bench)
        schedules = spmv_schedules[:20]
        blocks = [schedules[i : i + 6] for i in range(0, len(schedules), 6)]
        streamed = [m for ms in ev.evaluate_blocks(blocks) for m in ms]
        reference = SerialEvaluator(
            Benchmarker(bench.executor, bench.config)
        ).evaluate_batch(schedules)
        assert streamed == reference

    def test_lazy_one_block_at_a_time(self, bench, spmv_schedules):
        """The generator must not pre-consume the block stream."""
        ev = SerialEvaluator(bench)
        consumed = []

        def blocks():
            for i in range(3):
                consumed.append(i)
                yield spmv_schedules[4 * i : 4 * i + 4]

        it = ev.evaluate_blocks(blocks())
        assert consumed == []
        next(it)
        assert consumed == [0]
        next(it)
        assert consumed == [0, 1]
