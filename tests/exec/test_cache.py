"""Tests for fingerprints and the persistent measurement cache."""

import dataclasses

from repro.exec.cache import MeasurementCache, context_fingerprint, program_fingerprint
from repro.platform.noise import NoiseModel
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, Measurement, MeasurementConfig


class TestScheduleFingerprint:
    def test_equal_schedules_share_fingerprint(self, spmv_schedules):
        import pickle

        a = spmv_schedules[0]
        b = pickle.loads(pickle.dumps(a))  # distinct object, equal value
        assert a is not b and a == b
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_schedules_differ(self, spmv_schedules):
        fps = {s.fingerprint() for s in spmv_schedules[:50]}
        assert len(fps) == 50

    def test_fingerprint_is_hex_sha256(self, spmv_schedules):
        fp = spmv_schedules[0].fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # parses as hex


class TestContextFingerprint:
    def test_stable_across_calls(self, spmv_instance, machine):
        cfg = MeasurementConfig(max_samples=1)
        a = context_fingerprint(spmv_instance.program, machine, cfg)
        b = context_fingerprint(spmv_instance.program, machine, cfg)
        assert a == b

    def test_changes_with_measurement_config(self, spmv_instance, machine):
        a = context_fingerprint(
            spmv_instance.program, machine, MeasurementConfig(max_samples=1)
        )
        b = context_fingerprint(
            spmv_instance.program, machine, MeasurementConfig(max_samples=2)
        )
        assert a != b

    def test_changes_with_noise_seed(self, spmv_instance, machine):
        cfg = MeasurementConfig()
        noisy = machine.with_noise(NoiseModel(sigma=0.01, seed=7))
        noisy2 = machine.with_noise(NoiseModel(sigma=0.01, seed=8))
        fps = {
            context_fingerprint(spmv_instance.program, m, cfg)
            for m in (machine, noisy, noisy2)
        }
        assert len(fps) == 3

    def test_changes_with_sample_offset(self, spmv_instance, machine):
        cfg = MeasurementConfig()
        a = context_fingerprint(spmv_instance.program, machine, cfg, 0)
        b = context_fingerprint(spmv_instance.program, machine, cfg, 1)
        assert a != b

    def test_changes_with_program(self, spmv_instance, machine):
        other = dataclasses.replace(spmv_instance.program, name="renamed")
        cfg = MeasurementConfig()
        fp_a = context_fingerprint(spmv_instance.program, machine, cfg)
        fp_b = context_fingerprint(other, machine, cfg)
        assert fp_a != fp_b

    def test_program_fingerprint_ignores_payloads(self, spmv_instance):
        fp = program_fingerprint(spmv_instance.program)
        stripped = dataclasses.replace(spmv_instance.program, payloads={})
        assert program_fingerprint(stripped) == fp


class TestMeasurementCache:
    def test_round_trip(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "m.sqlite"))
        m = Measurement(time=1.5, n_samples=3, per_rank_time=(1.5, 1.0))
        cache.put("ctx", "fp", m)
        assert cache.get("ctx", "fp") == m
        assert len(cache) == 1
        cache.close()

    def test_miss_returns_none(self, tmp_path):
        with MeasurementCache(str(tmp_path / "m.sqlite")) as cache:
            assert cache.get("ctx", "nope") is None

    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "m.sqlite")
        m = Measurement(time=2.0, n_samples=1, per_rank_time=(2.0,))
        with MeasurementCache(path) as cache:
            cache.put("ctx", "fp", m)
        with MeasurementCache(path) as cache:
            assert cache.get("ctx", "fp") == m

    def test_context_isolation(self, tmp_path):
        """Entries written under one context never satisfy another —
        i.e. changing any measurement input invalidates the cache."""
        with MeasurementCache(str(tmp_path / "m.sqlite")) as cache:
            m = Measurement(time=1.0, n_samples=1, per_rank_time=(1.0,))
            cache.put("ctx-a", "fp", m)
            assert cache.get("ctx-b", "fp") is None
            assert cache.n_contexts() == 1

    def test_get_many_and_put_many(self, tmp_path):
        with MeasurementCache(str(tmp_path / "m.sqlite")) as cache:
            entries = [
                (f"fp{i}", Measurement(float(i), 1, (float(i),))) for i in range(5)
            ]
            cache.put_many("ctx", entries)
            hits = cache.get_many("ctx", ["fp1", "fp3", "fp9"])
            assert set(hits) == {"fp1", "fp3"}
            assert hits["fp3"].time == 3.0

    def test_clear(self, tmp_path):
        with MeasurementCache(str(tmp_path / "m.sqlite")) as cache:
            cache.put("c", "f", Measurement(1.0, 1, (1.0,)))
            cache.clear()
            assert len(cache) == 0


class TestBenchmarkerMemoKeying:
    def test_memo_hits_across_equal_objects(
        self, spmv_instance, machine, spmv_schedules
    ):
        """The memo keys by canonical fingerprint, not object identity:
        an equal-but-distinct Schedule object must hit."""
        import pickle

        bench = Benchmarker(
            ScheduleExecutor(spmv_instance.program, machine),
            MeasurementConfig(max_samples=1),
        )
        first = bench.measure(spmv_schedules[0])
        clone = pickle.loads(pickle.dumps(spmv_schedules[0]))
        sims = bench.n_simulations
        assert bench.measure(clone) == first
        assert bench.n_simulations == sims
        assert bench.n_unique_schedules == 1

    def test_cached_and_seed_cache(self, spmv_instance, machine, spmv_schedules):
        bench = Benchmarker(
            ScheduleExecutor(spmv_instance.program, machine),
            MeasurementConfig(max_samples=1),
        )
        s = spmv_schedules[1]
        assert bench.cached(s) is None
        m = Measurement(time=0.5, n_samples=1, per_rank_time=(0.5,))
        bench.seed_cache(s, m)
        assert bench.cached(s) == m
        assert bench.measure(s) == m  # no simulation happened
        assert bench.n_simulations == 0


def _contend_writer(path, context, writer_id, n_rounds, n_per_round):
    """Hammer one shared cache file with batch writes from this process."""
    cache = MeasurementCache(path)
    try:
        for r in range(n_rounds):
            entries = [
                (
                    f"w{writer_id}-r{r}-{i}",
                    Measurement(
                        time=float(writer_id + 1),
                        n_samples=1,
                        per_rank_time=(float(writer_id + 1),),
                    ),
                )
                for i in range(n_per_round)
            ]
            cache.put_many(context, entries)
            # Interleave reads with the other writers' commits.
            cache.get_many(context, [fp for fp, _ in entries])
    finally:
        cache.close()
    return writer_id


class TestConcurrentWriters:
    """Regression test for shard-concurrent cache access: multiple
    processes writing one cache file must neither raise ``database is
    locked`` nor lose entries (WAL + busy timeout + write retry)."""

    def test_wal_enabled_for_file_backed_cache(self, tmp_path):
        with MeasurementCache(str(tmp_path / "wal.sqlite")) as cache:
            # Some filesystems refuse WAL; everywhere CI runs it works.
            assert cache.journal_mode == "wal"

    def test_memory_cache_skips_wal(self):
        with MeasurementCache(":memory:") as cache:
            assert cache.journal_mode == "memory"

    def test_concurrent_shard_writers(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        path = str(tmp_path / "contended.sqlite")
        n_writers, n_rounds, n_per_round = 4, 5, 40
        with ProcessPoolExecutor(max_workers=n_writers) as pool:
            futures = [
                pool.submit(_contend_writer, path, "ctx", w, n_rounds, n_per_round)
                for w in range(n_writers)
            ]
            done = [f.result() for f in futures]
        assert sorted(done) == list(range(n_writers))
        with MeasurementCache(path) as cache:
            assert len(cache) == n_writers * n_rounds * n_per_round
            # Spot-check values landed intact per writer.
            for w in range(n_writers):
                m = cache.get("ctx", f"w{w}-r0-0")
                assert m is not None and m.time == float(w + 1)
