"""Evaluator-level contracts of the ``sim_backend`` knob.

Covers the warm-start guarantee (one compile per worker process, never
per task), the backend-keyed in-memory memo (mixed-backend sessions can
never alias), measurement-config validation, and parallel batch-vs-
reference bit-identity.
"""

import numpy as np
import pytest

from repro.exec import ParallelEvaluator, SerialEvaluator
from repro.exec.parallel import _worker_compile_stats
from repro.platform import noiseless, perlmutter_like
from repro.schedule.space import DesignSpace
from repro.sim.executor import ScheduleExecutor
from repro.sim.measure import Benchmarker, Measurement, MeasurementConfig
from repro.workloads import WorkloadSpec, build_workload

CFG = MeasurementConfig(max_samples=1)


@pytest.fixture(scope="module")
def layered():
    program = build_workload(
        WorkloadSpec("layered_random", {"layers": 3, "width": 2, "edge_p": 0.5})
    )
    machine = noiseless(perlmutter_like()).with_ranks(program.n_ranks)
    return program, machine


def _random_schedules(program, n, seed=11):
    space = DesignSpace(program, n_streams=2)
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < n:
        s = space.random_schedule(rng)
        if s is not None:
            out.append(s)
    return out


def test_worker_compiles_once_not_per_task(layered):
    """Regression: the compiled context is built in the pool initializer —
    compile count stays one per worker however many tasks are dispatched."""
    program, machine = layered
    with ParallelEvaluator(
        program,
        machine,
        CFG,
        n_workers=2,
        sim_backend="batch",
        chunksize=1,  # many tiny tasks: per-task compiles would show up
    ) as ev:
        for seed in range(3):
            ev.evaluate_batch(_random_schedules(program, 8, seed=seed))
        pool = ev._ensure_pool()
        stats = set(pool.map(_worker_compile_stats, range(32), chunksize=1))
    per_pid = dict(stats)
    assert len(per_pid) == len(stats), "a worker recompiled between tasks"
    assert set(per_pid.values()) == {1}


def test_parallel_batch_bit_identical_to_serial_reference(layered):
    program, machine = layered
    cfg = MeasurementConfig(max_samples=2)
    noisy = perlmutter_like(noise_sigma=0.01).with_ranks(program.n_ranks)
    schedules = _random_schedules(program, 24)
    serial = SerialEvaluator(
        Benchmarker(ScheduleExecutor(program, noisy), cfg),
        sim_backend="reference",
    )
    ref = serial.evaluate_batch(schedules)
    with ParallelEvaluator(
        program, noisy, cfg, n_workers=2, sim_backend="auto"
    ) as ev:
        assert ev.sim_backend == "batch"
        assert ev.evaluate_batch(schedules) == ref
        assert ev.n_simulations == serial.n_simulations


def test_memo_is_backend_keyed(layered):
    """Mixed-backend sessions must never alias memo entries."""
    program, machine = layered
    bench = Benchmarker(ScheduleExecutor(program, machine), CFG)
    (s,) = _random_schedules(program, 1)
    m_ref = bench.measure(s)
    assert bench.cached(s) == m_ref
    assert bench.cached(s, backend="batch") is None
    fake = Measurement(time=1.0, n_samples=1, per_rank_time=(1.0,))
    bench.seed_cache(s, fake, backend="batch")
    assert bench.cached(s) == m_ref  # reference entry untouched
    assert bench.cached(s, backend="batch") == fake
    assert bench.measure(s, backend="batch") == fake


def test_measurement_config_rejects_nonpositive_target():
    with pytest.raises(ValueError, match="target_time_s"):
        MeasurementConfig(target_time_s=0.0)
    with pytest.raises(ValueError, match="target_time_s"):
        MeasurementConfig(target_time_s=-1.0)
    assert MeasurementConfig(target_time_s=1e-9).target_time_s == 1e-9
