"""Tests for cross-workload rule scoring (repro.rules.score)."""

from repro.dag.vertex import cpu_op, gpu_op
from repro.ml.features import OrderFeature, StreamFeature
from repro.rules.ruleset import Rule, RuleSet
from repro.rules.score import (
    class_rules,
    op_role,
    rule_satisfied,
    rule_transfers,
    score_rules,
    transfer_summary,
)
from repro.schedule.schedule import BoundOp, Schedule


def _sched(*ops):
    return Schedule(ops)


def _gpu(name, stream):
    return BoundOp(vertex=gpu_op(name), stream=stream)


def _cpu(name):
    return BoundOp(vertex=cpu_op(name))


SCHED = _sched(
    _gpu("Pack_x", 0),
    _cpu("PostSends_x"),
    _gpu("Unpack_x", 1),
    _cpu("WaitRecv_x"),
)


class TestOpRole:
    def test_plain_names_unchanged(self):
        assert op_role("Pack") == "Pack"
        assert op_role("yL") == "yL"

    def test_axis_and_index_qualifiers_stripped(self):
        assert op_role("Pack_x") == "Pack"
        assert op_role("PostSends_0") == "PostSends"
        assert op_role("T1_2") == "T1"

    def test_sync_ops_normalized_recursively(self):
        assert op_role("CER-after-Pack_x") == "CER-after-Pack"
        assert op_role("CES-b4-PostSends_0") == "CES-b4-PostSends"
        assert (
            op_role("CES-b4-Join0-after-S0B0_0") == "CES-b4-Join0-after-S0B0"
        )
        assert op_role("CSWE-Boundary-waits-Unpack_x") == (
            "CSWE-Boundary-waits-Unpack"
        )


class TestRuleSatisfied:
    def test_exact_order_rule(self):
        rule = Rule(OrderFeature("Pack_x", "PostSends_x"), True)
        assert rule_satisfied(rule, SCHED) is True
        assert rule_satisfied(rule.negated(), SCHED) is False

    def test_exact_missing_op_is_none(self):
        rule = Rule(OrderFeature("Pack_y", "PostSends_x"), True)
        assert rule_satisfied(rule, SCHED) is None
        assert not rule_transfers(rule, SCHED)

    def test_role_order_rule_transfers(self):
        # learned on SpMV (bare names), scored on the halo-style schedule
        rule = Rule(OrderFeature("Pack", "PostSends"), True)
        assert rule_satisfied(rule, SCHED) is None  # exact: no bare 'Pack'
        assert rule_satisfied(rule, SCHED, by_role=True) is True

    def test_role_stream_rule(self):
        rule = Rule(StreamFeature("Pack", "Unpack"), True)
        assert rule_satisfied(rule, SCHED, by_role=True) is False
        assert rule_satisfied(rule.negated(), SCHED, by_role=True) is True

    def test_role_universal_quantification(self):
        two_axis = _sched(
            _gpu("Pack_x", 0),
            _gpu("Pack_y", 0),
            _cpu("PostSends_x"),
            _cpu("PostSends_y"),
        )
        rule = Rule(OrderFeature("Pack", "PostSends"), True)
        assert rule_satisfied(rule, two_axis, by_role=True) is True
        mixed = _sched(
            _gpu("Pack_x", 0),
            _cpu("PostSends_x"),
            _gpu("Pack_y", 0),
            _cpu("PostSends_y"),
        )
        # Pack_y launches after PostSends_x ⇒ not *every* pair ordered
        assert rule_satisfied(rule, mixed, by_role=True) is False

    def test_identical_roles_do_not_self_match(self):
        rule = Rule(OrderFeature("Pack_x", "Pack_y"), True)
        assert rule_satisfied(rule, SCHED, by_role=True) is None


class TestScoring:
    def test_score_rules_counts(self):
        rules = [
            Rule(OrderFeature("Pack", "PostSends"), True),
            Rule(OrderFeature("nope", "PostSends"), True),
        ]
        scores = score_rules(rules, [SCHED, SCHED], by_role=True)
        by_text = {s.rule.text: s for s in scores}
        hit = by_text["Pack before PostSends"]
        assert (hit.n_transferred, hit.n_satisfied) == (2, 2)
        assert hit.satisfaction == 1.0
        miss = by_text["nope before PostSends"]
        assert (miss.n_transferred, miss.satisfaction) == (0, 0.0)

    def test_transfer_summary(self):
        rules = [
            Rule(OrderFeature("Pack", "PostSends"), True),
            Rule(OrderFeature("nope", "PostSends"), True),
        ]
        scores = score_rules(rules, [SCHED], by_role=True)
        n_rules, n_transferable, sat = transfer_summary(scores)
        assert (n_rules, n_transferable, sat) == (2, 1, 1.0)

    def test_transfer_summary_empty(self):
        assert transfer_summary([]) == (0, 0, 0.0)

    def test_class_rules_dedup(self):
        r1 = Rule(OrderFeature("a", "b"), True)
        r2 = Rule(OrderFeature("b", "c"), True)
        rs0 = RuleSet(rules=frozenset({r1, r2}), predicted_class=0)
        rs0b = RuleSet(rules=frozenset({r1}), predicted_class=0, leaf_id=1)
        rs1 = RuleSet(rules=frozenset({r2}), predicted_class=1)
        rules = class_rules([rs0, rs0b, rs1], 0)
        assert set(rules) == {r1, r2}
        assert class_rules([rs0, rs1], 1) == [r2]


class TestDegenerateCases:
    """Empty rulesets, empty schedule sets, and zero-match roles must
    yield well-defined results — never a division by zero, never a rule
    silently counted as passing."""

    def test_empty_ruleset_scores_empty(self):
        assert score_rules([], [SCHED]) == []
        assert transfer_summary(score_rules([], [SCHED])) == (0, 0, 0.0)

    def test_empty_schedule_set_is_all_zero(self):
        rule = Rule(OrderFeature("Pack_x", "PostSends_x"), True)
        [score] = score_rules([rule], [])
        assert (score.n_transferred, score.n_satisfied) == (0, 0)
        assert score.satisfaction == 0.0  # no division by zero

    def test_zero_match_role_does_not_pass(self):
        rule = Rule(OrderFeature("nope", "PostSends"), True)
        assert rule_satisfied(rule, SCHED, by_role=True) is None
        [score] = score_rules([rule], [SCHED], by_role=True)
        assert score.n_transferred == 0
        assert score.n_satisfied == 0
        assert score.satisfaction == 0.0

    def test_roles_collapsing_to_same_key_do_not_pass(self):
        # Pack_x vs Pack_y both strip to 'Pack': universally quantified
        # over one group the constraint is meaningless, so it must be
        # "does not transfer", not "satisfied".
        rule = Rule(OrderFeature("Pack_x", "Pack_y"), True)
        [score] = score_rules([rule], [SCHED], by_role=True)
        assert score.n_transferred == 0

    def test_summary_with_no_transferable_rules(self):
        rules = [Rule(OrderFeature("nope", "PostSends"), True)]
        scores = score_rules(rules, [SCHED], by_role=True)
        assert transfer_summary(scores) == (1, 0, 0.0)


class TestMatcherMode:
    """A matcher (rule_key/op_key) overrides exact and role matching."""

    class _Upper:
        def rule_key(self, name):
            return name.upper()

        def op_key(self, name):
            return name.upper()

    def test_matcher_groups_by_key(self):
        rule = Rule(OrderFeature("pack_x", "postsends_x"), True)
        assert rule_satisfied(rule, SCHED) is None  # exact: no lowercase op
        assert rule_satisfied(rule, SCHED, matcher=self._Upper()) is True

    def test_matcher_none_key_drops_op(self):
        class OnlyPack:
            def rule_key(self, name):
                return name if name.startswith("Pack") else None

            def op_key(self, name):
                return name if name.startswith("Pack") else None

        rule = Rule(OrderFeature("Pack_x", "PostSends_x"), True)
        assert rule_satisfied(rule, SCHED, matcher=OnlyPack()) is None

    def test_score_rules_accepts_matcher(self):
        rule = Rule(OrderFeature("pack_x", "unpack_x"), True)
        [score] = score_rules([rule], [SCHED], matcher=self._Upper())
        assert (score.n_transferred, score.n_satisfied) == (1, 1)
