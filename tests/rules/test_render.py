"""Tests for rule rendering."""

from repro.ml.features import OrderFeature
from repro.rules.compare import Annotation, CompareResult
from repro.rules.render import (
    render_compare_cell,
    render_ruleset_table,
    render_rulesets,
)
from repro.rules.ruleset import Rule, RuleSet


F1 = OrderFeature("a", "b")
F2 = OrderFeature("b", "c")


def rs(rules, cls=0, n=10):
    return RuleSet(rules=frozenset(rules), predicted_class=cls, n_samples=n)


def test_render_rulesets_groups_by_class():
    out = render_rulesets(
        [rs([Rule(F1, True)], cls=0), rs([Rule(F2, False)], cls=1)],
        class_names={0: "fastest", 1: "slowest"},
    )
    assert "fastest" in out and "slowest" in out
    assert "a before b" in out
    assert "c before b" in out


def test_render_cell_marks_extras():
    result = CompareResult(
        ruleset=rs([Rule(F1, True), Rule(F2, True)]),
        annotation=Annotation.OVERCONSTRAINED,
        extra=(Rule(F2, True),),
    )
    lines = render_compare_cell(result)
    assert any("(+)" in line and "b before c" in line for line in lines)


def test_render_cell_marks_insufficient():
    result = CompareResult(
        ruleset=rs([Rule(F1, True)]),
        annotation=Annotation.UNDERCONSTRAINED,
        missing=(Rule(F2, True),),
    )
    lines = render_compare_cell(result)
    assert "insufficient rules" in lines
    assert any("missing" in line for line in lines)


def test_render_table_columns_aligned():
    col = [
        CompareResult(
            ruleset=rs([Rule(F1, True)]), annotation=Annotation.EXACT
        )
    ]
    out = render_ruleset_table({"50": col, "100": col}, title="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # rectangular table
    assert "| 50" in out and "| 100" in out


def test_render_table_empty_column():
    out = render_ruleset_table({"50": []})
    assert "(none)" in out
