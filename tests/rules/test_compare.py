"""Tests for ruleset comparison / annotation (paper §V)."""

import pytest

from repro.ml.features import OrderFeature, StreamFeature
from repro.rules.compare import (
    Annotation,
    compare_all,
    compare_rulesets,
    consistency_summary,
)
from repro.rules.ruleset import Rule, RuleSet


F1 = OrderFeature("a", "b")
F2 = OrderFeature("b", "c")
F3 = StreamFeature("a", "b")


def rs(rules, cls=0, n=10):
    return RuleSet(rules=frozenset(rules), predicted_class=cls, n_samples=n)


@pytest.fixture()
def canonical():
    return [
        rs([Rule(F1, True), Rule(F2, True)], cls=0, n=100),
        rs([Rule(F1, False)], cls=1, n=80),
    ]


class TestAnnotations:
    def test_exact(self, canonical):
        cand = rs([Rule(F1, True), Rule(F2, True)], cls=0)
        result = compare_rulesets(cand, canonical)
        assert result.annotation is Annotation.EXACT
        assert not result.extra and not result.missing

    def test_overconstrained(self, canonical):
        """Extra harmless rule -> blue in the paper's tables."""
        cand = rs([Rule(F1, True), Rule(F2, True), Rule(F3, True)], cls=0)
        result = compare_rulesets(cand, canonical)
        assert result.annotation is Annotation.OVERCONSTRAINED
        assert list(result.extra) == [Rule(F3, True)]
        assert result.is_consistent

    def test_underconstrained(self, canonical):
        """Missing constraints -> red 'insufficient rules'."""
        cand = rs([Rule(F1, True)], cls=0)
        result = compare_rulesets(cand, canonical)
        assert result.annotation is Annotation.UNDERCONSTRAINED
        assert Rule(F2, True) in result.missing
        assert not result.is_consistent

    def test_contradiction_reported(self, canonical):
        cand = rs([Rule(F1, True), Rule(F2, False)], cls=0)
        result = compare_rulesets(cand, canonical)
        assert result.annotation is Annotation.UNDERCONSTRAINED
        assert Rule(F2, False) in result.contradicting

    def test_no_canonical_class(self, canonical):
        cand = rs([Rule(F1, True)], cls=7)
        result = compare_rulesets(cand, canonical)
        assert result.annotation is Annotation.NO_CANONICAL

    def test_closest_prefers_max_overlap(self, canonical):
        cand = rs([Rule(F2, True)], cls=0)
        result = compare_rulesets(cand, canonical)
        assert result.closest is canonical[0]


class TestSummary:
    def test_counts(self, canonical):
        cands = [
            rs([Rule(F1, True), Rule(F2, True)], cls=0),
            rs([Rule(F1, True)], cls=0),
            rs([Rule(F1, False)], cls=1),
        ]
        results = compare_all(cands, canonical)
        summary = consistency_summary(results)
        assert summary["exact"] == 2
        assert summary["underconstrained"] == 1
        assert summary["overconstrained"] == 0


class TestFullSpaceSelfConsistency:
    def test_canonical_vs_itself_all_exact(self, spmv_exhaustive):
        from repro.ml.features import FeatureExtractor
        from repro.ml.labeling import label_by_performance
        from repro.ml.hyperparam import search_tree_size
        from repro.rules.extract import extract_rulesets

        lab = label_by_performance(spmv_exhaustive.times())
        fm = FeatureExtractor().fit_transform(spmv_exhaustive.schedules())
        tree, _ = search_tree_size(fm.matrix, lab.labels)
        rulesets = extract_rulesets(tree, fm.features)
        for result in compare_all(rulesets, rulesets):
            assert result.annotation is Annotation.EXACT
