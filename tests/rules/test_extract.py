"""Tests for rule extraction from fitted trees."""

import numpy as np
import pytest

from repro.ml.features import OrderFeature
from repro.ml.tree import DecisionTree, TreeConfig
from repro.rules.extract import extract_rulesets, rulesets_by_class
from repro.rules.ruleset import Rule


@pytest.fixture()
def fitted():
    features = [OrderFeature("a", "b"), OrderFeature("b", "c")]
    # class = x0 AND x1
    x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 5, dtype=np.uint8)
    y = (x[:, 0] & x[:, 1]).astype(int)
    tree = DecisionTree(TreeConfig(max_leaf_nodes=4)).fit(x, y)
    return tree, features


class TestExtraction:
    def test_one_ruleset_per_leaf(self, fitted):
        tree, features = fitted
        rulesets = extract_rulesets(tree, features)
        assert len(rulesets) == tree.n_leaves

    def test_rules_reference_feature_objects(self, fitted):
        tree, features = fitted
        for rs in extract_rulesets(tree, features):
            for rule in rs.rules:
                assert rule.feature in features

    def test_class1_ruleset_requires_both(self, fitted):
        tree, features = fitted
        rulesets = [
            rs
            for rs in extract_rulesets(tree, features)
            if rs.predicted_class == 1
        ]
        assert len(rulesets) == 1
        assert rulesets[0].rules == frozenset(
            [Rule(features[0], True), Rule(features[1], True)]
        )

    def test_sorted_by_samples(self, fitted):
        tree, features = fitted
        rulesets = extract_rulesets(tree, features)
        sizes = [rs.n_samples for rs in rulesets]
        assert sizes == sorted(sizes, reverse=True)

    def test_every_sample_satisfies_its_leaf_ruleset(
        self, spmv_exhaustive
    ):
        """Pipeline-level invariant: a schedule satisfies the ruleset of the
        leaf it lands in."""
        from repro.ml.features import FeatureExtractor
        from repro.ml.labeling import label_by_performance
        from repro.ml.tree import DecisionTree, TreeConfig

        lab = label_by_performance(spmv_exhaustive.times())
        fx = FeatureExtractor()
        fm = fx.fit_transform(spmv_exhaustive.schedules())
        tree = DecisionTree(TreeConfig(max_leaf_nodes=8)).fit(
            fm.matrix, lab.labels
        )
        rulesets = {
            rs.leaf_id: rs for rs in extract_rulesets(tree, fm.features)
        }
        leaves = tree.apply(fm.matrix)
        findex = {id(f): j for j, f in enumerate(fm.features)}
        for i in range(0, len(leaves), 37):
            rs = rulesets[leaves[i]]
            for rule in rs.rules:
                j = fm.features.index(rule.feature)
                assert bool(fm.matrix[i, j]) == rule.value

    def test_group_by_class(self, fitted):
        tree, features = fitted
        grouped = rulesets_by_class(extract_rulesets(tree, features))
        assert set(grouped) <= {0, 1}
        assert all(
            rs.predicted_class == cls
            for cls, lst in grouped.items()
            for rs in lst
        )
