"""Tests for Rule / RuleSet logic."""

from repro.ml.features import OrderFeature, StreamFeature
from repro.rules.ruleset import Rule, RuleSet


def order_rule(u, v, value=True):
    return Rule(feature=OrderFeature(u, v), value=value)


def stream_rule(u, v, value=True):
    return Rule(feature=StreamFeature(u, v), value=value)


class TestRule:
    def test_text_matches_paper_phrasing(self):
        assert order_rule("Pack", "yL").text == "Pack before yL"
        assert order_rule("Pack", "yL", False).text == "yL before Pack"
        assert stream_rule("Pack", "yL").text == "Pack same stream as yL"
        assert (
            stream_rule("Pack", "yL", False).text
            == "Pack different stream than yL"
        )

    def test_negation(self):
        r = order_rule("a", "b")
        assert r.negated().value is False
        assert r.negated().negated() == r

    def test_contradiction(self):
        assert order_rule("a", "b").contradicts(order_rule("a", "b", False))
        assert not order_rule("a", "b").contradicts(order_rule("a", "b"))
        assert not order_rule("a", "b").contradicts(order_rule("a", "c", False))

    def test_kind_flags(self):
        assert order_rule("a", "b").is_order_rule
        assert stream_rule("a", "b").is_stream_rule


class TestRuleSet:
    def make(self, *rules, cls=0, n=10):
        return RuleSet(
            rules=frozenset(rules), predicted_class=cls, n_samples=n
        )

    def test_implies_superset(self):
        small = self.make(order_rule("a", "b"))
        big = self.make(order_rule("a", "b"), stream_rule("a", "b"))
        assert big.implies(small)
        assert not small.implies(big)

    def test_implies_self(self):
        rs = self.make(order_rule("a", "b"))
        assert rs.implies(rs)

    def test_extra_and_missing(self):
        a = self.make(order_rule("a", "b"), stream_rule("a", "b"))
        b = self.make(order_rule("a", "b"), order_rule("b", "c"))
        assert a.extra_rules(b) == frozenset([stream_rule("a", "b")])
        assert a.missing_rules(b) == frozenset([order_rule("b", "c")])

    def test_contradictions(self):
        a = self.make(order_rule("a", "b"))
        b = self.make(order_rule("a", "b", False))
        assert a.contradictions(b) == frozenset([order_rule("a", "b")])

    def test_sorted_rules_stable(self):
        rs = self.make(order_rule("z", "w"), order_rule("a", "b"))
        texts = [r.text for r in rs.sorted_rules()]
        assert texts == sorted(texts)

    def test_str_joins_rules(self):
        rs = self.make(order_rule("a", "b"), stream_rule("a", "b"))
        assert " AND " in str(rs)
