"""JSONL trace files: round-trip fidelity and strict validation."""

import json

import pytest

from repro import obs
from repro.obs import (
    MetricsSnapshot,
    SpanRecord,
    TraceSchemaError,
    read_trace,
    validate_trace,
    write_trace,
)
from repro.obs.trace_io import TRACE_VERSION


def _forest():
    leaf = SpanRecord("leaf", 0.1, 0.2, 42, {"x": 1})
    mid = SpanRecord("mid", 0.05, 0.5, 42, {}, [leaf])
    root = SpanRecord("root", 0.0, 1.0, 42, {"kind": "t"}, [mid])
    other = SpanRecord("other", 2.0, 0.25, 43, {})
    return (root, other)


def _snapshot():
    return MetricsSnapshot(
        counters={"c": 5, "b": 1},
        gauges={"g": 2.5},
        histograms={"h": (1.0, 2.0, 3.0)},
    )


class TestRoundTrip:
    def test_spans_and_metrics_survive_exactly(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        n = write_trace(path, _forest(), metrics=_snapshot(), meta={"cmd": "x"})
        assert n == 4
        data = read_trace(path)
        assert data.version == TRACE_VERSION
        assert data.meta == {"cmd": "x"}
        assert data.spans == _forest()
        assert data.metrics == _snapshot()
        assert data.n_spans() == 4

    def test_writing_is_deterministic(self, tmp_path):
        p1, p2 = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_trace(p1, _forest(), metrics=_snapshot())
        write_trace(p2, _forest(), metrics=_snapshot())
        assert open(p1).read() == open(p2).read()

    def test_empty_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert write_trace(path, ()) == 0
        data = read_trace(path)
        assert data.spans == ()
        assert data.metrics.is_empty()

    def test_parent_lines_precede_children(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_trace(path, _forest())
        seen = set()
        for line in open(path).read().splitlines()[1:]:
            obj = json.loads(line)
            if obj["parent"] is not None:
                assert obj["parent"] in seen
            seen.add(obj["id"])

    def test_capture_output_round_trips(self, tmp_path):
        with obs.capture(trace=True) as cap:
            with obs.span("a", n=1):
                with obs.span("b"):
                    pass
            obs.add("c", 2)
        path = str(tmp_path / "t.jsonl")
        write_trace(path, cap.spans, metrics=cap.metrics)
        data = validate_trace(path)
        assert data.spans == cap.spans
        assert data.metrics.counter("c") == 2


class TestValidation:
    def _lines(self, *objs):
        return "\n".join(json.dumps(o) for o in objs) + "\n"

    def _write(self, tmp_path, text):
        path = tmp_path / "bad.jsonl"
        path.write_text(text)
        return str(path)

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(TraceSchemaError, match="empty"):
            read_trace(self._write(tmp_path, ""))

    def test_missing_header_rejected(self, tmp_path):
        text = self._lines({"type": "counter", "name": "c", "value": 1})
        with pytest.raises(TraceSchemaError, match="header"):
            read_trace(self._write(tmp_path, text))

    def test_wrong_version_rejected(self, tmp_path):
        text = self._lines({"type": "trace", "version": 99, "meta": {}})
        with pytest.raises(TraceSchemaError, match="version"):
            read_trace(self._write(tmp_path, text))

    def test_non_json_line_rejected(self, tmp_path):
        text = '{"type": "trace", "version": 1, "meta": {}}\nnot json\n'
        with pytest.raises(TraceSchemaError, match="not JSON"):
            read_trace(self._write(tmp_path, text))

    def test_span_missing_keys_rejected(self, tmp_path):
        text = self._lines(
            {"type": "trace", "version": 1, "meta": {}},
            {"type": "span", "id": 0, "name": "x"},
        )
        with pytest.raises(TraceSchemaError, match="missing keys"):
            read_trace(self._write(tmp_path, text))

    def test_unknown_parent_rejected(self, tmp_path):
        span = {
            "type": "span",
            "id": 0,
            "parent": 7,
            "name": "x",
            "start": 0.0,
            "dur": 0.1,
            "pid": 1,
            "attrs": {},
        }
        text = self._lines({"type": "trace", "version": 1, "meta": {}}, span)
        with pytest.raises(TraceSchemaError, match="unknown parent"):
            read_trace(self._write(tmp_path, text))

    def test_duplicate_span_id_rejected(self, tmp_path):
        span = {
            "type": "span",
            "id": 0,
            "parent": None,
            "name": "x",
            "start": 0.0,
            "dur": 0.1,
            "pid": 1,
            "attrs": {},
        }
        text = self._lines(
            {"type": "trace", "version": 1, "meta": {}}, span, span
        )
        with pytest.raises(TraceSchemaError, match="duplicate"):
            read_trace(self._write(tmp_path, text))

    def test_unknown_line_type_rejected(self, tmp_path):
        text = self._lines(
            {"type": "trace", "version": 1, "meta": {}},
            {"type": "mystery"},
        )
        with pytest.raises(TraceSchemaError, match="unknown line type"):
            read_trace(self._write(tmp_path, text))

    def test_error_messages_carry_line_numbers(self, tmp_path):
        text = self._lines(
            {"type": "trace", "version": 1, "meta": {}},
            {"type": "counter", "name": "c"},  # missing value
        )
        with pytest.raises(TraceSchemaError, match=r":2:"):
            read_trace(self._write(tmp_path, text))
