"""HistoryStore: ingestion, dedup, and the rolling median+MAD gate."""

import json

import pytest

from repro.obs import HistoryPoint, HistoryStore, detect_regressions


def _store(tmp_path):
    return HistoryStore(str(tmp_path / "hist"))


def _analysis(total_s, *, counters=None, hist=None):
    payload = {
        "paths": [
            {"path": "plan.execute", "count": 1, "total_s": total_s},
            {"path": "plan.execute/task:w", "count": 2, "total_s": total_s / 2},
        ],
        "counters": counters or {"search.schedules_evaluated": 16},
    }
    if hist:
        payload["histograms"] = hist
    return payload


# -- store basics ------------------------------------------------------
def test_append_load_round_trip(tmp_path):
    store = _store(tmp_path)
    point = HistoryPoint(
        series="span:x", value=1.5, sha="abc", ts=10.0, run_id="r1"
    )
    assert store.append([point]) == 1
    (loaded,) = store.load()
    assert loaded == point


def test_load_tolerates_torn_and_garbage_lines(tmp_path):
    store = _store(tmp_path)
    store.append([HistoryPoint(series="s", value=1.0)])
    with open(store.path, "a", encoding="utf-8") as fh:
        fh.write('{"series": "torn", "val\n')  # torn concurrent append
        fh.write("[1, 2]\n")  # non-object row
        fh.write('{"series": 5, "value": 1}\n')  # bad series type
        fh.write('{"series": "ok", "value": "NaNish"}\n')  # bad value
    assert [p.series for p in store.load()] == ["s"]


def test_series_groups_and_sorts_by_ts(tmp_path):
    store = _store(tmp_path)
    store.append(
        [
            HistoryPoint(series="a", value=2.0, ts=20.0),
            HistoryPoint(series="a", value=1.0, ts=10.0),
            HistoryPoint(series="b", value=9.0, ts=5.0),
        ]
    )
    groups = store.series()
    assert [p.value for p in groups["a"]] == [1.0, 2.0]
    assert [p.value for p in groups["b"]] == [9.0]


# -- ingestion ---------------------------------------------------------
def test_ingest_analysis_emits_span_counter_hist_series(tmp_path):
    store = _store(tmp_path)
    n = store.ingest_analysis(
        _analysis(
            2.0,
            hist={"lat": {"p50": 0.1, "p95": 0.2, "p99": 0.3, "count": 9}},
        ),
        sha="abc",
        ts=1.0,
        run_id="r1",
    )
    assert n == 6  # 2 span + 1 counter + 3 quantile series
    groups = store.series()
    assert groups["span:plan.execute"][0].value == 2.0
    assert groups["counter:search.schedules_evaluated"][0].value == 16
    assert groups["hist:lat:p99"][0].value == 0.3
    assert "hist:lat:count" not in groups  # only quantiles are series


def test_ingest_analysis_dedups_by_run_id(tmp_path):
    store = _store(tmp_path)
    assert store.ingest_analysis(_analysis(1.0), run_id="r1") > 0
    assert store.ingest_analysis(_analysis(9.0), run_id="r1") == 0
    assert store.run_ids() == ["r1"]


def test_ingest_bench_uses_benchmark_means(tmp_path):
    bench = tmp_path / "BENCH_abc.json"
    bench.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "fullname": "benchmarks/bench_x.py::test_y",
                        "stats": {"mean": 0.25},
                    }
                ]
            }
        )
    )
    store = _store(tmp_path)
    assert store.ingest_bench(str(bench), sha="abc") == 1
    (point,) = store.load()
    assert point.series == "bench:benchmarks/bench_x.py::test_y"
    assert point.value == 0.25
    assert point.sha == "abc"
    assert point.run_id == "BENCH_abc.json"
    # Re-ingesting the same artifact is a no-op (CI cache safety).
    assert store.ingest_bench(str(bench)) == 0


# -- trend gate --------------------------------------------------------
def _ingest_runs(store, walls):
    for i, wall in enumerate(walls):
        store.ingest_analysis(
            _analysis(wall), ts=float(i), run_id=f"run-{i}"
        )


def test_gate_names_regressed_span_path_on_2x_wall(tmp_path):
    store = _store(tmp_path)
    # Five steady runs, then a 2x wall regression in the newest.
    _ingest_runs(store, [1.0, 1.02, 0.98, 1.01, 0.99, 2.0])
    regs = detect_regressions(store)
    names = [r.series for r in regs]
    assert "span:plan.execute" in names
    reg = next(r for r in regs if r.series == "span:plan.execute")
    assert reg.value == 2.0
    assert reg.median == pytest.approx(1.0, abs=0.02)
    assert reg.ratio > 1.9
    assert reg.run_id == "run-5"
    assert "span:plan.execute" in reg.describe()
    assert "2x" in f"{reg.ratio:.0f}x"


def test_gate_quiet_without_regression(tmp_path):
    store = _store(tmp_path)
    _ingest_runs(store, [1.0, 1.02, 0.98, 1.01, 0.99, 1.03])
    assert detect_regressions(store) == []


def test_gate_warn_only_below_min_points(tmp_path):
    store = _store(tmp_path)
    # A blatant regression with only 4 runs of history: skipped.
    _ingest_runs(store, [1.0, 1.0, 1.0, 10.0])
    assert detect_regressions(store, min_points=5) == []
    # One more run and the (still-regressed) series is eligible.
    store.ingest_analysis(_analysis(10.0), ts=9.0, run_id="run-9")
    assert detect_regressions(store, min_points=5)


def test_gate_mad_band_tolerates_noisy_series(tmp_path):
    store = _store(tmp_path)
    # Noisy baseline: swings of +/-30% are this series' normal.
    _ingest_runs(store, [1.0, 1.3, 0.7, 1.25, 0.75, 1.3])
    assert detect_regressions(store) == []


def test_gate_relative_floor_protects_constant_series(tmp_path):
    store = _store(tmp_path)
    # Identical values -> MAD 0; a +5% blip stays under the 10% floor.
    _ingest_runs(store, [1.0, 1.0, 1.0, 1.0, 1.0, 1.05])
    assert detect_regressions(store) == []
    store2 = HistoryStore(str(tmp_path / "other"))
    _ingest_runs(store2, [1.0, 1.0, 1.0, 1.0, 1.0, 1.2])
    assert detect_regressions(store2)


def test_gate_prefix_filter_ignores_counters(tmp_path):
    store = _store(tmp_path)
    for i in range(6):
        store.ingest_analysis(
            _analysis(1.0, counters={"cache.hits": 10 ** i}),
            ts=float(i),
            run_id=f"run-{i}",
        )
    # Counter series explode by 10x per run but are not gated on.
    assert detect_regressions(store) == []
    regs = detect_regressions(store, prefixes=("counter:",))
    assert [r.series for r in regs] == ["counter:cache.hits"]


def test_gate_ignores_improvements(tmp_path):
    store = _store(tmp_path)
    _ingest_runs(store, [1.0, 1.0, 1.0, 1.0, 1.0, 0.2])
    assert detect_regressions(store) == []
