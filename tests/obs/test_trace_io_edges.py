"""validate_trace edge cases: torn files, bad ids, version drift."""

import json

import pytest

from repro.obs import TraceSchemaError, validate_trace, write_trace
from repro.obs.span import SpanRecord
from repro.obs.trace_io import TRACE_VERSION


def _valid_lines():
    header = {"type": "trace", "version": TRACE_VERSION, "meta": {}}
    span = {
        "type": "span",
        "id": 0,
        "parent": None,
        "name": "root",
        "start": 0.0,
        "dur": 1.0,
        "pid": 1,
        "attrs": {},
    }
    child = dict(span, id=1, parent=0, name="child")
    return [json.dumps(obj) for obj in (header, span, child)]


def _write(tmp_path, lines, tail=""):
    path = tmp_path / "t.jsonl"
    path.write_text("\n".join(lines) + "\n" + tail)
    return str(path)


def test_valid_file_parses(tmp_path):
    data = validate_trace(_write(tmp_path, _valid_lines()))
    assert data.n_spans() == 2
    assert data.spans[0].children[0].name == "child"


def test_truncated_final_line_rejected(tmp_path):
    # A crashed writer leaves a torn last line; the strict reader must
    # refuse the file rather than silently drop spans.
    lines = _valid_lines()
    torn = lines[-1][: len(lines[-1]) // 2]
    path = _write(tmp_path, lines[:-1], tail=torn + "\n")
    with pytest.raises(TraceSchemaError, match="not JSON"):
        validate_trace(path)


def test_duplicate_span_ids_rejected(tmp_path):
    lines = _valid_lines()
    dup = json.loads(lines[2])
    dup["id"] = 0  # collides with the root's DFS id
    path = _write(tmp_path, lines[:2] + [json.dumps(dup)])
    with pytest.raises(TraceSchemaError, match="duplicate span id"):
        validate_trace(path)


def test_child_before_parent_rejected(tmp_path):
    # DFS preorder guarantees parents precede children; a reordered
    # file (hand-edited, interleaved writers) must not parse.
    lines = _valid_lines()
    path = _write(tmp_path, [lines[0], lines[2], lines[1]])
    with pytest.raises(TraceSchemaError, match="unknown parent"):
        validate_trace(path)


def test_schema_version_mismatch_rejected(tmp_path):
    lines = _valid_lines()
    header = json.loads(lines[0])
    header["version"] = TRACE_VERSION + 1
    path = _write(tmp_path, [json.dumps(header)] + lines[1:])
    with pytest.raises(TraceSchemaError, match="unsupported trace version"):
        validate_trace(path)


def test_missing_header_rejected(tmp_path):
    lines = _valid_lines()
    path = _write(tmp_path, lines[1:])
    with pytest.raises(TraceSchemaError, match="first line must be"):
        validate_trace(path)


def test_span_missing_keys_rejected(tmp_path):
    lines = _valid_lines()
    span = json.loads(lines[1])
    del span["dur"]
    path = _write(tmp_path, [lines[0], json.dumps(span)])
    with pytest.raises(TraceSchemaError, match="missing keys"):
        validate_trace(path)


def test_unknown_line_type_rejected(tmp_path):
    path = _write(
        tmp_path, _valid_lines() + [json.dumps({"type": "mystery"})]
    )
    with pytest.raises(TraceSchemaError, match="unknown line type"):
        validate_trace(path)


def test_error_messages_carry_path_and_line(tmp_path):
    lines = _valid_lines()
    path = _write(tmp_path, lines[:-1], tail="{torn\n")
    with pytest.raises(TraceSchemaError, match=r"t\.jsonl:3"):
        validate_trace(path)


def test_round_trip_after_rewrite_is_valid(tmp_path):
    # write_trace output always validates, including metrics lines.
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.add("n", 3)
    registry.observe("lat", 0.5)
    root = SpanRecord(name="r", start=0.0, duration=1.0, pid=1)
    path = str(tmp_path / "rt.jsonl")
    write_trace(path, [root], registry.snapshot(), meta={"command": "x"})
    data = validate_trace(path)
    assert data.meta == {"command": "x"}
    assert data.metrics.counter("n") == 3
    assert data.metrics.histograms["lat"] == (0.5,)
