"""Progress hardening: instant finishes, dead-worker heartbeat reaping."""

import io
import json
import os
import subprocess
import sys

from repro.obs import (
    HeartbeatWriter,
    MetricsRegistry,
    ProgressMeter,
    read_heartbeats,
    read_heartbeats_full,
)
from repro.obs.progress import heartbeat_filename


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _registry(**counters):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.add(name, value)
    return registry


# -- satellite: zero-elapsed ETA guard ---------------------------------
def test_instant_finish_renders_without_zero_division():
    # A frozen clock means elapsed == 0 on the very first render — the
    # historical ZeroDivisionError this guard exists for.
    clock = FakeClock()
    stream = io.StringIO()
    meter = ProgressMeter(
        10, counters=("n",), stream=stream, interval=0.0, clock=clock
    )
    meter.tick(_registry(n=5))  # mid-run, elapsed 0
    line = stream.getvalue().strip()
    assert "(5/10)" in line and "eta --" in line
    done = meter.finish(_registry(n=10))
    assert done == 10
    final = stream.getvalue().strip().splitlines()[-1]
    assert "100.0%" in final and "done" in final


def test_zero_done_zero_elapsed_renders_placeholder_eta():
    meter = ProgressMeter(
        10,
        counters=("n",),
        stream=io.StringIO(),
        interval=0.0,
        clock=FakeClock(),
    )
    assert "eta --" in meter._line(0, final=False)


def test_positive_elapsed_still_produces_real_eta():
    clock = FakeClock()
    stream = io.StringIO()
    meter = ProgressMeter(
        100, counters=("n",), stream=stream, interval=0.0, clock=clock
    )
    clock.t = 2.0
    meter.tick(_registry(n=50))
    assert "eta 2s" in stream.getvalue()


def test_meter_line_appends_worker_rss(tmp_path):
    clock = FakeClock()
    meter = ProgressMeter(
        10,
        counters=("n",),
        stream=io.StringIO(),
        interval=0.0,
        heartbeat_dir=str(tmp_path),
        clock=clock,
    )
    payload = {
        "pid": os.getpid(),
        "counters": {"n": 3},
        "resources": {"rss_bytes": 64 * 1024 * 1024},
    }
    (tmp_path / heartbeat_filename(0)).write_text(json.dumps(payload))
    assert meter.current_done(MetricsRegistry()) == 3
    assert "rss 64MB" in meter._line(3, final=False)


# -- satellite: dead-pid heartbeat reaping -----------------------------
def _write_heartbeat(path, pid, n=5):
    path.write_text(
        json.dumps({"pid": pid, "counters": {"n": n}})
    )


def test_killed_worker_heartbeat_is_reaped(tmp_path):
    # A real child that has already exited: its pid is reliably dead.
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    dead = tmp_path / heartbeat_filename(0)
    _write_heartbeat(dead, proc.pid, n=7)
    live = tmp_path / heartbeat_filename(1)
    _write_heartbeat(live, os.getpid(), n=2)

    totals = read_heartbeats(str(tmp_path))
    # The dead worker's stale count is dropped and its file unlinked.
    assert totals == {"n": 2}
    assert not dead.exists()
    assert live.exists()


def test_heartbeat_without_pid_is_counted_never_reaped(tmp_path):
    path = tmp_path / heartbeat_filename(0)
    path.write_text(json.dumps({"counters": {"n": 4}}))
    assert read_heartbeats(str(tmp_path)) == {"n": 4}
    assert path.exists()


def test_read_heartbeats_full_returns_live_resources(tmp_path):
    writer = HeartbeatWriter(
        str(tmp_path / heartbeat_filename(0)), clock=FakeClock()
    )
    writer.resource_fn = lambda: {"rss_bytes": 123, "cpu_utime_s": 0.5}
    writer.flush(_registry(n=1))
    totals, resources = read_heartbeats_full(str(tmp_path))
    assert totals == {"n": 1}
    assert resources[os.getpid()]["rss_bytes"] == 123


def test_progress_meter_drops_dead_worker_from_done(tmp_path):
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    _write_heartbeat(tmp_path / heartbeat_filename(0), proc.pid, n=9)
    meter = ProgressMeter(
        10,
        counters=("n",),
        stream=io.StringIO(),
        interval=0.0,
        heartbeat_dir=str(tmp_path),
        clock=FakeClock(),
    )
    # The crashed worker's 9 never enters the done count.
    assert meter.current_done(MetricsRegistry()) == 0
