"""ASCII rendering of span trees and metrics."""

from repro.obs import (
    MetricsSnapshot,
    SpanRecord,
    TraceData,
    render_metrics,
    render_span_tree,
    render_trace,
)


def _forest():
    leaf = SpanRecord("leaf", 0.1, 0.5, 42, {"n": 4})
    return (SpanRecord("root", 0.0, 1.0, 42, {}, [leaf]),)


class TestSpanTree:
    def test_tree_structure_and_bars(self):
        lines = render_span_tree(_forest(), width=10)
        assert len(lines) == 2
        assert lines[0].startswith("root")
        assert "|##########|" in lines[0]  # full-width bar for the root
        assert lines[1].startswith("`- leaf")
        assert "|#####     |" in lines[1]  # half the root's duration
        assert "[n=4]" in lines[1]

    def test_zero_duration_root_renders(self):
        roots = (SpanRecord("instant", 0.0, 0.0, 1, {}),)
        (line,) = render_span_tree(roots, width=8)
        assert "instant" in line

    def test_empty_forest(self):
        assert render_span_tree(()) == ["(no spans)"]

    def test_sibling_prefixes(self):
        kids = [SpanRecord(f"c{i}", 0.0, 0.1, 1, {}) for i in range(3)]
        roots = (SpanRecord("r", 0.0, 1.0, 1, {}, kids),)
        lines = render_span_tree(roots)
        assert lines[1].startswith("|- c0")
        assert lines[2].startswith("|- c1")
        assert lines[3].startswith("`- c2")


class TestMetrics:
    def test_counters_and_histograms_tabulated(self):
        snap = MetricsSnapshot(
            counters={"cache.hits": 3},
            gauges={"g": 1.5},
            histograms={"advisor.recommend_s": (0.01, 0.02, 0.03)},
        )
        out = render_metrics(snap)
        assert "counters:" in out
        assert "cache.hits" in out
        assert "gauges:" in out
        assert "histograms:" in out
        assert "p95" in out

    def test_empty_snapshot(self):
        assert render_metrics(MetricsSnapshot()) == "(no metrics recorded)"


class TestTrace:
    def test_full_render(self):
        data = TraceData(
            meta={"command": "search"},
            spans=_forest(),
            metrics=MetricsSnapshot(counters={"c": 1}),
        )
        out = render_trace(data)
        assert out.startswith("trace v2  command=search  (2 spans)")
        assert "root" in out
        assert "counters:" in out

    def test_spanless_trace(self):
        out = render_trace(TraceData())
        assert "(no spans)" in out
