"""Reservoir behavior exactly at, and just past, RESERVOIR_CAP.

The cap is where histogram semantics change shape: below it the
reservoir is a plain append-only list (quantiles are exact, snapshot
diffs are positional tails); past it replacement sampling kicks in
(quantiles are estimates, diffs fall back to the full series).  These
tests pin both sides of that boundary.
"""

from repro.obs import RESERVOIR_CAP, MetricsRegistry, summarize_histogram


def _fill(registry, name, n):
    for i in range(n):
        registry.observe(name, float(i))


def test_quantiles_exact_at_cap():
    registry = MetricsRegistry()
    _fill(registry, "lat", RESERVOIR_CAP)
    values = registry.snapshot().histograms["lat"]
    # At exactly the cap nothing has been replaced: the retained sample
    # IS the full series, so quantiles are exact nearest-rank values.
    assert values == tuple(float(i) for i in range(RESERVOIR_CAP))
    summary = summarize_histogram(values)
    assert summary["count"] == RESERVOIR_CAP
    assert summary["min"] == 0.0
    assert summary["max"] == float(RESERVOIR_CAP - 1)
    assert summary["p50"] == float(RESERVOIR_CAP // 2 - 1)


def test_quantiles_just_past_cap_stay_close():
    n = RESERVOIR_CAP + 1
    registry = MetricsRegistry()
    _fill(registry, "lat", n)
    values = registry.snapshot().histograms["lat"]
    assert len(values) == RESERVOIR_CAP  # one replacement happened
    summary = summarize_histogram(values)
    # A single replacement can shift nearest-rank quantiles by at most
    # a couple of ranks on a linear ramp.
    assert abs(summary["p50"] - n / 2) <= 0.01 * n
    assert abs(summary["p95"] - 0.95 * n) <= 0.01 * n
    assert summary["max"] <= float(n - 1)


def test_diff_positional_tail_exactly_at_cap():
    registry = MetricsRegistry()
    _fill(registry, "lat", RESERVOIR_CAP - 1)
    before = registry.snapshot()
    registry.observe("lat", -1.0)  # the observation that reaches the cap
    delta = registry.snapshot().diff(before)
    # Still append-only at the boundary: the diff is the exact tail.
    assert delta.histograms["lat"] == (-1.0,)


def test_diff_falls_back_one_past_cap():
    registry = MetricsRegistry()
    _fill(registry, "lat", RESERVOIR_CAP)
    before = registry.snapshot()
    for i in range(64):  # force replacements past the cap
        registry.observe("lat", float(-i))
    after = registry.snapshot()
    delta = after.diff(before)
    # Positional tails are meaningless once replacement starts; the
    # diff must carry the full retained series instead.
    assert delta.histograms["lat"] == after.histograms["lat"]
    assert len(delta.histograms["lat"]) == RESERVOIR_CAP


def test_diff_fallback_when_baseline_already_past_cap():
    registry = MetricsRegistry()
    _fill(registry, "lat", RESERVOIR_CAP + 64)
    before = registry.snapshot()
    registry.observe("lat", 7.5)
    delta = registry.snapshot().diff(before)
    # Both sides saturated: same fallback, from the other direction.
    assert delta.histograms["lat"] == registry.snapshot().histograms["lat"]


def test_unchanged_series_diffs_empty_on_both_sides_of_cap():
    for n in (RESERVOIR_CAP - 1, RESERVOIR_CAP + 64):
        registry = MetricsRegistry()
        _fill(registry, "lat", n)
        snap = registry.snapshot()
        assert "lat" not in snap.diff(snap).histograms
