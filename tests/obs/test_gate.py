"""bench_json_to_trace + compare_bench: CI's gate on pytest-benchmark JSON."""

import json
import os
import sys

import pytest

from repro.obs import (
    DiffThresholds,
    TraceSchemaError,
    bench_json_to_trace,
    diff_runs,
)


def _bench_json(path, means):
    payload = {
        "benchmarks": [
            {
                "fullname": name,
                "stats": {"mean": mean, "rounds": 5},
            }
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_bench_json_to_trace_one_root_span_per_benchmark(tmp_path):
    path = _bench_json(
        tmp_path / "b.json",
        {"bench_a.py::test_x": 0.5, "bench_b.py::test_y": 0.25},
    )
    data = bench_json_to_trace(path)
    assert [s.name for s in data.spans] == [
        "bench_a.py::test_x",
        "bench_b.py::test_y",
    ]
    assert data.spans[0].duration == 0.5
    assert data.meta["source"] == "pytest-benchmark"
    assert not data.metrics.counters


def test_bench_json_to_trace_pattern_filter_and_bad_rows(tmp_path):
    payload = {
        "benchmarks": [
            {"fullname": "bench_keep.py::t", "stats": {"mean": 0.1}},
            {"fullname": "bench_drop.py::t", "stats": {"mean": 0.1}},
            {"fullname": "bench_keep.py::no_stats"},
            {"stats": {"mean": 0.1}},
            {"fullname": "bench_keep.py::bad_mean", "stats": {"mean": "x"}},
        ]
    }
    path = tmp_path / "b.json"
    path.write_text(json.dumps(payload))
    data = bench_json_to_trace(str(path), pattern="keep")
    assert [s.name for s in data.spans] == ["bench_keep.py::t"]


def test_bench_json_to_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(TraceSchemaError, match="not a benchmark JSON"):
        bench_json_to_trace(str(bad))
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(TraceSchemaError, match="no 'benchmarks' array"):
        bench_json_to_trace(str(empty))


def test_injected_slowdown_flagged_by_ci_thresholds(tmp_path):
    """A 2x per-stage slowdown must trip the exact gate CI runs."""
    baseline = bench_json_to_trace(
        _bench_json(
            tmp_path / "base.json",
            {"bench_sharding.py::suite": 1.0, "bench_guided.py::bnb": 0.4},
        )
    )
    slowed = bench_json_to_trace(
        _bench_json(
            tmp_path / "cur.json",
            {"bench_sharding.py::suite": 2.0, "bench_guided.py::bnb": 0.4},
        )
    )
    # Same thresholds compare_bench.py passes in CI.
    diff = diff_runs(
        baseline, slowed, DiffThresholds(max_wall_delta=0.25, min_wall_s=0.0)
    )
    flagged = [p.path for p in diff.paths if p.regressed]
    assert flagged == ["bench_sharding.py::suite"]
    assert not diff.ok


def _compare_bench():
    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "benchmarks",
    )
    sys.path.insert(0, bench_dir)
    try:
        import compare_bench
    finally:
        sys.path.remove(bench_dir)
    return compare_bench


def test_compare_bench_passes_within_budget(tmp_path, capsys):
    cb = _compare_bench()
    base_dir = tmp_path / "baseline"
    base_dir.mkdir()
    _bench_json(base_dir / "BENCH_old.json", {"bench_sharding.py::t": 1.0})
    cur = _bench_json(tmp_path / "BENCH_new.json", {"bench_sharding.py::t": 1.1})
    rc = cb.main(
        ["--current", cur, "--baseline-dir", str(base_dir)]
    )
    assert rc == 0
    assert "within budget" in capsys.readouterr().out


def test_compare_bench_fails_on_regression(tmp_path, capsys):
    cb = _compare_bench()
    base_dir = tmp_path / "baseline"
    base_dir.mkdir()
    _bench_json(base_dir / "BENCH_old.json", {"bench_sharding.py::t": 1.0})
    cur = _bench_json(tmp_path / "BENCH_new.json", {"bench_sharding.py::t": 2.0})
    rc = cb.main(["--current", cur, "--baseline-dir", str(base_dir)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_compare_bench_skips_without_baseline(tmp_path, capsys):
    cb = _compare_bench()
    cur = _bench_json(tmp_path / "BENCH_new.json", {"bench_sharding.py::t": 1.0})
    rc = cb.main(
        ["--current", cur, "--baseline-dir", str(tmp_path / "missing")]
    )
    assert rc == 0
    assert "skipping comparison" in capsys.readouterr().out
    empty = tmp_path / "empty"
    empty.mkdir()
    assert cb.main(["--current", cur, "--baseline-dir", str(empty)]) == 0
