"""Perfetto export: event lowering, schema check, file round-trip."""

import json

import pytest

from repro.obs import (
    MetricsSnapshot,
    ResourceSample,
    SpanRecord,
    check_perfetto,
    export_perfetto,
    to_perfetto,
)
from repro.obs.trace_io import TraceData


def _sample(ts, pid, path="p", rss=2 * 1024 * 1024):
    return ResourceSample(
        ts=ts,
        pid=pid,
        path=path,
        rss_bytes=rss,
        cpu_utime_s=1.0,
        cpu_stime_s=0.5,
        gc_collections=0,
    )


def _trace():
    task = SpanRecord(
        name="task:w[i]", start=0.1, duration=0.4, pid=43, attrs={"index": 0}
    )
    root = SpanRecord(
        name="plan.execute",
        start=0.0,
        duration=1.0,
        pid=42,
        children=[task],
    )
    return TraceData(
        meta={"command": "search"},
        spans=(root,),
        metrics=MetricsSnapshot(counters={"n": 16}),
        samples=(_sample(0.2, 42), _sample(0.3, 43)),
    )


def test_spans_become_complete_events_in_microseconds():
    obj = to_perfetto(_trace())
    spans = [
        e for e in obj["traceEvents"] if e.get("cat") == "span"
    ]
    assert len(spans) == 2
    root = next(e for e in spans if e["name"] == "plan.execute")
    assert root["ph"] == "X"
    assert root["ts"] == pytest.approx(0.0)
    assert root["dur"] == pytest.approx(1e6)
    assert root["pid"] == root["tid"] == 42
    task = next(e for e in spans if e["name"] == "task:w[i]")
    assert task["ts"] == pytest.approx(0.1e6)
    assert task["args"] == {"index": 0}


def test_samples_become_rss_and_cpu_counter_tracks():
    obj = to_perfetto(_trace())
    counters = [
        e for e in obj["traceEvents"] if e.get("cat") == "telemetry"
    ]
    # Two samples -> one rss_mb + one cpu_s event each.
    assert len(counters) == 4
    rss = next(e for e in counters if e["name"] == "rss_mb")
    assert rss["ph"] == "C"
    assert rss["args"]["rss_mb"] == pytest.approx(2.0)
    cpu = next(e for e in counters if e["name"] == "cpu_s")
    assert cpu["args"] == {"user": 1.0, "system": 0.5}


def test_final_counters_and_process_names_emitted():
    obj = to_perfetto(_trace())
    events = obj["traceEvents"]
    final = next(e for e in events if e.get("cat") == "counter")
    assert final["name"] == "n"
    assert final["args"]["value"] == 16
    # Counters land at the end of the timeline (root span end).
    assert final["ts"] == pytest.approx(1e6)
    names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {42: "search", 43: "worker-43"}


def test_nonscalar_span_attrs_are_stringified():
    root = SpanRecord(
        name="r", start=0.0, duration=0.1, pid=1, attrs={"shape": (2, 3)}
    )
    obj = to_perfetto(TraceData(spans=(root,)))
    (event,) = [e for e in obj["traceEvents"] if e.get("cat") == "span"]
    assert event["args"]["shape"] == repr((2, 3))
    assert not check_perfetto(obj)


def test_export_is_valid_and_round_trips(tmp_path):
    out = str(tmp_path / "trace.json")
    n = export_perfetto(_trace(), out)
    with open(out) as fh:
        obj = json.load(fh)
    assert len(obj["traceEvents"]) == n
    assert obj["displayTimeUnit"] == "ms"
    assert check_perfetto(obj) == []


def test_check_perfetto_catches_bad_events():
    assert check_perfetto({}) == ["traceEvents is not a list"]
    bad = {
        "traceEvents": [
            {"ph": "B", "ts": 0.0, "pid": 1, "tid": 1},  # bad phase
            {"ph": "X", "ts": "0", "pid": 1, "tid": 1, "dur": 1.0},
            {"ph": "X", "ts": 0.0, "pid": 1, "tid": 1, "dur": -1.0},
            {"ph": "C", "ts": 0.0, "pid": 1, "tid": 1, "args": {}},
            {"ph": "C", "ts": 0.0, "pid": 1, "tid": 1, "args": {"v": "x"}},
            {"ph": "X", "ts": 0.0, "pid": 1.5, "tid": None, "dur": 0.0},
            "not-an-object",
        ]
    }
    problems = check_perfetto(bad)
    assert len(problems) == 8
    assert any("bad ph" in p for p in problems)
    assert any("non-numeric ts" in p for p in problems)
    assert any("dur >= 0" in p for p in problems)
    assert any("needs args" in p for p in problems)
    assert any("must be numeric" in p for p in problems)
    assert any("non-integer pid" in p for p in problems)
    assert any("not an object" in p for p in problems)


def test_export_refuses_invalid_trace(tmp_path):
    # A span with negative duration must fail validation, not export.
    root = SpanRecord(name="r", start=0.0, duration=-1.0, pid=1)
    data = TraceData(spans=(root,))
    out = str(tmp_path / "bad.json")
    with pytest.raises(ValueError, match="perfetto export failed"):
        export_perfetto(data, out)
    # Opting out of validation still writes the file.
    export_perfetto(data, out, validate=False)
    assert json.load(open(out))["traceEvents"]
