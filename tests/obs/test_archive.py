"""RunArchive bundles: record/index/load, latest, resolve_trace."""

import json
import os

import pytest

from repro import obs
from repro.obs import (
    ARCHIVE_VERSION,
    RunArchive,
    TraceSchemaError,
    git_revision,
    resolve_trace,
)
from repro.obs.trace_io import TRACE_VERSION


def _run_spans():
    with obs.capture(trace=True) as cap:
        with obs.span("plan.execute"):
            with obs.span("eval.batch"):
                pass
        obs.add("eval.schedules", 7)
    return cap


def test_record_writes_self_describing_bundle(tmp_path):
    cap = _run_spans()
    archive = RunArchive(str(tmp_path / "arch"))
    rec = archive.record(
        cap.spans, cap.metrics, command="suite", meta={"argv": ["suite"]}
    )

    assert os.path.isfile(rec.trace_path)
    assert os.path.isfile(rec.meta_path)
    with open(rec.meta_path) as fh:
        meta = json.load(fh)
    assert meta["schema_version"] == ARCHIVE_VERSION
    assert meta["trace_version"] == TRACE_VERSION
    assert meta["command"] == "suite"
    assert meta["run_id"] == rec.run_id
    assert meta["argv"] == ["suite"]
    assert "created" in meta and "git_sha" in meta


def test_record_load_round_trip(tmp_path):
    cap = _run_spans()
    archive = RunArchive(str(tmp_path / "arch"))
    rec = archive.record(cap.spans, cap.metrics, command="search")

    data = rec.load()
    assert data.n_spans() == cap.n_spans
    assert data.metrics.counter("eval.schedules") == 7
    # meta.json keys fold into the trace meta without clobbering the
    # trace header's own command/run_id.
    assert data.meta["command"] == "search"
    assert data.meta["run_id"] == rec.run_id
    assert data.meta["schema_version"] == ARCHIVE_VERSION


def test_runs_ordered_and_latest_filters_by_command(tmp_path):
    cap = _run_spans()
    archive = RunArchive(str(tmp_path / "arch"))
    a = archive.record(cap.spans, command="suite", run_id="run-a")
    b = archive.record(cap.spans, command="search", run_id="run-b")
    c = archive.record(cap.spans, command="suite", run_id="run-c")

    assert [r.run_id for r in archive.runs()] == ["run-a", "run-b", "run-c"]
    assert archive.latest().run_id == c.run_id
    assert archive.latest("search").run_id == b.run_id
    assert archive.latest("transfer") is None
    assert archive.get("run-a").run_id == a.run_id
    with pytest.raises(KeyError):
        archive.get("nope")


def test_run_id_collision_dedupes(tmp_path):
    cap = _run_spans()
    archive = RunArchive(str(tmp_path / "arch"))
    ids = {archive.record(cap.spans, command="suite").run_id for _ in range(3)}
    assert len(ids) == 3


def test_index_tolerates_torn_lines_and_deleted_bundles(tmp_path):
    import shutil

    cap = _run_spans()
    archive = RunArchive(str(tmp_path / "arch"))
    archive.record(cap.spans, command="suite", run_id="keep")
    archive.record(cap.spans, command="suite", run_id="gone")
    shutil.rmtree(os.path.join(archive.root, "gone"))
    with open(archive.index_path, "a") as fh:
        fh.write('{"run_id": "torn", "comm')  # torn concurrent append

    assert [r.run_id for r in archive.runs()] == ["keep"]


def test_resolve_trace_plain_file(tmp_path):
    from repro.obs import write_trace

    cap = _run_spans()
    path = str(tmp_path / "t.jsonl")
    write_trace(path, cap.spans, cap.metrics)
    assert resolve_trace(path).n_spans() == cap.n_spans


def test_resolve_trace_bundle_dir_and_archive_root(tmp_path):
    cap = _run_spans()
    root = str(tmp_path / "arch")
    archive = RunArchive(root)
    archive.record(cap.spans, command="suite", run_id="first")
    rec = archive.record(cap.spans, command="suite", run_id="second")

    from_bundle = resolve_trace(rec.path)
    assert from_bundle.meta["run_id"] == "second"
    # An archive root resolves to its most recent run.
    from_root = resolve_trace(root)
    assert from_root.meta["run_id"] == "second"


def test_resolve_trace_rejects_non_traces(tmp_path):
    with pytest.raises(TraceSchemaError, match="no such trace"):
        resolve_trace(str(tmp_path / "missing"))
    empty = tmp_path / "plain-dir"
    empty.mkdir()
    with pytest.raises(TraceSchemaError, match="neither a run bundle"):
        resolve_trace(str(empty))
    bare = RunArchive(str(tmp_path / "bare"))
    open(bare.index_path, "w").close()  # archive root, zero runs
    with pytest.raises(TraceSchemaError, match="no runs"):
        resolve_trace(bare.root)


def test_git_revision_inside_checkout():
    sha = git_revision(cwd=os.path.dirname(os.path.dirname(__file__)))
    # Running from the repo checkout this is a 40-char sha; under an
    # exported tarball it is None.  Both are contract-valid.
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


def test_git_revision_outside_checkout(tmp_path):
    assert git_revision(cwd=str(tmp_path)) is None
