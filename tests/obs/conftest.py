"""obs tests run against fresh ambient state.

``obs.reset()`` swaps in a new registry and drops any tracer, so tests
here never see counters leaked by other modules (and never leak their
own into later tests).
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def fresh_obs_state():
    obs.reset()
    yield
    obs.reset()
